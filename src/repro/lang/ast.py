"""Abstract syntax of minic.

Expression nodes carry a ``type`` attribute (``"int"`` or ``"float"``)
filled in by :mod:`repro.lang.sema`; the lowering pass relies on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ----------------------------------------------------------------------
# Expressions.
# ----------------------------------------------------------------------
@dataclass(eq=False)
class Expr:
    """Base class; ``type`` is set by semantic analysis."""

    line: int
    type: str | None = field(default=None, init=False)


@dataclass(eq=False)
class IntLit(Expr):
    value: int = 0


@dataclass(eq=False)
class FloatLit(Expr):
    value: float = 0.0


@dataclass(eq=False)
class VarRef(Expr):
    name: str = ""


@dataclass(eq=False)
class Index(Expr):
    """Global array element read: ``name[index]``."""

    name: str = ""
    index: Expr | None = None


@dataclass(eq=False)
class Unary(Expr):
    """``-e`` or ``!e``."""

    op: str = ""
    operand: Expr | None = None


@dataclass(eq=False)
class Binary(Expr):
    """Arithmetic, comparison, or (non-short-circuit) logical operator."""

    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass(eq=False)
class Call(Expr):
    """Function call; ``type`` is the callee's return type (may be void
    when used as a statement)."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass(eq=False)
class Cast(Expr):
    """Explicit ``int(e)`` / ``float(e)`` conversion."""

    target: str = ""
    operand: Expr | None = None


# ----------------------------------------------------------------------
# Statements.
# ----------------------------------------------------------------------
@dataclass(eq=False)
class Stmt:
    line: int


@dataclass(eq=False)
class Decl(Stmt):
    """``int x = e;`` — initializers are mandatory, so every variable is
    defined before any use on every path."""

    type: str = ""
    name: str = ""
    init: Expr | None = None


@dataclass(eq=False)
class Assign(Stmt):
    name: str = ""
    value: Expr | None = None


@dataclass(eq=False)
class StoreIndex(Stmt):
    """``name[index] = value;``"""

    name: str = ""
    index: Expr | None = None
    value: Expr | None = None


@dataclass(eq=False)
class Print(Stmt):
    value: Expr | None = None


@dataclass(eq=False)
class Return(Stmt):
    value: Expr | None = None


@dataclass(eq=False)
class ExprStmt(Stmt):
    """A bare call used for its effects."""

    expr: Expr | None = None


@dataclass(eq=False)
class If(Stmt):
    cond: Expr | None = None
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass(eq=False)
class While(Stmt):
    cond: Expr | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass(eq=False)
class For(Stmt):
    """``for (init; cond; step) body`` — ``init`` may declare a variable
    scoped to the loop."""

    init: Stmt | None = None
    cond: Expr | None = None
    step: Stmt | None = None
    body: list[Stmt] = field(default_factory=list)


# ----------------------------------------------------------------------
# Top level.
# ----------------------------------------------------------------------
@dataclass(eq=False)
class Param:
    type: str
    name: str


@dataclass(eq=False)
class FuncDecl:
    line: int
    ret_type: str  # "int", "float", or "void"
    name: str
    params: list[Param]
    body: list[Stmt]


@dataclass(eq=False)
class GlobalDecl:
    line: int
    type: str  # element type: "int" or "float"
    name: str
    size: int
    init: list[int | float]


@dataclass(eq=False)
class Program:
    globals: list[GlobalDecl]
    functions: list[FuncDecl]
