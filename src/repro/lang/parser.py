"""Recursive-descent parser for minic.

Grammar (informal)::

    program   := (global | func)*
    global    := 'global' type IDENT '[' INT ']' ('=' '{' lits '}')? ';'
    func      := 'func' ('void'|type) IDENT '(' params ')' block
    block     := '{' stmt* '}'
    stmt      := decl ';' | assign ';' | 'print' expr ';'
               | 'return' expr? ';' | if | while | for | call ';'
    decl      := type IDENT '=' expr
    assign    := IDENT ('[' expr ']')? '=' expr
    for       := 'for' '(' (decl|assign)? ';' expr? ';' assign? ')' block
    expr      := precedence climbing over || && == != < <= > >= + - * / %
                 with unary - ! and primaries INT FLOAT IDENT call index
                 '(' expr ')' and casts int(e) / float(e)

``&&``/``||`` are *non-short-circuit* (both sides always evaluate), which
keeps lowering branch-free; programs must not hide faults behind them.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.lexer import Token, tokenize


class ParseError(ValueError):
    """Raised on a syntax error, with line information."""


_BINARY_LEVELS: list[list[str]] = [
    ["||"],
    ["&&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["+", "-"],
    ["*", "/", "%"],
]


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token plumbing.
    # ------------------------------------------------------------------
    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tok
        self.pos += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.tok
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise ParseError(f"line {token.line}: expected {want!r}, got {token}")
        return self.advance()

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.tok
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def at_type(self) -> bool:
        return self.tok.kind == "kw" and self.tok.text in ("int", "float")

    # ------------------------------------------------------------------
    # Top level.
    # ------------------------------------------------------------------
    def program(self) -> ast.Program:
        globals_: list[ast.GlobalDecl] = []
        functions: list[ast.FuncDecl] = []
        while self.tok.kind != "eof":
            if self.tok.kind == "kw" and self.tok.text == "global":
                globals_.append(self.global_decl())
            elif self.tok.kind == "kw" and self.tok.text == "func":
                functions.append(self.func_decl())
            else:
                raise ParseError(f"line {self.tok.line}: expected 'global' or "
                                 f"'func', got {self.tok}")
        return ast.Program(globals_, functions)

    def global_decl(self) -> ast.GlobalDecl:
        line = self.expect("kw", "global").line
        elem = self.type_name()
        name = self.expect("ident").text
        self.expect("op", "[")
        size = int(self.expect("int").text)
        self.expect("op", "]")
        init: list[int | float] = []
        if self.accept("op", "="):
            self.expect("op", "{")
            while not self.accept("op", "}"):
                negative = bool(self.accept("op", "-"))
                token = self.advance()
                if token.kind == "int":
                    value: int | float = int(token.text)
                elif token.kind == "float":
                    value = float(token.text)
                else:
                    raise ParseError(f"line {token.line}: expected literal in "
                                     f"initializer, got {token}")
                init.append(-value if negative else value)
                if not self.accept("op", ","):
                    self.expect("op", "}")
                    break
        self.expect("op", ";")
        return ast.GlobalDecl(line, elem, name, size, init)

    def func_decl(self) -> ast.FuncDecl:
        line = self.expect("kw", "func").line
        if self.accept("kw", "void"):
            ret_type = "void"
        else:
            ret_type = self.type_name()
        name = self.expect("ident").text
        self.expect("op", "(")
        params: list[ast.Param] = []
        while not self.accept("op", ")"):
            ptype = self.type_name()
            pname = self.expect("ident").text
            params.append(ast.Param(ptype, pname))
            if not self.accept("op", ","):
                self.expect("op", ")")
                break
        body = self.block()
        return ast.FuncDecl(line, ret_type, name, params, body)

    def type_name(self) -> str:
        token = self.tok
        if token.kind == "kw" and token.text in ("int", "float"):
            return self.advance().text
        raise ParseError(f"line {token.line}: expected a type, got {token}")

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------
    def block(self) -> list[ast.Stmt]:
        self.expect("op", "{")
        stmts: list[ast.Stmt] = []
        while not self.accept("op", "}"):
            stmts.append(self.statement())
        return stmts

    def statement(self) -> ast.Stmt:
        token = self.tok
        if token.kind == "kw":
            if token.text == "if":
                return self.if_stmt()
            if token.text == "while":
                return self.while_stmt()
            if token.text == "for":
                return self.for_stmt()
            if token.text == "return":
                self.advance()
                value = None
                if not (self.tok.kind == "op" and self.tok.text == ";"):
                    value = self.expr()
                self.expect("op", ";")
                return ast.Return(token.line, value)
            if token.text == "print":
                self.advance()
                value = self.expr()
                self.expect("op", ";")
                return ast.Print(token.line, value)
            if token.text in ("int", "float"):
                stmt = self.decl()
                self.expect("op", ";")
                return stmt
        stmt = self.simple_stmt()
        self.expect("op", ";")
        return stmt

    def decl(self) -> ast.Decl:
        line = self.tok.line
        dtype = self.type_name()
        name = self.expect("ident").text
        self.expect("op", "=")
        return ast.Decl(line, dtype, name, self.expr())

    def simple_stmt(self) -> ast.Stmt:
        """Assignment, indexed store, or expression (call) statement."""
        line = self.tok.line
        if self.tok.kind == "ident":
            name_tok = self.tok
            nxt = self.tokens[self.pos + 1]
            if nxt.kind == "op" and nxt.text == "=":
                self.advance()
                self.advance()
                return ast.Assign(line, name_tok.text, self.expr())
            if nxt.kind == "op" and nxt.text == "[":
                # Could be a store or an index *read* inside a larger
                # expression statement; stores are the only useful form.
                save = self.pos
                self.advance()
                self.advance()
                index = self.expr()
                self.expect("op", "]")
                if self.accept("op", "="):
                    return ast.StoreIndex(line, name_tok.text, index, self.expr())
                self.pos = save
        expr = self.expr()
        return ast.ExprStmt(line, expr)

    def if_stmt(self) -> ast.If:
        line = self.expect("kw", "if").line
        self.expect("op", "(")
        cond = self.expr()
        self.expect("op", ")")
        then_body = self.block()
        else_body: list[ast.Stmt] = []
        if self.accept("kw", "else"):
            if self.tok.kind == "kw" and self.tok.text == "if":
                else_body = [self.if_stmt()]
            else:
                else_body = self.block()
        return ast.If(line, cond, then_body, else_body)

    def while_stmt(self) -> ast.While:
        line = self.expect("kw", "while").line
        self.expect("op", "(")
        cond = self.expr()
        self.expect("op", ")")
        return ast.While(line, cond, self.block())

    def for_stmt(self) -> ast.For:
        line = self.expect("kw", "for").line
        self.expect("op", "(")
        init: ast.Stmt | None = None
        if not (self.tok.kind == "op" and self.tok.text == ";"):
            init = self.decl() if self.at_type() else self.simple_stmt()
        self.expect("op", ";")
        cond: ast.Expr | None = None
        if not (self.tok.kind == "op" and self.tok.text == ";"):
            cond = self.expr()
        self.expect("op", ";")
        step: ast.Stmt | None = None
        if not (self.tok.kind == "op" and self.tok.text == ")"):
            step = self.simple_stmt()
        self.expect("op", ")")
        return ast.For(line, init, cond, step, self.block())

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------
    def expr(self, level: int = 0) -> ast.Expr:
        if level == len(_BINARY_LEVELS):
            return self.unary()
        left = self.expr(level + 1)
        ops = _BINARY_LEVELS[level]
        while self.tok.kind == "op" and self.tok.text in ops:
            op = self.advance()
            right = self.expr(level + 1)
            node = ast.Binary(op.line, op=op.text, left=left, right=right)
            left = node
        return left

    def unary(self) -> ast.Expr:
        token = self.tok
        if token.kind == "op" and token.text in ("-", "!"):
            self.advance()
            return ast.Unary(token.line, op=token.text, operand=self.unary())
        return self.primary()

    def primary(self) -> ast.Expr:
        token = self.advance()
        if token.kind == "int":
            return ast.IntLit(token.line, int(token.text))
        if token.kind == "float":
            return ast.FloatLit(token.line, float(token.text))
        if token.kind == "op" and token.text == "(":
            inner = self.expr()
            self.expect("op", ")")
            return inner
        if token.kind == "kw" and token.text in ("int", "float"):
            self.expect("op", "(")
            inner = self.expr()
            self.expect("op", ")")
            return ast.Cast(token.line, target=token.text, operand=inner)
        if token.kind == "ident":
            if self.tok.kind == "op" and self.tok.text == "(":
                self.advance()
                args: list[ast.Expr] = []
                while not self.accept("op", ")"):
                    args.append(self.expr())
                    if not self.accept("op", ","):
                        self.expect("op", ")")
                        break
                return ast.Call(token.line, name=token.text, args=args)
            if self.tok.kind == "op" and self.tok.text == "[":
                self.advance()
                index = self.expr()
                self.expect("op", "]")
                return ast.Index(token.line, name=token.text, index=index)
            return ast.VarRef(token.line, name=token.text)
        raise ParseError(f"line {token.line}: unexpected token {token}")


def parse(source: str) -> ast.Program:
    """Parse minic source text into an AST."""
    return _Parser(tokenize(source)).program()
