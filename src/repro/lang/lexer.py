"""Tokenizer for minic."""

from __future__ import annotations

import re
from dataclasses import dataclass

KEYWORDS = frozenset({
    "global", "func", "int", "float", "void", "if", "else", "while", "for",
    "return", "print",
})

_TOKEN_RE = re.compile(r"""
      (?P<ws>\s+|//[^\n]*)
    | (?P<float>\d+\.\d*(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+)
    | (?P<int>\d+)
    | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<op>&&|\|\||==|!=|<=|>=|[-+*/%<>=!(){}\[\],;])
""", re.VERBOSE)


class LexError(ValueError):
    """Raised on an unrecognized character, with line information."""


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is ``int``, ``float``, ``ident``, ``kw`` (keyword), ``op``,
    or ``eof``; ``text`` is the lexeme; ``line`` is 1-based.
    """

    kind: str
    text: str
    line: int

    def __str__(self) -> str:
        return f"{self.text!r}"


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; the result always ends with an ``eof`` token."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if not m:
            raise LexError(f"line {line}: unexpected character {source[pos]!r}")
        text = m.group(0)
        if m.lastgroup == "ws":
            line += text.count("\n")
        elif m.lastgroup == "ident" and text in KEYWORDS:
            tokens.append(Token("kw", text, line))
        else:
            tokens.append(Token(m.lastgroup, text, line))
        pos = m.end()
    tokens.append(Token("eof", "", line))
    return tokens
