"""Lowering: minic AST to the load/store IR.

The output is shaped like the Machine SUIF code the paper's allocators
consumed:

* every source variable is one temporary, reassigned by ``mov`` at each
  assignment — multi-definition lifetimes with holes, not SSA;
* the calling convention is explicit: "our Alpha code generator inserts
  move operations from the parameter registers to the symbolic names of
  the parameters at the top of a procedure" (Section 2.5) — exactly the
  moves the move-elimination optimization targets — and mirror moves
  marshal arguments and return values at call sites;
* ``&&``/``||`` normalize both operands with ``!= 0`` and combine
  bitwise (no short-circuit);
* a function whose body can fall off the end gets an implicit default
  return (``0``/``0.0``/bare).

Parameter counts are limited by the machine's parameter registers per
class (no stack arguments) — :class:`LoweringError` reports violations.
"""

from __future__ import annotations

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Op
from repro.ir.module import Module
from repro.ir.temp import Reg, Temp
from repro.ir.types import RegClass
from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.sema import check
from repro.target.alpha import alpha
from repro.target.machine import MachineDescription

G = RegClass.GPR
F = RegClass.FPR


class LoweringError(ValueError):
    """Raised when a checked program still cannot be lowered (in practice:
    more parameters of one class than the machine passes in registers)."""


def _regclass(type_name: str) -> RegClass:
    return G if type_name == "int" else F


class _FunctionLowerer:
    def __init__(self, module: Module, program: ast.Program,
                 fn_decl: ast.FuncDecl, machine: MachineDescription):
        self.module = module
        self.program = program
        self.decl = fn_decl
        self.machine = machine
        self.fn = Function(fn_decl.name)
        self.b = FunctionBuilder(self.fn)
        self.scopes: list[dict[str, Temp]] = [{}]
        self.ret_types = {f.name: f.ret_type for f in program.functions}
        self.param_types = {f.name: [p.type for p in f.params]
                            for f in program.functions}

    # ------------------------------------------------------------------
    # Variable scoping.
    # ------------------------------------------------------------------
    def declare(self, name: str, type_name: str) -> Temp:
        temp = self.fn.new_temp(_regclass(type_name), name)
        self.scopes[-1][name] = temp
        return temp

    def lookup(self, name: str) -> Temp:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise LoweringError(f"internal: unscoped variable {name!r}")

    # ------------------------------------------------------------------
    # Entry.
    # ------------------------------------------------------------------
    def _assign_param_regs(self, types: list[str], line: int,
                           what: str) -> list:
        counters = {G: 0, F: 0}
        regs = []
        for type_name in types:
            cls = _regclass(type_name)
            available = self.machine.param_regs(cls)
            if counters[cls] >= len(available):
                raise LoweringError(
                    f"line {line}: {what} passes more than "
                    f"{len(available)} {cls.name} parameters; "
                    f"{self.machine.name} has no stack arguments")
            regs.append(available[counters[cls]])
            counters[cls] += 1
        return regs

    def lower(self) -> Function:
        self.b.new_block("entry")
        param_regs = self._assign_param_regs(
            [p.type for p in self.decl.params], self.decl.line,
            f"function {self.decl.name!r}")
        for param, reg in zip(self.decl.params, param_regs):
            temp = self.declare(param.name, param.type)
            self.fn.params.append(temp)
            op = Op.MOV if temp.regclass is G else Op.FMOV
            self.b.emit(Instr(op, defs=[temp], uses=[reg]))
        self.lower_block(self.decl.body)
        if not self._terminated():
            self._emit_default_return()
        return self.fn

    def _terminated(self) -> bool:
        block = self.b.current
        return bool(block.instrs) and block.instrs[-1].is_terminator

    def _emit_default_return(self) -> None:
        if self.decl.ret_type == "void":
            self.b.ret()
            return
        cls = _regclass(self.decl.ret_type)
        value = self.b.li(0) if cls is G else self.b.fli(0.0)
        ret_reg = self.machine.ret_reg(cls)
        op = Op.MOV if cls is G else Op.FMOV
        self.b.emit(Instr(op, defs=[ret_reg], uses=[value]))
        self.b.ret(ret_reg)

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------
    def lower_block(self, body: list[ast.Stmt]) -> None:
        self.scopes.append({})
        for stmt in body:
            if self._terminated():
                break  # statements after return are unreachable
            self.lower_stmt(stmt)
        self.scopes.pop()

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Decl):
            # The initializer writes the variable's temp directly — simple
            # copy propagation a real code generator would also do.
            temp = self.fn.new_temp(_regclass(stmt.type), stmt.name)
            self.expr_as(stmt.init, stmt.type, dst=temp)
            self.scopes[-1][stmt.name] = temp
        elif isinstance(stmt, ast.Assign):
            temp = self.lookup(stmt.name)
            target_type = "int" if temp.regclass is G else "float"
            self.expr_as(stmt.value, target_type, dst=temp)
        elif isinstance(stmt, ast.StoreIndex):
            arr = self.module.globals[stmt.name]
            address = self._element_address(stmt.name, stmt.index)
            elem_type = "int" if arr.regclass is G else "float"
            value = self.expr_as(stmt.value, elem_type)
            if arr.regclass is G:
                self.b.st(value, address)
            else:
                self.b.fst(value, address)
        elif isinstance(stmt, ast.Print):
            self.b.print_(self.lower_expr(stmt.value))
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.b.ret()
                return
            cls = _regclass(self.decl.ret_type)
            ret_reg = self.machine.ret_reg(cls)
            self.expr_as(stmt.value, self.decl.ret_type, dst=ret_reg)
            self.b.ret(ret_reg)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        else:  # pragma: no cover
            raise LoweringError(f"line {stmt.line}: unknown statement")

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self.lower_expr(stmt.cond)
        then_label = self.fn.new_label("then")
        else_label = self.fn.new_label("else") if stmt.else_body else None
        join_label = self.fn.new_label("join")
        self.b.br(cond, then_label, else_label or join_label)
        self.b.new_block(then_label)
        self.lower_block(stmt.then_body)
        if not self._terminated():
            self.b.jmp(join_label)
        if else_label is not None:
            self.b.new_block(else_label)
            self.lower_block(stmt.else_body)
            if not self._terminated():
                self.b.jmp(join_label)
        self.b.new_block(join_label)

    def _lower_while(self, stmt: ast.While) -> None:
        head = self.fn.new_label("head")
        body = self.fn.new_label("body")
        exit_ = self.fn.new_label("exit")
        self.b.jmp(head)
        self.b.new_block(head)
        self.b.br(self.lower_expr(stmt.cond), body, exit_)
        self.b.new_block(body)
        self.lower_block(stmt.body)
        if not self._terminated():
            self.b.jmp(head)
        self.b.new_block(exit_)

    def _lower_for(self, stmt: ast.For) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        head = self.fn.new_label("head")
        body = self.fn.new_label("body")
        exit_ = self.fn.new_label("exit")
        self.b.jmp(head)
        self.b.new_block(head)
        cond = self.lower_expr(stmt.cond) if stmt.cond is not None else self.b.li(1)
        self.b.br(cond, body, exit_)
        self.b.new_block(body)
        self.lower_block(stmt.body)
        if not self._terminated():
            if stmt.step is not None:
                self.lower_stmt(stmt.step)
            self.b.jmp(head)
        self.b.new_block(exit_)
        self.scopes.pop()

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------
    def expr_as(self, expr: ast.Expr, target_type: str,
                dst: Reg | None = None) -> Reg:
        """Lower ``expr``, promote ``int`` → ``float`` if needed, and
        (when ``dst`` is given) leave the result in ``dst``."""
        if expr.type == "int" and target_type == "float":
            value = self.lower_expr(expr)
            return self.b.itof(value, dst=dst)
        return self.lower_expr(expr, dst=dst)

    def _element_address(self, name: str, index: ast.Expr) -> Reg:
        arr = self.module.globals[name]
        base = self.b.li(arr.base)
        return self.b.add(base, self.lower_expr(index))

    def _truth(self, value: Reg) -> Reg:
        return self.b.sne(value, self.b.li(0))

    def lower_expr(self, expr: ast.Expr, dst: Reg | None = None) -> Reg:
        """Lower ``expr``; with ``dst``, the final instruction writes it
        (so ``x = a + b`` becomes ``add x, a, b`` with no extra move)."""
        if isinstance(expr, ast.IntLit):
            return self.b.li(expr.value, dst=dst)
        if isinstance(expr, ast.FloatLit):
            return self.b.fli(expr.value, dst=dst)
        if isinstance(expr, ast.VarRef):
            value = self.lookup(expr.name)
            if dst is None or dst == value:
                return value
            op = Op.MOV if value.regclass is G else Op.FMOV
            self.b.emit(Instr(op, defs=[dst], uses=[value]))
            return dst
        if isinstance(expr, ast.Index):
            arr = self.module.globals[expr.name]
            address = self._element_address(expr.name, expr.index)
            return (self.b.ld(address, dst=dst) if arr.regclass is G
                    else self.b.fld(address, dst=dst))
        if isinstance(expr, ast.Unary):
            operand = self.lower_expr(expr.operand)
            if expr.op == "!":
                return self.b.seq(operand, self.b.li(0), dst=dst)
            return (self.b.neg(operand, dst=dst) if expr.operand.type == "int"
                    else self.b.fneg(operand, dst=dst))
        if isinstance(expr, ast.Cast):
            if expr.target == expr.operand.type:
                return self.lower_expr(expr.operand, dst=dst)
            operand = self.lower_expr(expr.operand)
            return (self.b.itof(operand, dst=dst) if expr.target == "float"
                    else self.b.ftoi(operand, dst=dst))
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr, dst)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr, dst)
        raise LoweringError(f"line {expr.line}: unknown expression")

    _INT_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
                "==": "seq", "!=": "sne", "<": "slt", "<=": "sle"}
    _FLOAT_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv",
                  "==": "fseq", "!=": "fsne", "<": "fslt", "<=": "fsle"}

    def _lower_binary(self, expr: ast.Binary, dst: Reg | None = None) -> Reg:
        op = expr.op
        if op in ("&&", "||"):
            left = self._truth(self.lower_expr(expr.left))
            right = self._truth(self.lower_expr(expr.right))
            return (self.b.and_(left, right, dst=dst) if op == "&&"
                    else self.b.or_(left, right, dst=dst))
        common = ("float" if "float" in (expr.left.type, expr.right.type)
                  else "int")
        left = self.expr_as(expr.left, common)
        right = self.expr_as(expr.right, common)
        if op in (">", ">="):
            op = "<" if op == ">" else "<="
            left, right = right, left
        table = self._INT_OPS if common == "int" else self._FLOAT_OPS
        return getattr(self.b, table[op])(left, right, dst=dst)

    def _lower_call(self, expr: ast.Call, dst: Reg | None = None) -> Reg | None:
        arg_types = self.param_types[expr.name]
        arg_regs = self._assign_param_regs(arg_types, expr.line,
                                           f"call to {expr.name!r}")
        values = [self.expr_as(arg, t) for arg, t in zip(expr.args, arg_types)]
        for value, reg in zip(values, arg_regs):
            op = Op.MOV if reg.regclass is G else Op.FMOV
            self.b.emit(Instr(op, defs=[reg], uses=[value]))
        ret_type = self.ret_types[expr.name]
        if ret_type == "void":
            self.b.call(expr.name, arg_regs=arg_regs)
            return None
        cls = _regclass(ret_type)
        ret_reg = self.machine.ret_reg(cls)
        self.b.call(expr.name, arg_regs=arg_regs, ret_reg=ret_reg)
        result = dst if dst is not None else self.fn.new_temp(cls)
        op = Op.MOV if cls is G else Op.FMOV
        self.b.emit(Instr(op, defs=[result], uses=[ret_reg]))
        return result


def lower(program: ast.Program,
          machine: MachineDescription | None = None) -> Module:
    """Lower a checked AST to an IR module."""
    machine = machine or alpha()
    module = Module()
    for g in program.globals:
        cls = _regclass(g.type)
        init = tuple(float(v) if cls is F else int(v) for v in g.init)
        module.add_global(g.name, cls, g.size, init)
    for fn_decl in program.functions:
        lowerer = _FunctionLowerer(module, program, fn_decl, machine)
        module.add_function(lowerer.lower())
    return module


def compile_minic(source: str,
                  machine: MachineDescription | None = None) -> Module:
    """Front door: parse, check, and lower minic source text."""
    return lower(check(parse(source)), machine)
