"""Semantic analysis for minic.

Checks names, arity and types, and decorates every expression node with
its ``type`` for the lowering pass.  The rules are deliberately simple:

* ``int`` promotes implicitly to ``float`` (mixed arithmetic, arguments,
  assignments, initializers); the reverse needs an explicit ``int(e)``;
* ``%`` and the logical operators are integer-only; comparisons accept a
  common promoted type and yield ``int``;
* array indices are ``int``; elements follow the array's declared type;
* functions may not fall off the end *syntactically unchecked* — lowering
  appends an implicit default return (``0``/``0.0``), so missing-return
  is a program-semantics choice, not UB.

Declarations carry mandatory initializers, so every variable is defined
before use on every path — the property the simulator oracle needs.
"""

from __future__ import annotations

from repro.lang import ast


class SemaError(ValueError):
    """Raised on a semantic error, with line information."""


class _Scope:
    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.vars: dict[str, str] = {}

    def declare(self, name: str, vtype: str, line: int) -> None:
        if name in self.vars:
            raise SemaError(f"line {line}: duplicate declaration of {name!r}")
        self.vars[name] = vtype

    def lookup(self, name: str) -> str | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None


class _Checker:
    def __init__(self, program: ast.Program):
        self.program = program
        self.globals = {g.name: g for g in program.globals}
        self.functions = {f.name: f for f in program.functions}

    def run(self) -> None:
        seen: set[str] = set()
        for g in self.program.globals:
            if g.name in seen:
                raise SemaError(f"line {g.line}: duplicate global {g.name!r}")
            seen.add(g.name)
            if g.size <= 0:
                raise SemaError(f"line {g.line}: global {g.name!r} needs a "
                                f"positive size")
            for v in g.init:
                if g.type == "int" and not isinstance(v, int):
                    raise SemaError(f"line {g.line}: float literal in int "
                                    f"array {g.name!r}")
        names: set[str] = set()
        for fn in self.program.functions:
            if fn.name in names:
                raise SemaError(f"line {fn.line}: duplicate function {fn.name!r}")
            if fn.name in self.globals:
                raise SemaError(f"line {fn.line}: {fn.name!r} is both a global "
                                f"and a function")
            names.add(fn.name)
        if "main" not in self.functions:
            raise SemaError("program has no 'main' function")
        if self.functions["main"].params:
            raise SemaError("'main' must take no parameters")
        for fn in self.program.functions:
            self.check_function(fn)

    # ------------------------------------------------------------------
    # Functions and statements.
    # ------------------------------------------------------------------
    def check_function(self, fn: ast.FuncDecl) -> None:
        scope = _Scope()
        for p in fn.params:
            scope.declare(p.name, p.type, fn.line)
        self.check_block(fn.body, _Scope(scope), fn)

    def check_block(self, body: list[ast.Stmt], scope: _Scope,
                    fn: ast.FuncDecl) -> None:
        for stmt in body:
            self.check_stmt(stmt, scope, fn)

    def _coerce(self, expr_type: str, target: str, line: int, what: str) -> None:
        if expr_type == target:
            return
        if expr_type == "int" and target == "float":
            return  # implicit promotion, realized by lowering
        raise SemaError(f"line {line}: cannot use {expr_type} value for "
                        f"{what} of type {target}")

    def check_stmt(self, stmt: ast.Stmt, scope: _Scope, fn: ast.FuncDecl) -> None:
        if isinstance(stmt, ast.Decl):
            t = self.check_expr(stmt.init, scope)
            self._coerce(t, stmt.type, stmt.line, f"variable {stmt.name!r}")
            scope.declare(stmt.name, stmt.type, stmt.line)
        elif isinstance(stmt, ast.Assign):
            var_type = scope.lookup(stmt.name)
            if var_type is None:
                raise SemaError(f"line {stmt.line}: assignment to undeclared "
                                f"{stmt.name!r}")
            t = self.check_expr(stmt.value, scope)
            self._coerce(t, var_type, stmt.line, f"variable {stmt.name!r}")
        elif isinstance(stmt, ast.StoreIndex):
            arr = self.globals.get(stmt.name)
            if arr is None:
                raise SemaError(f"line {stmt.line}: store to unknown array "
                                f"{stmt.name!r}")
            if self.check_expr(stmt.index, scope) != "int":
                raise SemaError(f"line {stmt.line}: array index must be int")
            t = self.check_expr(stmt.value, scope)
            self._coerce(t, arr.type, stmt.line, f"array {stmt.name!r} element")
        elif isinstance(stmt, ast.Print):
            self.check_expr(stmt.value, scope)
        elif isinstance(stmt, ast.Return):
            if fn.ret_type == "void":
                if stmt.value is not None:
                    raise SemaError(f"line {stmt.line}: void function "
                                    f"{fn.name!r} returns a value")
            else:
                if stmt.value is None:
                    raise SemaError(f"line {stmt.line}: {fn.name!r} must "
                                    f"return a {fn.ret_type}")
                t = self.check_expr(stmt.value, scope)
                self._coerce(t, fn.ret_type, stmt.line, "return value")
        elif isinstance(stmt, ast.ExprStmt):
            if not isinstance(stmt.expr, ast.Call):
                raise SemaError(f"line {stmt.line}: expression statement must "
                                f"be a call")
            self.check_expr(stmt.expr, scope, allow_void=True)
        elif isinstance(stmt, ast.If):
            if self.check_expr(stmt.cond, scope) != "int":
                raise SemaError(f"line {stmt.line}: condition must be int")
            self.check_block(stmt.then_body, _Scope(scope), fn)
            self.check_block(stmt.else_body, _Scope(scope), fn)
        elif isinstance(stmt, ast.While):
            if self.check_expr(stmt.cond, scope) != "int":
                raise SemaError(f"line {stmt.line}: condition must be int")
            self.check_block(stmt.body, _Scope(scope), fn)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self.check_stmt(stmt.init, inner, fn)
            if stmt.cond is not None:
                if self.check_expr(stmt.cond, inner) != "int":
                    raise SemaError(f"line {stmt.line}: condition must be int")
            if stmt.step is not None:
                self.check_stmt(stmt.step, inner, fn)
            self.check_block(stmt.body, _Scope(inner), fn)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemaError(f"line {stmt.line}: unknown statement {stmt!r}")

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------
    def check_expr(self, expr: ast.Expr, scope: _Scope, *,
                   allow_void: bool = False) -> str:
        expr.type = self._expr_type(expr, scope, allow_void)
        return expr.type

    def _expr_type(self, expr: ast.Expr, scope: _Scope, allow_void: bool) -> str:
        if isinstance(expr, ast.IntLit):
            return "int"
        if isinstance(expr, ast.FloatLit):
            return "float"
        if isinstance(expr, ast.VarRef):
            t = scope.lookup(expr.name)
            if t is None:
                raise SemaError(f"line {expr.line}: undeclared variable "
                                f"{expr.name!r}")
            return t
        if isinstance(expr, ast.Index):
            arr = self.globals.get(expr.name)
            if arr is None:
                raise SemaError(f"line {expr.line}: unknown array {expr.name!r}")
            if self.check_expr(expr.index, scope) != "int":
                raise SemaError(f"line {expr.line}: array index must be int")
            return arr.type
        if isinstance(expr, ast.Unary):
            t = self.check_expr(expr.operand, scope)
            if expr.op == "!":
                if t != "int":
                    raise SemaError(f"line {expr.line}: '!' needs an int")
                return "int"
            return t  # unary minus keeps the operand type
        if isinstance(expr, ast.Cast):
            self.check_expr(expr.operand, scope)
            return expr.target
        if isinstance(expr, ast.Binary):
            lt = self.check_expr(expr.left, scope)
            rt = self.check_expr(expr.right, scope)
            op = expr.op
            if op in ("&&", "||"):
                if lt != "int" or rt != "int":
                    raise SemaError(f"line {expr.line}: {op!r} needs ints")
                return "int"
            if op == "%":
                if lt != "int" or rt != "int":
                    raise SemaError(f"line {expr.line}: '%' needs ints")
                return "int"
            common = "float" if "float" in (lt, rt) else "int"
            if op in ("==", "!=", "<", "<=", ">", ">="):
                return "int"
            return common
        if isinstance(expr, ast.Call):
            callee = self.functions.get(expr.name)
            if callee is None:
                raise SemaError(f"line {expr.line}: call to unknown function "
                                f"{expr.name!r}")
            if len(expr.args) != len(callee.params):
                raise SemaError(f"line {expr.line}: {expr.name!r} takes "
                                f"{len(callee.params)} arguments, got "
                                f"{len(expr.args)}")
            for arg, param in zip(expr.args, callee.params):
                t = self.check_expr(arg, scope)
                self._coerce(t, param.type, expr.line,
                             f"parameter {param.name!r}")
            if callee.ret_type == "void" and not allow_void:
                raise SemaError(f"line {expr.line}: void call {expr.name!r} "
                                f"used as a value")
            return callee.ret_type
        raise SemaError(f"line {expr.line}: unknown expression {expr!r}")


def check(program: ast.Program) -> ast.Program:
    """Type-check ``program`` in place (decorating expressions); returns it."""
    _Checker(program).run()
    return program
