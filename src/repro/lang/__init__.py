"""minic: a small C-like frontend for writing workloads.

The paper's benchmarks are C and Fortran programs compiled through SUIF;
ours are minic programs compiled through this package.  The language is
deliberately small — ``int``/``float`` scalars, global arrays, functions,
structured control flow, ``print`` — but its lowering produces exactly
the IR shape the allocators care about: multi-definition temporaries with
lifetime holes, explicit calling-convention moves, and loops.

Pipeline: ``tokenize`` → ``parse`` → ``check`` (types, returns) →
``lower`` (AST to IR), wrapped by :func:`compile_minic`.
"""

from repro.lang.lexer import LexError, Token, tokenize
from repro.lang.parser import ParseError, parse
from repro.lang.sema import SemaError, check
from repro.lang.lower import compile_minic, lower

__all__ = [
    "LexError",
    "ParseError",
    "SemaError",
    "Token",
    "check",
    "compile_minic",
    "lower",
    "parse",
    "tokenize",
]
