"""Shared rewrite machinery for whole-lifetime allocators.

Both the two-pass binpacking baseline and the Poletto linear scan assign
each temporary a single home for its entire lifetime — a register or its
memory slot — and then rewrite the code in a second pass.  References to
memory-resident temporaries become the "point lifetimes" of Section 2.2:
a load into a scratch register before each use, a store from a scratch
register after each def.
"""

from __future__ import annotations

from repro.allocators.base import AllocationStats
from repro.ir.function import Function
from repro.ir.instr import Instr, SpillPhase
from repro.ir.temp import PhysReg, Temp
from repro.obs.trace import EventKind
from repro.spill.emitter import SpillCodeEmitter


def rewrite_whole_lifetime(fn: Function, emitter: SpillCodeEmitter,
                           stats: AllocationStats,
                           assignment: dict[Temp, PhysReg],
                           scratch: dict[tuple[Instr, Temp], PhysReg]) -> None:
    """Apply a whole-lifetime allocation decision to ``fn`` in place.

    ``assignment`` maps register-resident temporaries to their register;
    every other temporary is memory-resident and must have a ``scratch``
    register recorded for each instruction that references it.
    """
    tr = stats.trace
    if tr.enabled:
        for temp, reg in assignment.items():
            tr.emit(EventKind.ASSIGN, temp=temp, reg=reg,
                    detail="whole lifetime")
    for block in fn.blocks:
        if tr.enabled:
            tr.set_location(block=block.label)
        rewritten: list[Instr] = []
        for instr in block.instrs:
            pre: list[Instr] = []
            post: list[Instr] = []
            loaded: set[Temp] = set()
            for i, use in enumerate(instr.uses):
                if not isinstance(use, Temp):
                    continue
                reg = assignment.get(use)
                if reg is None:
                    reg = scratch[(instr, use)]
                    if use not in loaded:
                        pre.append(emitter.reload(use, reg, SpillPhase.EVICT))
                        if tr.enabled:
                            tr.emit(EventKind.SECOND_CHANCE_RELOAD, temp=use,
                                    reg=reg, detail="scratch reload")
                        loaded.add(use)
                instr.uses[i] = reg
            for i, dst in enumerate(instr.defs):
                if not isinstance(dst, Temp):
                    continue
                reg = assignment.get(dst)
                if reg is None:
                    reg = scratch[(instr, dst)]
                    post.append(emitter.store(dst, reg, SpillPhase.EVICT))
                    if tr.enabled:
                        tr.emit(EventKind.SPILL_STORE_EMITTED, temp=dst,
                                reg=reg, detail="scratch store")
                instr.defs[i] = reg
            rewritten.extend(pre)
            rewritten.append(instr)
            rewritten.extend(post)
        block.instrs = rewritten
