"""Graph-coloring register allocation (George & Appel, TOPLAS 1996).

The paper's comparison allocator: iterated register coalescing in the
Chaitin–Briggs style, with coalescing folded into the coloring loop.  The
implementation follows the published worklist algorithm, including both
departures the paper lists for its own implementation (Section 3): the
adjacency relation lives in a lower-triangular bit matrix rather than a
hash table, and liveness is computed once, before allocation, with
block-local temporaries excluded from the bit vectors.
"""

from repro.allocators.coloring.george_appel import GraphColoring
from repro.allocators.coloring.ifgraph import (
    IndexGraph,
    InterferenceGraph,
    TriangularBitMatrix,
)
from repro.allocators.coloring.orderedset import OrderedSet
from repro.allocators.coloring.reference import (
    ReferenceBuild,
    reference_build,
)
from repro.allocators.coloring.sweep import build_interference

__all__ = [
    "GraphColoring",
    "IndexGraph",
    "InterferenceGraph",
    "OrderedSet",
    "ReferenceBuild",
    "TriangularBitMatrix",
    "build_interference",
    "reference_build",
]
