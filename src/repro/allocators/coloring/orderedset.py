"""The deterministic insertion-ordered set used by the coloring worklists.

Worklist iteration order decides which node simplifies or coalesces
first, so it must not depend on hash randomization; an insertion-ordered
dict gives deterministic order for any key type (node indices, move
ids, instruction objects).
"""

from __future__ import annotations

from typing import Iterable


class OrderedSet:
    """A set with deterministic (insertion) iteration order."""

    __slots__ = ("_d",)

    def __init__(self, items: Iterable | None = None):
        self._d: dict = dict.fromkeys(items or ())

    def add(self, item) -> None:
        self._d[item] = None

    def discard(self, item) -> None:
        self._d.pop(item, None)

    def pop_first(self):
        item = next(iter(self._d))
        del self._d[item]
        return item

    def __contains__(self, item) -> bool:
        return item in self._d

    def __iter__(self):
        return iter(self._d)

    def __len__(self) -> int:
        return len(self._d)

    def __bool__(self) -> bool:
        return bool(self._d)
