"""Sparse interval-sweep interference build.

The mask-based build (kept verbatim as the oracle in
:mod:`repro.allocators.coloring.reference`) walks *every* instruction of
every block each round, re-filtering operand lists per register class and
hashing ``Temp`` objects throughout — O(instrs x per-instruction object
work), which made ``interference.fpppp`` the pipeline's wall-clock
dominator (BENCH_5.json: 3.35 s, ~18x the next-slowest kernel).

This build is structural instead.  Under the paper's Section 3 view —
block-local temporaries excluded from dataflow, liveness as bit vectors —
interference within a block is *interval overlap*: a def of ``d`` at slot
``s`` interferes exactly with the temps whose live segment covers ``s``
(PAPERS.md: "On the Complexity of Spill Everywhere under SSA Form").  So:

1. **Decode** (one forward pass per block): compress the block to its
   def/use *events* in dense node-index space.  Each relevant
   instruction yields ``(clobber_seq, clobber_mask, use_mask, move_id)``;
   instructions with no operand of the class being colored (and no call
   clobber) vanish here — they can neither start nor end a segment.
   Occurrence costs are accumulated in the same pass (per block the loop
   weight is constant, so the per-node float sums are bit-identical to
   the oracle's reverse-order accumulation).

2. **Sweep** (backward over the event list): the live segments are
   maintained as one active-interval bitmask — a segment of ``t`` opens
   at ``t``'s last use or at block exit (liveness-mask-backed for
   globals, purely local events otherwise) and closes at ``t``'s def —
   and each def event emits its edges against the whole active mask in
   bulk.  Total cost is O(events + edges) int operations.

The block's live-out mask is threaded straight from the liveness bit
vectors through a :meth:`TempIndex.translation_table` into node-index
space — no ``temps_of`` materialization, no re-masking, and temps that
are dead at the block boundary cost nothing.
"""

from __future__ import annotations

from repro.allocators.coloring.orderedset import OrderedSet
from repro.dataflow.bitvector import translate_mask
from repro.ir.instr import MOVE_OPS, Op


def build_interference(col) -> None:
    """Fill ``col``'s graph, costs, and move worklists for one round.

    ``col`` is the round's ``_ClassColoring``: its ``graph`` is a fresh
    :class:`~repro.allocators.coloring.ifgraph.IndexGraph`, ``cost`` a
    zeroed float list, ``moves``/``move_list``/``worklist_moves`` empty.
    Every observable — edge set, adjacency insertion order, degrees,
    costs, move discovery order — is byte-identical to
    :func:`~repro.allocators.coloring.reference.reference_build`.
    """
    fn = col.fn
    regclass = col.regclass
    graph = col.graph
    node_index = graph.index
    n_pre = graph.n_pre
    liveness = col.shared.liveness
    loops = col.shared.loops
    cost = col.cost
    moves = col.moves
    move_list = col.move_list
    worklist_moves = col.worklist_moves
    caller_saved_ix = col.caller_saved_ix
    caller_saved_mask = col.caller_saved_mask
    add_edges = graph.add_edges_from_mask
    live_out = liveness.live_out

    # TempIndex bit -> node-index bit.  Globals absent from this round's
    # code (a previous round's spill rewriting removed their occurrences)
    # have no graph node and drop to 0 — the paper's "global liveness
    # information is not affected by such temporaries" filtering.
    table = liveness.index.translation_table(
        lambda t: node_index.get(t) if t.regclass is regclass else None)

    call_op = Op.CALL
    for block in fn.blocks:
        weight = float(10 ** min(loops.depth_of(block.label), 12))

        # Decode: one forward pass compressing the block to events.
        events = []
        for instr in block.instrs:
            defs = ()
            for r in instr.defs:
                if r.regclass is regclass:
                    i = node_index[r]
                    defs += (i,)
                    if i >= n_pre:
                        cost[i] += weight
            use_mask = 0
            use_ix = -1
            for r in instr.uses:
                if r.regclass is regclass:
                    use_ix = node_index[r]
                    use_mask |= 1 << use_ix
                    if use_ix >= n_pre:
                        cost[use_ix] += weight
            op = instr.op
            if op is call_op:
                events.append((defs + caller_saved_ix,
                               _mask_of(defs) | caller_saved_mask,
                               use_mask, -1))
            elif defs:
                move_id = -1
                if use_mask and op in MOVE_OPS:
                    move_id = len(moves)
                    moves.append((instr, defs[0], use_ix))
                events.append((defs, _mask_of(defs), use_mask, move_id))
            elif use_mask:
                events.append((defs, 0, use_mask, -1))

        # Sweep: walk the events backward with the active-segment mask.
        live = translate_mask(live_out[block.label], table)
        for clobber_seq, clobber_mask, use_mask, move_id in reversed(events):
            if move_id >= 0:
                live &= ~use_mask
                _, def_ix, use_ix = moves[move_id]
                for node in (def_ix, use_ix):
                    ml = move_list.get(node)
                    if ml is None:
                        ml = move_list[node] = OrderedSet()
                    ml.add(move_id)
                worklist_moves.add(move_id)
            if clobber_mask:
                live |= clobber_mask
                for d in clobber_seq:
                    add_edges(d, live)
                live &= ~clobber_mask
            live |= use_mask


def _mask_of(indices: tuple[int, ...]) -> int:
    mask = 0
    for i in indices:
        mask |= 1 << i
    return mask
