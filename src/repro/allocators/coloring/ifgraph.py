"""Interference graphs over one register class.

Nodes are physical registers (precolored) and temporaries.  The adjacency
relation is stored two ways, following George & Appel: a constant-time
membership structure (here the paper's lower-triangular bit matrix,
Section 3: "we use a lower-triangular bit matrix, rather than a hash
table, to record the adjacency relation") and adjacency lists for the
non-precolored nodes.  Precolored nodes have effectively infinite degree
and carry no adjacency lists.
"""

from __future__ import annotations

from repro.ir.temp import PhysReg, Temp

#: A node of the interference graph.
Node = Temp | PhysReg


class TriangularBitMatrix:
    """A lower-triangular bit matrix over ``n`` indexed nodes.

    ``set(i, j)``/``test(i, j)`` are symmetric; the pair is stored once at
    row ``max(i, j)``, column ``min(i, j)``.  Backed by a ``bytearray`` so
    single-bit updates are O(1).
    """

    __slots__ = ("n", "_bits")

    def __init__(self, n: int):
        self.n = n
        self._bits = bytearray((n * (n - 1) // 2 + 7) // 8)

    @staticmethod
    def _index(i: int, j: int) -> int:
        if i < j:
            i, j = j, i
        return i * (i - 1) // 2 + j

    def set(self, i: int, j: int) -> None:
        """Mark nodes ``i`` and ``j`` as adjacent (no-op on the diagonal)."""
        if i == j:
            return
        k = self._index(i, j)
        self._bits[k >> 3] |= 1 << (k & 7)

    def test(self, i: int, j: int) -> bool:
        """True when nodes ``i`` and ``j`` are adjacent."""
        if i == j:
            return False
        k = self._index(i, j)
        return bool(self._bits[k >> 3] >> (k & 7) & 1)

    def popcount(self) -> int:
        """Number of distinct adjacent pairs (the graph's edge count)."""
        return sum(byte.bit_count() for byte in self._bits)


class InterferenceGraph:
    """Adjacency for one coloring round.

    Attributes:
        nodes: All nodes, precolored registers first (their indices are
            stable across queries).
        matrix: The triangular bit matrix over node indices.
        adj_list: Neighbours of each non-precolored node, as an
            insertion-ordered dict keyed by neighbour — iteration order
            must not depend on hash randomization, or worklist order (and
            therefore coloring decisions) would vary run to run.
        degree: Current degree per node (precolored: a huge constant).
    """

    #: Effectively-infinite degree for precolored nodes.
    INFINITE = 1 << 30

    def __init__(self, precolored: list[PhysReg], temps: list[Temp]):
        self.nodes: list[Node] = [*precolored, *temps]
        self.index: dict[Node, int] = {n: i for i, n in enumerate(self.nodes)}
        self.precolored: set[Node] = set(precolored)
        self.matrix = TriangularBitMatrix(len(self.nodes))
        self.adj_list: dict[Node, dict[Node, None]] = {t: {} for t in temps}
        self.degree: dict[Node, int] = {t: 0 for t in temps}
        for reg in precolored:
            self.degree[reg] = self.INFINITE

    def add_edge(self, u: Node, v: Node) -> None:
        """Record interference between ``u`` and ``v`` (idempotent)."""
        if u == v:
            return
        i, j = self.index[u], self.index[v]
        if self.matrix.test(i, j):
            return
        self.matrix.set(i, j)
        if u not in self.precolored:
            self.adj_list[u][v] = None
            self.degree[u] += 1
        if v not in self.precolored:
            self.adj_list[v][u] = None
            self.degree[v] += 1

    def interferes(self, u: Node, v: Node) -> bool:
        """Constant-time adjacency test (the bit-matrix query)."""
        return self.matrix.test(self.index[u], self.index[v])

    def edge_count(self) -> int:
        """Distinct interference edges (Table 3's 'interference graph
        edges' column)."""
        return self.matrix.popcount()
