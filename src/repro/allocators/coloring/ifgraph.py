"""Interference graphs over one register class.

Nodes are physical registers (precolored) and temporaries.  The adjacency
relation is stored two ways, following George & Appel: a constant-time
membership structure (here the paper's lower-triangular bit matrix,
Section 3: "we use a lower-triangular bit matrix, rather than a hash
table, to record the adjacency relation") and adjacency lists for the
non-precolored nodes.  Precolored nodes have effectively infinite degree
and carry no adjacency lists.
"""

from __future__ import annotations

from repro.ir.temp import PhysReg, Temp

#: A node of the interference graph.
Node = Temp | PhysReg


class TriangularBitMatrix:
    """A lower-triangular bit matrix over ``n`` indexed nodes.

    ``set(i, j)``/``test(i, j)`` are symmetric; the pair is stored once at
    row ``max(i, j)``, column ``min(i, j)``.  Backed by a ``bytearray`` so
    single-bit updates are O(1).
    """

    __slots__ = ("n", "_bits")

    def __init__(self, n: int):
        self.n = n
        self._bits = bytearray((n * (n - 1) // 2 + 7) // 8)

    @staticmethod
    def _index(i: int, j: int) -> int:
        if i < j:
            i, j = j, i
        return i * (i - 1) // 2 + j

    def set(self, i: int, j: int) -> None:
        """Mark nodes ``i`` and ``j`` as adjacent (no-op on the diagonal)."""
        if i == j:
            return
        k = self._index(i, j)
        self._bits[k >> 3] |= 1 << (k & 7)

    def test(self, i: int, j: int) -> bool:
        """True when nodes ``i`` and ``j`` are adjacent."""
        if i == j:
            return False
        k = self._index(i, j)
        return bool(self._bits[k >> 3] >> (k & 7) & 1)

    def popcount(self) -> int:
        """Number of distinct adjacent pairs (the graph's edge count)."""
        # One arbitrary-precision int popcount beats a Python-level loop
        # over the bytes by orders of magnitude on big graphs.
        return int.from_bytes(self._bits, "little").bit_count()


class IndexGraph:
    """Index-space interference adjacency for one coloring round.

    The sparse-sweep build and the worklist machinery address nodes by
    dense integer index (precolored registers first, then the round's
    candidate temporaries, in deterministic order), so every hot-path
    structure is a flat list indexed at C speed — no ``Temp`` hashing.

    The adjacency relation is stored once, as per-node int bitmasks
    (``adj_mask``); the membership test the paper's lower-triangular bit
    matrix provided is a single shift-and-test against a mask, and the
    edge count is the mask popcounts halved.  Insertion-ordered neighbour
    lists are kept for the non-precolored nodes exactly as
    :class:`InterferenceGraph` keeps them — ascending-index bulk adds,
    so iteration order is byte-identical to the mask-based oracle build.

    Attributes:
        nodes: All nodes, precolored registers first.
        index: Node -> dense index (the boundary translation table).
        n / n_pre: Total node count and the precolored prefix length.
        adj_mask: Per index, the neighbour set as an int bitmask.
        adj_list: Per index, neighbours in insertion order (precolored
            rows stay empty — they have no meaningful adjacency lists).
        degree: Current degree per index (precolored: a huge constant).
    """

    #: Effectively-infinite degree for precolored nodes.
    INFINITE = 1 << 30

    __slots__ = ("nodes", "index", "n", "n_pre", "adj_mask", "adj_list",
                 "degree")

    def __init__(self, precolored: list[PhysReg], temps: list[Temp]):
        self.nodes: list[Node] = [*precolored, *temps]
        self.index: dict[Node, int] = {n: i for i, n in enumerate(self.nodes)}
        self.n = len(self.nodes)
        self.n_pre = len(precolored)
        self.adj_mask: list[int] = [0] * self.n
        self.adj_list: list[list[int]] = [[] for _ in range(self.n)]
        self.degree: list[int] = ([self.INFINITE] * self.n_pre
                                  + [0] * (self.n - self.n_pre))

    def add_edge(self, i: int, j: int) -> None:
        """Record interference between indices ``i`` and ``j`` (idempotent)."""
        if i == j or (self.adj_mask[i] >> j) & 1:
            return
        self.adj_mask[i] |= 1 << j
        self.adj_mask[j] |= 1 << i
        n_pre = self.n_pre
        if i >= n_pre:
            self.adj_list[i].append(j)
            self.degree[i] += 1
        if j >= n_pre:
            self.adj_list[j].append(i)
            self.degree[j] += 1

    def add_edges_from_mask(self, di: int, live_mask: int) -> None:
        """``add_edge(i, di)`` for every bit ``i`` of ``live_mask``.

        Already-adjacent nodes (and ``di`` itself) are masked out in one
        int operation; the loop body runs only for *new* neighbours, in
        ascending index order.
        """
        new = live_mask & ~self.adj_mask[di] & ~(1 << di)
        if not new:
            return
        n_pre = self.n_pre
        adj_mask = self.adj_mask
        adj_list = self.adj_list
        degree = self.degree
        d_bit = 1 << di
        d_list = adj_list[di] if di >= n_pre else None
        remaining = new
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            li = low.bit_length() - 1
            adj_mask[li] |= d_bit
            if li >= n_pre:
                adj_list[li].append(di)
                degree[li] += 1
            if d_list is not None:
                d_list.append(li)
        adj_mask[di] |= new
        if d_list is not None:
            degree[di] += new.bit_count()

    def interferes(self, i: int, j: int) -> bool:
        """Constant-time adjacency test (one shift against the mask)."""
        return (self.adj_mask[i] >> j) & 1 != 0

    def edge_count(self) -> int:
        """Distinct interference edges (Table 3's 'interference graph
        edges' column); every edge sets a bit in both endpoint masks."""
        return sum(m.bit_count() for m in self.adj_mask) // 2


class InterferenceGraph:
    """Adjacency for one coloring round.

    Attributes:
        nodes: All nodes, precolored registers first (their indices are
            stable across queries).
        matrix: The triangular bit matrix over node indices.
        adj_list: Neighbours of each non-precolored node, as an
            insertion-ordered dict keyed by neighbour — iteration order
            must not depend on hash randomization, or worklist order (and
            therefore coloring decisions) would vary run to run.
        adj_mask: Per node index, the neighbour set as an int bitmask
            (bit ``i`` = adjacent to ``nodes[i]``) — mirrors ``matrix``
            exactly and lets the build add a def's edges against a whole
            live mask at once instead of testing pair by pair.
        degree: Current degree per node (precolored: a huge constant).
    """

    #: Effectively-infinite degree for precolored nodes.
    INFINITE = 1 << 30

    def __init__(self, precolored: list[PhysReg], temps: list[Temp]):
        self.nodes: list[Node] = [*precolored, *temps]
        self.index: dict[Node, int] = {n: i for i, n in enumerate(self.nodes)}
        self.precolored: set[Node] = set(precolored)
        self.matrix = TriangularBitMatrix(len(self.nodes))
        self.adj_list: dict[Node, dict[Node, None]] = {t: {} for t in temps}
        self.adj_mask: list[int] = [0] * len(self.nodes)
        self.degree: dict[Node, int] = {t: 0 for t in temps}
        for reg in precolored:
            self.degree[reg] = self.INFINITE

    def add_edge(self, u: Node, v: Node) -> None:
        """Record interference between ``u`` and ``v`` (idempotent)."""
        if u == v:
            return
        i, j = self.index[u], self.index[v]
        if self.matrix.test(i, j):
            return
        self.matrix.set(i, j)
        self.adj_mask[i] |= 1 << j
        self.adj_mask[j] |= 1 << i
        if u not in self.precolored:
            self.adj_list[u][v] = None
            self.degree[u] += 1
        if v not in self.precolored:
            self.adj_list[v][u] = None
            self.degree[v] += 1

    def add_edges_from_mask(self, d: Node, live_mask: int) -> None:
        """``add_edge(nodes[i], d)`` for every bit ``i`` of ``live_mask``.

        Already-adjacent nodes (and ``d`` itself) are masked out in one
        int operation, so the loop body runs only for *new* neighbours —
        in ascending index order, which keeps adjacency-list insertion
        order identical to a pairwise build that sorts the live set by
        node index.
        """
        di = self.index[d]
        new = live_mask & ~self.adj_mask[di] & ~(1 << di)
        if not new:
            return
        nodes = self.nodes
        adj_mask = self.adj_mask
        adj_list = self.adj_list
        degree = self.degree
        matrix = self.matrix
        precolored = self.precolored
        d_adj = None if d in precolored else adj_list[d]
        d_bit = 1 << di
        remaining = new
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            li = low.bit_length() - 1
            l = nodes[li]
            matrix.set(li, di)
            adj_mask[li] |= d_bit
            if l not in precolored:
                adj_list[l][d] = None
                degree[l] += 1
            if d_adj is not None:
                d_adj[l] = None
        adj_mask[di] |= new
        if d_adj is not None:
            degree[d] += new.bit_count()

    def interferes(self, u: Node, v: Node) -> bool:
        """Constant-time adjacency test (the bit-matrix query)."""
        return self.matrix.test(self.index[u], self.index[v])

    def edge_count(self) -> int:
        """Distinct interference edges (Table 3's 'interference graph
        edges' column)."""
        return self.matrix.popcount()
