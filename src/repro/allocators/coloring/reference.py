"""The mask-based interference build, retained as the semantic oracle.

This is PR 5's per-instruction build, verbatim: walk every instruction
of every block backward, keep the live set as an int bitmask over graph
node indices, and land each def's edges in bulk against the whole mask.
It is correct and deterministic but pays O(instrs) Python-level object
work per round (operand re-filtering, ``Temp`` hashing), which is why
the sparse sweep in :mod:`repro.allocators.coloring.sweep` replaced it
on the hot path.

Like :mod:`repro.sim.reference` for the pre-decoded simulator, this
module is the slow, obviously-faithful implementation the fast one is
differentially tested against:

* ``GraphColoring(build="mask")`` runs *this* build for every round
  (the selectable oracle);
* ``GraphColoring(build="check")`` runs both builds and asserts the
  sweep reproduced the oracle's edge set, adjacency insertion order,
  degrees, spill costs, and move discovery order byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.allocators.coloring.ifgraph import InterferenceGraph, Node
from repro.allocators.coloring.orderedset import OrderedSet
from repro.ir.function import Function
from repro.ir.temp import PhysReg, Temp
from repro.ir.types import RegClass
from repro.target.machine import MachineDescription


@dataclass(eq=False)
class ReferenceBuild:
    """Everything one oracle build round produced."""

    graph: InterferenceGraph
    cost: dict[Temp, float]
    move_list: dict[Node, OrderedSet]
    worklist_moves: OrderedSet


def reference_build(fn: Function, machine: MachineDescription, shared,
                    regclass: RegClass, precolored: list[PhysReg],
                    initial: list[Temp]) -> ReferenceBuild:
    """One interference-build round, the PR 5 mask-based way."""
    liveness = shared.liveness
    loops = shared.loops
    graph = InterferenceGraph(precolored, initial)
    node_index = graph.index
    cost: dict[Temp, float] = {t: 0.0 for t in initial}
    move_list: dict[Node, OrderedSet] = {}
    worklist_moves = OrderedSet()
    caller_saved = [r for r in machine.caller_saved(regclass)
                    if r.regclass is regclass]
    caller_saved_mask = 0
    for reg in caller_saved:
        caller_saved_mask |= 1 << node_index[reg]
    in_code = set(initial)
    depth_weight = {}
    for block in fn.blocks:
        depth = loops.depth_of(block.label)
        depth_weight[block.label] = float(10 ** min(depth, 12))

    # The live set is an int bitmask over graph node indices: set
    # algebra collapses to int ops, and a def's edges land in bulk
    # against the whole mask (``add_edges_from_mask``) instead of
    # pair by pair.  Bits ascend by node index, so edge insertion
    # order is index order — independent of hash randomization,
    # exactly as the old sorted-set iteration guaranteed.
    for block in fn.blocks:
        weight = depth_weight[block.label]
        live_mask = 0
        for t in liveness.live_out_temps(block.label):
            if t.regclass is regclass and t in in_code:
                live_mask |= 1 << node_index[t]
        for instr in reversed(block.instrs):
            defs = [r for r in instr.defs if r.regclass is regclass]
            uses = [r for r in instr.uses if r.regclass is regclass]
            uses_mask = 0
            for u in uses:
                uses_mask |= 1 << node_index[u]
            for node in defs + uses:
                if isinstance(node, Temp):
                    cost[node] = cost.get(node, 0.0) + weight
            if instr.is_move and defs and uses:
                live_mask &= ~uses_mask
                for node in (*defs, *uses):
                    move_list.setdefault(node, OrderedSet()).add(instr)
                worklist_moves.add(instr)
            clobbers = defs
            clobber_mask = 0
            for d in defs:
                clobber_mask |= 1 << node_index[d]
            if instr.is_call:
                clobbers = defs + caller_saved
                clobber_mask |= caller_saved_mask
            live_mask |= clobber_mask
            for d in clobbers:
                graph.add_edges_from_mask(d, live_mask)
            live_mask &= ~clobber_mask
            live_mask |= uses_mask
    return ReferenceBuild(graph, cost, move_list, worklist_moves)


def adopt_reference(col, ref: ReferenceBuild) -> None:
    """Continue a coloring round from the oracle's build (``build="mask"``).

    Translates the oracle's object-keyed structures into the round's
    index-space ones, preserving every iteration order, so the worklist
    machinery downstream behaves identically whichever build produced
    its inputs.
    """
    graph = col.graph
    index = graph.index
    graph.adj_mask = list(ref.graph.adj_mask)
    for node, neighbours in ref.graph.adj_list.items():
        graph.adj_list[index[node]] = [index[m] for m in neighbours]
    for node, degree in ref.graph.degree.items():
        graph.degree[index[node]] = degree
    for temp, value in ref.cost.items():
        col.cost[index[temp]] = value
    move_id: dict = {}
    for instr in ref.worklist_moves:
        move_id[instr] = len(col.moves)
        col.moves.append((instr, index[instr.defs[0]], index[instr.uses[0]]))
        col.worklist_moves.add(move_id[instr])
    for node, instrs in ref.move_list.items():
        col.move_list[index[node]] = OrderedSet(move_id[m] for m in instrs)


def assert_matches_reference(col, ref: ReferenceBuild) -> None:
    """Assert the sweep build reproduced the oracle byte-for-byte.

    Compares edge sets (adjacency masks), adjacency-list insertion
    order, degrees, spill costs (exact float equality), per-node move
    lists, and the move worklist's discovery order.
    """
    graph = col.graph
    index = graph.index
    name = f"{col.fn.name}/{col.regclass.name}"
    if graph.adj_mask != ref.graph.adj_mask:
        bad = [i for i, (a, b) in enumerate(zip(graph.adj_mask,
                                                ref.graph.adj_mask)) if a != b]
        raise AssertionError(
            f"{name}: sweep edge set diverges from oracle at nodes "
            f"{[graph.nodes[i] for i in bad[:5]]}")
    for node, neighbours in ref.graph.adj_list.items():
        ni = index[node]
        expected = [index[m] for m in neighbours]
        if graph.adj_list[ni] != expected:
            raise AssertionError(
                f"{name}: adjacency order of {node} diverges: "
                f"sweep {graph.adj_list[ni][:8]} vs oracle {expected[:8]}")
    for node, degree in ref.graph.degree.items():
        if graph.degree[index[node]] != degree:
            raise AssertionError(
                f"{name}: degree of {node} is {graph.degree[index[node]]}, "
                f"oracle says {degree}")
    for temp, value in ref.cost.items():
        if col.cost[index[temp]] != value:
            raise AssertionError(
                f"{name}: spill cost of {temp} is {col.cost[index[temp]]!r}, "
                f"oracle says {value!r}")
    sweep_moves = [col.moves[m][0] for m in col.worklist_moves]
    if sweep_moves != list(ref.worklist_moves):
        raise AssertionError(f"{name}: move worklist order diverges")
    ref_lists = {index[node]: [instr for instr in instrs]
                 for node, instrs in ref.move_list.items()}
    sweep_lists = {node: [col.moves[m][0] for m in ids]
                   for node, ids in col.move_list.items()}
    if sweep_lists != ref_lists:
        raise AssertionError(f"{name}: per-node move lists diverge")
