"""Iterated register coalescing (George & Appel), the comparison allocator.

This follows the published worklist algorithm — Simplify / Coalesce /
Freeze / SelectSpill driving nodes onto the select stack, Briggs
conservative coalescing between temporaries and the George test against
precolored registers, optimistic color assignment, and a spill-and-
iterate outer loop ("if the heuristic fails, some register candidates are
spilled to memory, spill code is inserted for their occurrences, and the
whole process repeats", Section 1).

Per the paper's Section 3:

* the two register files are colored **separately** ("our graph-coloring
  allocator deals separately with general-purpose registers and
  floating-point registers");
* adjacency lives in a lower-triangular bit matrix
  (:class:`~repro.allocators.coloring.ifgraph.TriangularBitMatrix`);
* liveness is computed **once**, before allocation; each build round
  filters the per-block live-out sets down to temporaries still present
  in the code, which is sound because spill code only introduces
  block-local temporaries ("global liveness information is not affected
  by such temporaries");
* loop depth weights the spill costs exactly as it weights the
  binpacking allocator's eviction priority.

Worklists are backed by insertion-ordered dicts so the allocator is
deterministic run to run.
"""

from __future__ import annotations

from typing import Iterable

from repro.allocators.base import (
    AllocationError,
    AllocationStats,
    RegisterAllocator,
    SharedAnalyses,
    SpillSlots,
)
from repro.allocators.coloring.ifgraph import InterferenceGraph, Node
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, SpillPhase
from repro.ir.temp import PhysReg, Temp
from repro.ir.types import RegClass
from repro.obs.trace import EventKind
from repro.target.machine import MachineDescription


class _OrderedSet:
    """A set with deterministic (insertion) iteration order."""

    __slots__ = ("_d",)

    def __init__(self, items: Iterable | None = None):
        self._d: dict = dict.fromkeys(items or ())

    def add(self, item) -> None:
        self._d[item] = None

    def discard(self, item) -> None:
        self._d.pop(item, None)

    def pop_first(self):
        item = next(iter(self._d))
        del self._d[item]
        return item

    def __contains__(self, item) -> bool:
        return item in self._d

    def __iter__(self):
        return iter(self._d)

    def __len__(self) -> int:
        return len(self._d)

    def __bool__(self) -> bool:
        return bool(self._d)


class _ClassColoring:
    """One register class of one function, across all coloring rounds."""

    #: Spill-generated temporaries get their occurrence cost multiplied by
    #: this factor so SelectSpill avoids re-spilling them (they are point
    #: lifetimes with tiny degree, so this never blocks termination).
    SPILL_TEMP_COST_FACTOR = 1e9

    def __init__(self, fn: Function, machine: MachineDescription,
                 shared: SharedAnalyses, regclass: RegClass,
                 slots: SpillSlots, stats: AllocationStats):
        self.fn = fn
        self.machine = machine
        self.shared = shared
        self.regclass = regclass
        self.slots = slots
        self.stats = stats
        self.k = machine.file_size(regclass)
        self.precolored_regs = list(machine.regs(regclass))
        # Color preference: caller-saved first; a temporary that can live
        # in a caller-saved register should, so the callee-save prologue
        # stays small.
        self.color_order = (list(machine.caller_saved(regclass))
                            + list(machine.callee_saved(regclass)))
        self.spill_generated: set[Temp] = set()
        self.rounds = 0
        self.total_edges = 0

    # ------------------------------------------------------------------
    # Outer loop.
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Color until no node spills, then rewrite temps to registers."""
        while True:
            self.rounds += 1
            self._init_round()
            self._build()
            self.total_edges += self.graph.edge_count()
            self._make_worklists()
            while (self.simplify_wl or self.worklist_moves
                   or self.freeze_wl or self.spill_wl):
                if self.simplify_wl:
                    self._simplify()
                elif self.worklist_moves:
                    self._coalesce()
                elif self.freeze_wl:
                    self._freeze()
                else:
                    self._select_spill()
            self._assign_colors()
            if not self.spilled_nodes:
                break
            self._rewrite_spills()
        self._apply_colors()

    def _init_round(self) -> None:
        # Candidates are the temporaries that *occur in the code* this
        # round — not fn.all_temps(), which also lists parameters whose
        # occurrences a previous round's spill rewriting replaced (such a
        # ghost would re-seed the live sets and spill forever).
        present: dict[Temp, None] = {}
        for instr in self.fn.instructions():
            for t in instr.temps():
                present.setdefault(t, None)
        self.initial: list[Temp] = [
            t for t in present if t.regclass is self.regclass]
        self.graph = InterferenceGraph(self.precolored_regs, self.initial)
        self.simplify_wl = _OrderedSet()
        self.freeze_wl = _OrderedSet()
        self.spill_wl = _OrderedSet()
        self.spilled_nodes = _OrderedSet()
        self.coalesced_nodes: set[Node] = set()
        self.colored_nodes: set[Node] = set()
        self.select_stack: list[Node] = []
        self.select_set: set[Node] = set()
        self.coalesced_moves = _OrderedSet()
        self.constrained_moves = _OrderedSet()
        self.frozen_moves = _OrderedSet()
        self.worklist_moves = _OrderedSet()
        self.active_moves = _OrderedSet()
        self.move_list: dict[Node, _OrderedSet] = {}
        self.alias: dict[Node, Node] = {}
        self.color: dict[Node, PhysReg] = {r: r for r in self.precolored_regs}
        self.cost: dict[Temp, float] = {t: 0.0 for t in self.initial}

    # ------------------------------------------------------------------
    # Build.
    # ------------------------------------------------------------------
    def _class_regs(self, regs: Iterable) -> list[Node]:
        return [r for r in regs if r.regclass is self.regclass]

    def _build(self) -> None:
        liveness = self.shared.liveness
        loops = self.shared.loops
        graph = self.graph
        node_index = graph.index
        cost = self.cost
        caller_saved = self._class_regs(self.machine.caller_saved(self.regclass))
        caller_saved_mask = 0
        for reg in caller_saved:
            caller_saved_mask |= 1 << node_index[reg]
        in_code = set(self.initial)
        depth_weight = {}
        for block in self.fn.blocks:
            depth = loops.depth_of(block.label)
            depth_weight[block.label] = float(10 ** min(depth, 12))

        # The live set is an int bitmask over graph node indices: set
        # algebra collapses to int ops, and a def's edges land in bulk
        # against the whole mask (``add_edges_from_mask``) instead of
        # pair by pair.  Bits ascend by node index, so edge insertion
        # order is index order — independent of hash randomization,
        # exactly as the old sorted-set iteration guaranteed.
        for block in self.fn.blocks:
            weight = depth_weight[block.label]
            live_mask = 0
            for t in liveness.live_out_temps(block.label):
                if t.regclass is self.regclass and t in in_code:
                    live_mask |= 1 << node_index[t]
            for instr in reversed(block.instrs):
                defs = self._class_regs(instr.defs)
                uses = self._class_regs(instr.uses)
                uses_mask = 0
                for u in uses:
                    uses_mask |= 1 << node_index[u]
                for node in defs + uses:
                    if isinstance(node, Temp):
                        cost[node] = cost.get(node, 0.0) + weight
                if instr.is_move and defs and uses:
                    live_mask &= ~uses_mask
                    for node in (*defs, *uses):
                        self.move_list.setdefault(node, _OrderedSet()).add(instr)
                    self.worklist_moves.add(instr)
                clobbers = defs
                clobber_mask = 0
                for d in defs:
                    clobber_mask |= 1 << node_index[d]
                if instr.is_call:
                    clobbers = defs + caller_saved
                    clobber_mask |= caller_saved_mask
                live_mask |= clobber_mask
                for d in clobbers:
                    graph.add_edges_from_mask(d, live_mask)
                live_mask &= ~clobber_mask
                live_mask |= uses_mask

    def _make_worklists(self) -> None:
        for t in self.initial:
            if self.graph.degree[t] >= self.k:
                self.spill_wl.add(t)
            elif self._move_related(t):
                self.freeze_wl.add(t)
            else:
                self.simplify_wl.add(t)

    # ------------------------------------------------------------------
    # Worklist machinery (Appel's pseudocode, names kept recognizable).
    # ------------------------------------------------------------------
    def _adjacent(self, n: Node) -> list[Node]:
        return [m for m in self.graph.adj_list[n]
                if m not in self.select_set and m not in self.coalesced_nodes]

    def _node_moves(self, n: Node) -> list[Instr]:
        moves = self.move_list.get(n)
        if not moves:
            return []
        return [m for m in moves
                if m in self.active_moves or m in self.worklist_moves]

    def _move_related(self, n: Node) -> bool:
        return bool(self._node_moves(n))

    def _simplify(self) -> None:
        n = self.simplify_wl.pop_first()
        self.select_stack.append(n)
        self.select_set.add(n)
        for m in self._adjacent(n):
            self._decrement_degree(m)

    def _decrement_degree(self, m: Node) -> None:
        d = self.graph.degree[m]
        self.graph.degree[m] = d - 1
        if d == self.k and m not in self.graph.precolored:
            self._enable_moves([m, *self._adjacent(m)])
            self.spill_wl.discard(m)
            if self._move_related(m):
                self.freeze_wl.add(m)
            else:
                self.simplify_wl.add(m)

    def _enable_moves(self, nodes: Iterable[Node]) -> None:
        for n in nodes:
            for m in self._node_moves(n):
                if m in self.active_moves:
                    self.active_moves.discard(m)
                    self.worklist_moves.add(m)

    def _coalesce(self) -> None:
        m = self.worklist_moves.pop_first()
        x = self._get_alias(m.defs[0])
        y = self._get_alias(m.uses[0])
        if y in self.graph.precolored:
            u, v = y, x
        else:
            u, v = x, y
        if u == v:
            self.coalesced_moves.add(m)
            self._add_work_list(u)
        elif v in self.graph.precolored or self.graph.interferes(u, v):
            self.constrained_moves.add(m)
            self._add_work_list(u)
            self._add_work_list(v)
        elif ((u in self.graph.precolored
               and all(self._george_ok(t, u) for t in self._adjacent(v)))
              or (u not in self.graph.precolored
                  and self._briggs_conservative(
                      {*self._adjacent(u), *self._adjacent(v)}))):
            self.coalesced_moves.add(m)
            self._combine(u, v)
            self._add_work_list(u)
        else:
            self.active_moves.add(m)

    def _add_work_list(self, u: Node) -> None:
        if (u not in self.graph.precolored and not self._move_related(u)
                and self.graph.degree[u] < self.k):
            self.freeze_wl.discard(u)
            self.simplify_wl.add(u)

    def _george_ok(self, t: Node, r: Node) -> bool:
        return (self.graph.degree[t] < self.k or t in self.graph.precolored
                or self.graph.interferes(t, r))

    def _briggs_conservative(self, nodes: set[Node]) -> bool:
        significant = sum(1 for n in nodes if self.graph.degree[n] >= self.k)
        return significant < self.k

    def _get_alias(self, n: Node) -> Node:
        while n in self.coalesced_nodes:
            n = self.alias[n]
        return n

    def _combine(self, u: Node, v: Node) -> None:
        if v in self.freeze_wl:
            self.freeze_wl.discard(v)
        else:
            self.spill_wl.discard(v)
        self.coalesced_nodes.add(v)
        self.alias[v] = u
        u_moves = self.move_list.setdefault(u, _OrderedSet())
        for mv in self.move_list.get(v, _OrderedSet()):
            u_moves.add(mv)
        self._enable_moves([v])
        for t in self._adjacent(v):
            self.graph.add_edge(t, u)
            self._decrement_degree(t)
        if self.graph.degree[u] >= self.k and u in self.freeze_wl:
            self.freeze_wl.discard(u)
            self.spill_wl.add(u)

    def _freeze(self) -> None:
        u = self.freeze_wl.pop_first()
        self.simplify_wl.add(u)
        self._freeze_moves(u)

    def _freeze_moves(self, u: Node) -> None:
        for m in self._node_moves(u):
            x, y = m.defs[0], m.uses[0]
            if self._get_alias(y) == self._get_alias(u):
                v = self._get_alias(x)
            else:
                v = self._get_alias(y)
            self.active_moves.discard(m)
            self.frozen_moves.add(m)
            if (v not in self.graph.precolored and not self._node_moves(v)
                    and self.graph.degree[v] < self.k):
                self.freeze_wl.discard(v)
                self.simplify_wl.add(v)

    def _select_spill(self) -> None:
        def metric(t: Temp) -> float:
            cost = self.cost.get(t, 0.0)
            if t in self.spill_generated:
                cost *= self.SPILL_TEMP_COST_FACTOR
            return cost / max(self.graph.degree[t], 1)

        m = min(self.spill_wl, key=metric)
        self.spill_wl.discard(m)
        self.simplify_wl.add(m)
        self._freeze_moves(m)

    # ------------------------------------------------------------------
    # Color assignment and spill rewriting.
    # ------------------------------------------------------------------
    def _assign_colors(self) -> None:
        while self.select_stack:
            n = self.select_stack.pop()
            self.select_set.discard(n)
            forbidden: set[PhysReg] = set()
            for w in self.graph.adj_list[n]:
                w = self._get_alias(w)
                if w in self.colored_nodes or w in self.graph.precolored:
                    forbidden.add(self.color[w])
            chosen = next((c for c in self.color_order if c not in forbidden),
                          None)
            tr = self.stats.trace
            if chosen is None:
                self.spilled_nodes.add(n)
                if tr.enabled:
                    tr.emit(EventKind.EVICT, temp=n,
                            detail=f"no color (round {self.rounds})")
            else:
                self.colored_nodes.add(n)
                self.color[n] = chosen
                if tr.enabled:
                    tr.emit(EventKind.ASSIGN, temp=n, reg=chosen,
                            detail=f"color (round {self.rounds})")

    def _rewrite_spills(self) -> None:
        spilled = set(self.spilled_nodes)
        tr = self.stats.trace
        for block in self.fn.blocks:
            if tr.enabled:
                tr.set_location(block=block.label)
            rewritten: list[Instr] = []
            for instr in block.instrs:
                pre: list[Instr] = []
                post: list[Instr] = []
                fresh: dict[Temp, Temp] = {}
                for i, use in enumerate(instr.uses):
                    if use in spilled:
                        t = fresh.get(use)
                        if t is None:
                            t = self.fn.new_temp(self.regclass)
                            fresh[use] = t
                            self.spill_generated.add(t)
                            pre.append(Instr(Op.LDS, defs=[t],
                                             slot=self.slots.home(use),
                                             spill_phase=SpillPhase.EVICT))
                            self.stats.bump_spill(SpillPhase.EVICT, "load")
                            if tr.enabled:
                                tr.emit(EventKind.SECOND_CHANCE_RELOAD,
                                        temp=use,
                                        detail=f"coloring reload via {t}")
                        instr.uses[i] = t
                for i, dst in enumerate(instr.defs):
                    if dst in spilled:
                        t = self.fn.new_temp(self.regclass)
                        self.spill_generated.add(t)
                        post.append(Instr(Op.STS, uses=[t],
                                          slot=self.slots.home(dst),
                                          spill_phase=SpillPhase.EVICT))
                        self.stats.bump_spill(SpillPhase.EVICT, "store")
                        if tr.enabled:
                            tr.emit(EventKind.SPILL_STORE_EMITTED, temp=dst,
                                    detail=f"coloring store via {t}")
                        instr.defs[i] = t
                rewritten.extend(pre)
                rewritten.append(instr)
                rewritten.extend(post)
            block.instrs = rewritten

    def _apply_colors(self) -> None:
        for instr in self.fn.instructions():
            for operands in (instr.defs, instr.uses):
                for i, reg in enumerate(operands):
                    if isinstance(reg, Temp) and reg.regclass is self.regclass:
                        node = self._get_alias(reg)
                        try:
                            operands[i] = self.color[node]
                        except KeyError:
                            raise AllocationError(
                                f"{self.fn.name}: no color for {reg} "
                                f"(alias {node})") from None


class GraphColoring(RegisterAllocator):
    """George–Appel iterated register coalescing over both register files."""

    def __init__(self) -> None:
        self.name = "graph coloring"

    def allocate_function(self, fn: Function, machine: MachineDescription,
                          shared: SharedAnalyses, slots: SpillSlots,
                          stats: AllocationStats) -> None:
        rounds = 0
        edges = 0
        for regclass in (RegClass.GPR, RegClass.FPR):
            coloring = _ClassColoring(fn, machine, shared, regclass, slots, stats)
            with stats.profiler.phase(f"allocate.color.{regclass.name.lower()}"):
                coloring.run()
            rounds += coloring.rounds
            edges += coloring.total_edges
        stats.coloring_iterations[fn.name] = rounds
        stats.interference_edges[fn.name] = edges
        stats.metrics.bump("coloring.rounds", rounds)
        stats.metrics.bump("coloring.interference_edges", edges)
