"""Iterated register coalescing (George & Appel), the comparison allocator.

This follows the published worklist algorithm — Simplify / Coalesce /
Freeze / SelectSpill driving nodes onto the select stack, Briggs
conservative coalescing between temporaries and the George test against
precolored registers, optimistic color assignment, and a spill-and-
iterate outer loop ("if the heuristic fails, some register candidates are
spilled to memory, spill code is inserted for their occurrences, and the
whole process repeats", Section 1).

Per the paper's Section 3:

* the two register files are colored **separately** ("our graph-coloring
  allocator deals separately with general-purpose registers and
  floating-point registers");
* adjacency lives in per-node bitmasks
  (:class:`~repro.allocators.coloring.ifgraph.IndexGraph`), the moral
  equivalent of the paper's lower-triangular bit matrix;
* liveness is computed **once**, before allocation; each build round
  filters the per-block live-out masks down to temporaries still present
  in the code, which is sound because spill code only introduces
  block-local temporaries ("global liveness information is not affected
  by such temporaries");
* loop depth weights the spill costs exactly as it weights the
  binpacking allocator's eviction priority.

Everything inside one coloring round runs in **index space**: nodes are
dense integers (precolored registers first, then this round's candidate
temporaries), so worklist flags are ``bytearray`` lookups, aliases and
degrees are flat lists, and the live set / adjacency / forbidden-color
sets are int bitmasks.  ``Temp`` objects appear only at the round's
boundaries (collecting candidates, rewriting spills, applying colors) —
the per-operation ``Temp`` hashing that used to dominate the profile is
gone from every loop that scales with program size.

The interference build itself is selectable (``GraphColoring(build=...)``):
``"sweep"`` is the sparse interval-sweep build
(:mod:`~repro.allocators.coloring.sweep`), ``"mask"`` the retained
per-instruction oracle (:mod:`~repro.allocators.coloring.reference`),
and ``"check"`` runs both and asserts byte-identical results.

Worklists are backed by insertion-ordered dicts so the allocator is
deterministic run to run.
"""

from __future__ import annotations

from typing import Iterable

from repro.allocators.base import (
    AllocationError,
    AllocationStats,
    RegisterAllocator,
    SharedAnalyses,
)
from repro.allocators.coloring.ifgraph import IndexGraph
from repro.allocators.coloring.orderedset import OrderedSet
from repro.allocators.coloring.reference import (
    adopt_reference,
    assert_matches_reference,
    reference_build,
)
from repro.allocators.coloring.sweep import build_interference
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, SpillPhase
from repro.ir.temp import PhysReg, Temp
from repro.ir.types import RegClass
from repro.obs.trace import EventKind
from repro.spill.emitter import SpillCodeEmitter
from repro.target.machine import MachineDescription

#: Backward-compatible alias — the worklist set moved to its own module
#: so the build kernels can share it without importing the allocator.
_OrderedSet = OrderedSet

#: The selectable interference builds (see :class:`GraphColoring`).
BUILD_MODES = ("sweep", "mask", "check")


class _ClassColoring:
    """One register class of one function, across all coloring rounds."""

    #: Spill-generated temporaries get their occurrence cost multiplied by
    #: this factor so SelectSpill avoids re-spilling them (they are point
    #: lifetimes with tiny degree, so this never blocks termination).
    SPILL_TEMP_COST_FACTOR = 1e9

    def __init__(self, fn: Function, machine: MachineDescription,
                 shared: SharedAnalyses, regclass: RegClass,
                 emitter: SpillCodeEmitter, stats: AllocationStats,
                 build: str = "sweep"):
        self.fn = fn
        self.machine = machine
        self.shared = shared
        self.regclass = regclass
        self.emitter = emitter
        self.stats = stats
        self.build_mode = build
        self.precolored_regs = list(machine.regs(regclass))
        self.n_pre = len(self.precolored_regs)
        # Color preference: caller-saved first; a temporary that can live
        # in a caller-saved register should, so the callee-save prologue
        # stays small.  Stress contexts may reorder or shrink the list
        # (the precolored node space always stays the full file).
        self.color_order = list(
            emitter.register_order(regclass, prefer_caller_saved=True))
        # k is the number of *assignable* colors.  Equal to the file size
        # by construction in the default context; smaller under
        # reduced-regs stress (which is what keeps the spill-and-iterate
        # loop terminating there).
        self.k = len(self.color_order)
        # The precolored prefix of the node space is identical every
        # round, so the index-space views of the calling convention are
        # computed once here.
        pre_index = {r: i for i, r in enumerate(self.precolored_regs)}
        self.color_order_ix = tuple(pre_index[r] for r in self.color_order)
        self.caller_saved_ix = tuple(
            pre_index[r] for r in machine.caller_saved(regclass))
        self.caller_saved_mask = 0
        for i in self.caller_saved_ix:
            self.caller_saved_mask |= 1 << i
        self.spill_generated: set[Temp] = set()
        self.rounds = 0
        self.total_edges = 0

    # ------------------------------------------------------------------
    # Outer loop.
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Color until no node spills, then rewrite temps to registers."""
        forced = {t for t in self.emitter.forced_memory(
                      t for instr in self.fn.instructions()
                      for t in instr.temps())
                  if t.regclass is self.regclass}
        if forced:
            # Forced-evict stress: pre-spill a seeded sample before the
            # first build round, as if round 0 had failed to color them.
            self._rewrite_spills(forced)
        while True:
            self.rounds += 1
            self._init_round()
            self._build()
            self.total_edges += self.graph.edge_count()
            self._make_worklists()
            while (self.simplify_wl or self.worklist_moves
                   or self.freeze_wl or self.spill_wl):
                if self.simplify_wl:
                    self._simplify()
                elif self.worklist_moves:
                    self._coalesce()
                elif self.freeze_wl:
                    self._freeze()
                else:
                    self._select_spill()
            self._assign_colors()
            if not self.spilled_nodes:
                break
            nodes = self.graph.nodes
            self._rewrite_spills({nodes[i] for i in self.spilled_nodes})
        self._apply_colors()

    def _init_round(self) -> None:
        # Candidates are the temporaries that *occur in the code* this
        # round — not fn.all_temps(), which also lists parameters whose
        # occurrences a previous round's spill rewriting replaced (such a
        # ghost would re-seed the live sets and spill forever).
        present: dict[Temp, None] = {}
        for instr in self.fn.instructions():
            for t in instr.temps():
                present.setdefault(t, None)
        self.initial: list[Temp] = [
            t for t in present if t.regclass is self.regclass]
        self.graph = IndexGraph(self.precolored_regs, self.initial)
        n = self.graph.n
        self.is_spill_temp = bytearray(n)
        if self.spill_generated:
            nodes = self.graph.nodes
            for i in range(self.n_pre, n):
                if nodes[i] in self.spill_generated:
                    self.is_spill_temp[i] = 1
        self.simplify_wl = OrderedSet()
        self.freeze_wl = OrderedSet()
        self.spill_wl = OrderedSet()
        self.spilled_nodes = OrderedSet()
        self.coalesced = bytearray(n)
        self.colored = bytearray(n)
        self.on_stack = bytearray(n)
        self.select_stack: list[int] = []
        self.coalesced_moves = OrderedSet()
        self.constrained_moves = OrderedSet()
        self.frozen_moves = OrderedSet()
        self.worklist_moves = OrderedSet()
        self.active_moves = OrderedSet()
        #: Move ``m`` is ``moves[m] = (instr, def index, use index)``; the
        #: move worklists hold these dense ids, not instruction objects.
        self.moves: list[tuple[Instr, int, int]] = []
        self.move_list: dict[int, OrderedSet] = {}
        self.alias: list[int] = list(range(n))
        # ``color[i]`` is a *node index* into the precolored prefix; a
        # precolored node is its own color, so the identity prefix stands
        # in for the old ``{r: r}`` seeding.
        self.color: list[int] = list(range(self.n_pre)) + [0] * (n - self.n_pre)
        self.cost: list[float] = [0.0] * n

    # ------------------------------------------------------------------
    # Build (selectable: sparse sweep, mask oracle, or both + compare).
    # ------------------------------------------------------------------
    def _build(self) -> None:
        if self.build_mode == "sweep":
            build_interference(self)
            return
        ref = reference_build(self.fn, self.machine, self.shared,
                              self.regclass, self.precolored_regs,
                              self.initial)
        if self.build_mode == "mask":
            adopt_reference(self, ref)
        else:  # "check": run the sweep too and compare byte for byte.
            build_interference(self)
            assert_matches_reference(self, ref)

    def _make_worklists(self) -> None:
        degree = self.graph.degree
        k = self.k
        for i in range(self.n_pre, self.graph.n):
            if degree[i] >= k:
                self.spill_wl.add(i)
            elif self._move_related(i):
                self.freeze_wl.add(i)
            else:
                self.simplify_wl.add(i)

    # ------------------------------------------------------------------
    # Worklist machinery (Appel's pseudocode, names kept recognizable).
    # ------------------------------------------------------------------
    def _adjacent(self, n: int) -> list[int]:
        on_stack = self.on_stack
        coalesced = self.coalesced
        return [m for m in self.graph.adj_list[n]
                if not on_stack[m] and not coalesced[m]]

    def _node_moves(self, n: int) -> list[int]:
        moves = self.move_list.get(n)
        if not moves:
            return []
        active = self.active_moves
        worklist = self.worklist_moves
        return [m for m in moves if m in active or m in worklist]

    def _move_related(self, n: int) -> bool:
        moves = self.move_list.get(n)
        if not moves:
            return False
        active = self.active_moves
        worklist = self.worklist_moves
        for m in moves:
            if m in active or m in worklist:
                return True
        return False

    def _simplify(self) -> None:
        n = self.simplify_wl.pop_first()
        self.select_stack.append(n)
        self.on_stack[n] = 1
        # _adjacent + _decrement_degree, inlined: this loop runs once per
        # (node, neighbour) pair of the whole graph, and only the rare
        # k-crossing case needs the slow path.
        on_stack = self.on_stack
        coalesced = self.coalesced
        degree = self.graph.degree
        k = self.k
        n_pre = self.n_pre
        for m in self.graph.adj_list[n]:
            if on_stack[m] or coalesced[m]:
                continue
            d = degree[m]
            degree[m] = d - 1
            if d == k and m >= n_pre:
                self._enable_moves([m, *self._adjacent(m)])
                self.spill_wl.discard(m)
                if self._move_related(m):
                    self.freeze_wl.add(m)
                else:
                    self.simplify_wl.add(m)

    def _decrement_degree(self, m: int) -> None:
        degree = self.graph.degree
        d = degree[m]
        degree[m] = d - 1
        if d == self.k and m >= self.n_pre:
            self._enable_moves([m, *self._adjacent(m)])
            self.spill_wl.discard(m)
            if self._move_related(m):
                self.freeze_wl.add(m)
            else:
                self.simplify_wl.add(m)

    def _enable_moves(self, nodes: Iterable[int]) -> None:
        # Of _node_moves' two sources only active moves matter here (a
        # worklist move is already enabled), so filter directly.
        active = self.active_moves
        worklist = self.worklist_moves
        move_list = self.move_list
        for n in nodes:
            moves = move_list.get(n)
            if not moves:
                continue
            for m in moves:
                if m in active:
                    active.discard(m)
                    worklist.add(m)

    def _coalesce(self) -> None:
        m = self.worklist_moves.pop_first()
        _, def_ix, use_ix = self.moves[m]
        x = self._get_alias(def_ix)
        y = self._get_alias(use_ix)
        n_pre = self.n_pre
        if y < n_pre:
            u, v = y, x
        else:
            u, v = x, y
        if u == v:
            self.coalesced_moves.add(m)
            self._add_work_list(u)
        elif v < n_pre or self.graph.interferes(u, v):
            self.constrained_moves.add(m)
            self._add_work_list(u)
            self._add_work_list(v)
        elif ((u < n_pre
               and all(self._george_ok(t, u) for t in self._adjacent(v)))
              or (u >= n_pre
                  and self._briggs_conservative(
                      {*self._adjacent(u), *self._adjacent(v)}))):
            self.coalesced_moves.add(m)
            self._combine(u, v)
            self._add_work_list(u)
        else:
            self.active_moves.add(m)

    def _add_work_list(self, u: int) -> None:
        if (u >= self.n_pre and not self._move_related(u)
                and self.graph.degree[u] < self.k):
            self.freeze_wl.discard(u)
            self.simplify_wl.add(u)

    def _george_ok(self, t: int, r: int) -> bool:
        return (self.graph.degree[t] < self.k or t < self.n_pre
                or self.graph.interferes(t, r))

    def _briggs_conservative(self, nodes: set[int]) -> bool:
        k = self.k
        degree = self.graph.degree
        significant = sum(1 for n in nodes if degree[n] >= k)
        return significant < k

    def _get_alias(self, n: int) -> int:
        coalesced = self.coalesced
        alias = self.alias
        while coalesced[n]:
            n = alias[n]
        return n

    def _combine(self, u: int, v: int) -> None:
        if v in self.freeze_wl:
            self.freeze_wl.discard(v)
        else:
            self.spill_wl.discard(v)
        self.coalesced[v] = 1
        self.alias[v] = u
        u_moves = self.move_list.setdefault(u, OrderedSet())
        v_moves = self.move_list.get(v)
        if v_moves:
            for mv in v_moves:
                u_moves.add(mv)
        self._enable_moves([v])
        for t in self._adjacent(v):
            self.graph.add_edge(t, u)
            self._decrement_degree(t)
        if self.graph.degree[u] >= self.k and u in self.freeze_wl:
            self.freeze_wl.discard(u)
            self.spill_wl.add(u)

    def _freeze(self) -> None:
        u = self.freeze_wl.pop_first()
        self.simplify_wl.add(u)
        self._freeze_moves(u)

    def _freeze_moves(self, u: int) -> None:
        for m in self._node_moves(u):
            _, x, y = self.moves[m]
            if self._get_alias(y) == self._get_alias(u):
                v = self._get_alias(x)
            else:
                v = self._get_alias(y)
            self.active_moves.discard(m)
            self.frozen_moves.add(m)
            if (v >= self.n_pre and not self._node_moves(v)
                    and self.graph.degree[v] < self.k):
                self.freeze_wl.discard(v)
                self.simplify_wl.add(v)

    def _select_spill(self) -> None:
        cost = self.cost
        degree = self.graph.degree
        is_spill_temp = self.is_spill_temp
        factor = self.SPILL_TEMP_COST_FACTOR

        def metric(t: int) -> float:
            c = cost[t]
            if is_spill_temp[t]:
                c *= factor
            return c / max(degree[t], 1)

        m = min(self.spill_wl, key=metric)
        self.spill_wl.discard(m)
        self.simplify_wl.add(m)
        self._freeze_moves(m)

    # ------------------------------------------------------------------
    # Color assignment and spill rewriting.
    # ------------------------------------------------------------------
    def _assign_colors(self) -> None:
        graph = self.graph
        nodes = graph.nodes
        adj_list = graph.adj_list
        alias = self.alias
        coalesced = self.coalesced
        colored = self.colored
        on_stack = self.on_stack
        color = self.color
        color_order_ix = self.color_order_ix
        n_pre = self.n_pre
        rounds = self.rounds
        tr = self.stats.trace
        # Aliases are final once the worklists drain, so resolve every
        # node's representative once instead of chasing chains per
        # adjacency entry.
        resolved = list(range(graph.n))
        for i in range(graph.n):
            j = i
            while coalesced[j]:
                j = alias[j]
            resolved[i] = j
        while self.select_stack:
            n = self.select_stack.pop()
            on_stack[n] = 0
            forbidden = 0
            for w in adj_list[n]:
                w = resolved[w]
                if colored[w] or w < n_pre:
                    forbidden |= 1 << color[w]
            chosen = -1
            for c in color_order_ix:
                if not forbidden >> c & 1:
                    chosen = c
                    break
            if chosen < 0:
                self.spilled_nodes.add(n)
                if tr.enabled:
                    tr.emit(EventKind.EVICT, temp=nodes[n],
                            detail=f"no color (round {rounds})")
            else:
                colored[n] = 1
                color[n] = chosen
                if tr.enabled:
                    tr.emit(EventKind.ASSIGN, temp=nodes[n], reg=nodes[chosen],
                            detail=f"color (round {rounds})")

    def _rewrite_spills(self, spilled: set[Temp]) -> None:
        tr = self.stats.trace
        for block in self.fn.blocks:
            if tr.enabled:
                tr.set_location(block=block.label)
            rewritten: list[Instr] = []
            for instr in block.instrs:
                pre: list[Instr] = []
                post: list[Instr] = []
                fresh: dict[Temp, Temp] = {}
                for i, use in enumerate(instr.uses):
                    if use in spilled:
                        t = fresh.get(use)
                        if t is None:
                            t = self.fn.new_temp(self.regclass)
                            fresh[use] = t
                            self.spill_generated.add(t)
                            pre.append(self.emitter.reload(
                                use, t, SpillPhase.EVICT))
                            if tr.enabled:
                                tr.emit(EventKind.SECOND_CHANCE_RELOAD,
                                        temp=use,
                                        detail=f"coloring reload via {t}")
                        instr.uses[i] = t
                for i, dst in enumerate(instr.defs):
                    if dst in spilled:
                        t = self.fn.new_temp(self.regclass)
                        self.spill_generated.add(t)
                        post.append(self.emitter.store(
                            dst, t, SpillPhase.EVICT))
                        if tr.enabled:
                            tr.emit(EventKind.SPILL_STORE_EMITTED, temp=dst,
                                    detail=f"coloring store via {t}")
                        instr.defs[i] = t
                rewritten.extend(pre)
                rewritten.append(instr)
                rewritten.extend(post)
            block.instrs = rewritten

    def _apply_colors(self) -> None:
        index = self.graph.index
        nodes = self.graph.nodes
        alias = self.alias
        coalesced = self.coalesced
        colored = self.colored
        color = self.color
        n_pre = self.n_pre
        for instr in self.fn.instructions():
            for operands in (instr.defs, instr.uses):
                for i, reg in enumerate(operands):
                    if isinstance(reg, Temp) and reg.regclass is self.regclass:
                        node = index[reg]
                        while coalesced[node]:
                            node = alias[node]
                        if colored[node] or node < n_pre:
                            operands[i] = nodes[color[node]]
                        else:
                            raise AllocationError(
                                f"{self.fn.name}: no color for {reg} "
                                f"(alias {nodes[node]})")


class GraphColoring(RegisterAllocator):
    """George–Appel iterated register coalescing over both register files.

    Args:
        build: Which interference build to run each round — ``"sweep"``
            (default, the sparse interval-sweep kernel), ``"mask"`` (the
            retained per-instruction oracle), or ``"check"`` (both, with
            a byte-for-byte comparison; the differential-testing mode).
    """

    def __init__(self, build: str = "sweep") -> None:
        if build not in BUILD_MODES:
            raise ValueError(f"unknown interference build {build!r}; "
                             f"expected one of {BUILD_MODES}")
        self.name = "graph coloring"
        self.build = build

    def allocate_function(self, fn: Function, machine: MachineDescription,
                          shared: SharedAnalyses, emitter: SpillCodeEmitter,
                          stats: AllocationStats) -> None:
        rounds = 0
        edges = 0
        for regclass in (RegClass.GPR, RegClass.FPR):
            coloring = _ClassColoring(fn, machine, shared, regclass, emitter,
                                      stats, build=self.build)
            with stats.profiler.phase(f"allocate.color.{regclass.name.lower()}"):
                coloring.run()
            rounds += coloring.rounds
            edges += coloring.total_edges
        stats.coloring_iterations[fn.name] = rounds
        stats.interference_edges[fn.name] = edges
        stats.metrics.bump("coloring.rounds", rounds)
        stats.metrics.bump("coloring.interference_edges", edges)
