"""Binpacking linear-scan allocators (Section 2 of the paper).

:class:`SecondChanceBinpacking` is the paper's contribution: a single
forward allocate/rewrite scan over the linear code, lifetime-hole-aware
bin selection, optimistic "second chance" handling of spilled
temporaries, a consistency-tracked spill-store minimization, and a
resolution pass that reconciles the linear assumptions with the actual
CFG.

:class:`TwoPassBinpacking` is the Section 3.1 ablation baseline: the same
hole-aware packing, but each lifetime lives *wholly* in a register or
wholly in memory, with rewriting as a separate second pass and no
resolution.
"""

from repro.allocators.binpack.allocator import SecondChanceBinpacking
from repro.allocators.binpack.twopass import TwoPassBinpacking

__all__ = ["SecondChanceBinpacking", "TwoPassBinpacking"]
