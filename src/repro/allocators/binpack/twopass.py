"""Traditional two-pass binpacking (the Section 3.1 ablation baseline).

"The traditional approach to linear-scan allocation first walks the
sorted list of lifetime intervals deciding which temporaries live in a
register and which live in memory.  A second phase then scans the
procedure code and rewrites each operand" (Section 2.2).  This
implementation keeps the *hole-aware* packing ("this implementation still
takes advantage of lifetime holes during allocation", Section 3.1) but
assigns each whole lifetime to exactly one home:

* **Decision pass.**  At a temporary's first reference it receives a
  register whose reserved ranges and existing commitments are disjoint
  from the temporary's *entire* lifetime — so a lifetime crossing a call
  can never use a caller-saved register, which is precisely the weakness
  the paper's ``wc`` experiment exposes.  If no register fits, the
  temporary lives in memory.
* **Point lifetimes.**  Each reference to a memory-resident temporary
  needs a scratch register for just that instruction ("these point
  lifetimes are always assigned a register", Section 2.2).  When no
  register is free at that point, the lowest-priority committed lifetime
  covering the point is forced to memory and the decision pass restarts —
  a whole-lifetime eviction, never a split.
* **Rewrite pass.**  Register-resident temporaries are renamed; memory-
  resident ones get a load before each use and a store after each def,
  with no consistency tracking ("this algorithm does not avoid
  unnecessary stores", Section 3.1) and no resolution pass (locations
  never vary, so block boundaries always agree).
"""

from __future__ import annotations

from repro.allocators.wholelife import rewrite_whole_lifetime
from repro.allocators.base import (
    AllocationError,
    AllocationStats,
    RegisterAllocator,
    SharedAnalyses,
    eviction_priority,
)
from repro.ir.function import Function
from repro.ir.instr import Instr
from repro.ir.temp import PhysReg, Temp
from repro.lifetimes.intervals import LifetimeTable
from repro.spill.emitter import SpillCodeEmitter
from repro.target.machine import MachineDescription


class _Decision:
    """Result of one decision-pass attempt."""

    def __init__(self) -> None:
        self.assignment: dict[Temp, PhysReg] = {}
        self.memory: set[Temp] = set()
        #: (instr, temp) -> scratch register for that point lifetime.
        self.scratch: dict[tuple[Instr, Temp], PhysReg] = {}
        self.victim: Temp | None = None  # set when a restart is required


class TwoPassBinpacking(RegisterAllocator):
    """Whole-lifetime binpacking with hole-aware packing; see module doc."""

    def __init__(self) -> None:
        self.name = "two-pass binpacking"

    def allocate_function(self, fn: Function, machine: MachineDescription,
                          shared: SharedAnalyses, emitter: SpillCodeEmitter,
                          stats: AllocationStats) -> None:
        table = shared.lifetimes
        # Forced-evict stress pre-seeds memory residents; empty by default.
        forced_memory: set[Temp] = emitter.forced_memory(
            t for t in table.temps if isinstance(t, Temp))
        while True:
            decision = self._decide(table, emitter, forced_memory)
            if decision.victim is None:
                break
            forced_memory.add(decision.victim)
        rewrite_whole_lifetime(fn, emitter, stats, decision.assignment,
                               decision.scratch)

    # ------------------------------------------------------------------
    # Decision pass.
    # ------------------------------------------------------------------
    def _register_order(self, emitter: SpillCodeEmitter,
                        temp: Temp) -> tuple[PhysReg, ...]:
        """Caller-saved first: using a callee-saved register costs a
        save/restore pair, so it is the fallback.  (Stress contexts may
        reorder or shrink this through the emitter.)"""
        return emitter.register_order(temp.regclass, prefer_caller_saved=True)

    def _decide(self, table: LifetimeTable, emitter: SpillCodeEmitter,
                forced_memory: set[Temp]) -> _Decision:
        decision = _Decision()
        decision.memory |= forced_memory
        committed: dict[PhysReg, list[Temp]] = {}

        def whole_lifetime_fits(temp: Temp, reg: PhysReg) -> bool:
            live = table.temps[temp].live
            if table.reserved_for(reg).overlaps(live):
                return False
            return all(not table.temps[other].live.overlaps(live)
                       for other in committed.get(reg, []))

        def point_free(reg: PhysReg, start: int, end: int,
                       locked: set[PhysReg]) -> bool:
            if reg in locked:
                return False
            if table.reserved_for(reg).overlaps_interval(start, end):
                return False
            return all(not table.temps[other].live.overlaps_interval(start, end)
                       for other in committed.get(reg, []))

        for instr in table.linear:
            start = table.use_point(instr)
            end = start + 2
            locked: set[PhysReg] = {r for r in instr.regs()
                                    if isinstance(r, PhysReg)}
            # First references decide whole-lifetime homes.
            for temp in instr.temps():
                if temp in decision.assignment or temp in decision.memory:
                    continue
                for reg in self._register_order(emitter, temp):
                    if whole_lifetime_fits(temp, reg):
                        decision.assignment[temp] = reg
                        committed.setdefault(reg, []).append(temp)
                        break
                else:
                    decision.memory.add(temp)
            locked |= {decision.assignment[t] for t in instr.temps()
                       if t in decision.assignment}
            # Point lifetimes for memory-resident references.
            for temp in instr.temps():
                if temp not in decision.memory:
                    continue
                key = (instr, temp)
                if key in decision.scratch:
                    continue
                chosen = None
                for reg in self._register_order(emitter, temp):
                    if point_free(reg, start, end, locked):
                        chosen = reg
                        break
                if chosen is None:
                    victim = self._pick_victim(table, committed, temp, start,
                                               forced_memory)
                    decision.victim = victim
                    return decision
                decision.scratch[key] = chosen
                locked.add(chosen)
        return decision

    def _pick_victim(self, table: LifetimeTable,
                     committed: dict[PhysReg, list[Temp]], temp: Temp,
                     point: int, forced_memory: set[Temp]) -> Temp:
        """The committed lifetime covering ``point`` with the lowest
        keep-priority; forcing it to memory frees a register here."""
        best: Temp | None = None
        best_priority = float("inf")
        for reg, owners in committed.items():
            if reg.regclass is not temp.regclass:
                continue
            for owner in owners:
                if owner in forced_memory:
                    continue
                if not table.temps[owner].live.overlaps_interval(point, point + 2):
                    continue
                priority = eviction_priority(table, owner, point)
                if priority < best_priority:
                    best, best_priority = owner, priority
        if best is None:
            raise AllocationError(
                f"two-pass binpacking: no scratch register for {temp} at "
                f"point {point} and nothing to evict (file too small)")
        return best

