"""Second-chance binpacking: the single allocate/rewrite scan (Section 2).

The scan walks the instructions in linear order exactly once.  For every
instruction it:

1. **Honours register reservations.**  Registers referenced by the
   calling convention at this instruction (explicit physical operands,
   and the caller-saved set at calls) have their occupants evicted first.
   This is Section 2.5's "when a register's lifetime hole expires, we
   check to see if there is still a temporary contained in it" — with the
   *early second chance* upgrade that converts an eviction store into a
   register-to-register move when an empty register with a large enough
   hole exists.

2. **Rewrites uses.**  A use of a resident temporary is rewritten to its
   register.  A use of a spilled temporary gets a register (possibly
   evicting someone) and a reload — and then *stays* resident: "we
   optimistically, rather than pessimistically, plan for u's future
   references" (Section 2.3).

3. **Rewrites defs.**  A def of a non-resident temporary gets a register
   with *no* load, and its store back to memory is postponed until
   eviction — and elided entirely if the value dies or the register and
   memory are still consistent when eviction comes.

Register selection follows Section 2.2's binpacking heuristics: among
registers whose hole contains the temporary's remaining lifetime, the
*smallest* such hole (best fit); otherwise the *largest insufficient*
hole (Section 2.5, which is what lets temporaries live across calls in
caller-saved registers temporarily); otherwise evict the occupant with
the lowest priority (distance to next reference, weighted by loop depth).

The scan's linear view of control flow is reconciled with the real CFG
afterwards by :mod:`repro.allocators.binpack.resolution`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.allocators.base import (
    AllocationError,
    AllocationStats,
    RegisterAllocator,
    SharedAnalyses,
    eviction_priority,
)
from repro.allocators.binpack.resolution import resolve_edges
from repro.allocators.binpack.state import ScanState
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, SpillPhase
from repro.ir.temp import PhysReg, Temp
from repro.ir.types import RegClass
from repro.lifetimes.intervals import LifetimeTable, RangeSet
from repro.obs.trace import EventKind
from repro.spill.emitter import SpillCodeEmitter
from repro.target.machine import MachineDescription

#: Stands in for "no reservation / occupant ever again".
_INF = 1 << 60


@dataclass(frozen=True)
class BinpackOptions:
    """Ablation knobs for the design choices Section 2 calls out.

    Attributes:
        use_holes: Pack temporaries into other temporaries' lifetime
            holes (Section 2.1/2.2).  Off = an occupant blocks its whole
            span.
        early_second_chance: Convert convention-forced eviction stores
            into moves when an empty register can hold the remaining
            lifetime (Section 2.5).
        move_elimination: Try to give a move's destination the source's
            register so the peephole pass can delete the move
            (Section 2.5).
        avoid_consistent_stores: Elide eviction/resolution stores when
            register and memory are known consistent, tracking
            ``ARE_CONSISTENT`` (Section 2.3); requires the resolution
            dataflow (or the conservative variant) for correctness.
        conservative_consistency: Section 2.6's strictly-linear variant:
            reinitialize ``ARE_CONSISTENT`` at each block top from
            already-scanned predecessors instead of running the iterative
            dataflow afterwards.
    """

    use_holes: bool = True
    early_second_chance: bool = True
    move_elimination: bool = True
    avoid_consistent_stores: bool = True
    conservative_consistency: bool = False


class SecondChanceBinpacking(RegisterAllocator):
    """The paper's allocator.  See the module docstring."""

    def __init__(self, options: BinpackOptions | None = None):
        self.options = options or BinpackOptions()
        self.name = "second-chance binpacking"

    # ------------------------------------------------------------------
    # Hole geometry.
    # ------------------------------------------------------------------
    def _hole_end(self, state: ScanState, table: LifetimeTable,
                  reg: PhysReg, point: int) -> tuple[int, int]:
        """How far past ``point`` register ``reg`` stays free.

        Returns ``(hole_end, occupant_resume)``: the combined hole end and
        the earliest point an occupant's live range resumes (``_INF`` when
        no occupant ever does).  The distinction matters because only
        *reservation* expiry has eviction events during the scan — a temp
        may be packed into an insufficient reservation hole (Section 2.5,
        it will be evicted when the convention reclaims the register) but
        never past an occupant's resumption, which would silently clobber
        it.  Both values equal ``point`` when the register is unavailable
        now.
        """
        # One memoized lookup answers both "reserved now?" (nxt == point)
        # and "when does the next reservation begin?" — the hole search
        # asks this for every register at the same point, so the memo
        # absorbs the repeat bisects.
        nxt = table.reserved_for(reg).next_covered_memo(point)
        if nxt == point:
            return point, point
        end = nxt if nxt is not None else _INF
        occupant_resume = _INF
        state.prune(reg, point)
        for t in state.occupants_of(reg):
            lifetime = table.temps[t]
            if self.options.use_holes:
                resume = lifetime.next_live_at_or_after(point)
            else:
                # Without hole packing an occupant blocks its whole span.
                if lifetime.end <= point:
                    resume = None
                elif lifetime.start <= point:
                    resume = point
                else:
                    resume = lifetime.start
            if resume is None:
                continue
            occupant_resume = min(occupant_resume, resume)
            if occupant_resume <= point:
                return point, point
        return min(end, occupant_resume), occupant_resume

    def _remaining_end(self, table: LifetimeTable, temp: Temp, point: int) -> int:
        """End of ``temp``'s remaining lifetime (at least one point)."""
        return max(table.temps[temp].end, point + 1)

    def _remaining_ranges(self, table: LifetimeTable, temp: Temp,
                          point: int) -> RangeSet:
        """``temp``'s remaining live ranges (convex span without holes)."""
        if self.options.use_holes:
            return table.temps[temp].remaining(point)
        return RangeSet([(point, self._remaining_end(table, temp, point))])

    def _occupant_ranges(self, table: LifetimeTable, temp: Temp) -> RangeSet:
        """The ranges an occupant blocks: its live ranges, or its whole
        span when hole packing is disabled."""
        lifetime = table.temps[temp]
        if self.options.use_holes:
            return lifetime.live
        return RangeSet([(lifetime.start, lifetime.end)])

    # ------------------------------------------------------------------
    # Eviction.
    # ------------------------------------------------------------------
    def _evict(self, state: ScanState, table: LifetimeTable,
               emitter: SpillCodeEmitter, stats: AllocationStats, temp: Temp,
               reg: PhysReg, point: int, pre: list[Instr],
               locked: set[PhysReg], *, allow_move: bool) -> None:
        """Take ``reg`` away from ``temp`` at ``point`` (Section 2.3/2.5).

        Emits nothing when the value is dead or in a hole; elides the
        store when memory is consistent (recording the dataflow gen bit);
        otherwise tries the early-second-chance move and falls back to a
        spill store.
        """
        tr = stats.trace
        lifetime = table.temps[temp]
        if not lifetime.alive_at(point):
            state.displace(temp)
            return
        if self.options.avoid_consistent_stores and state.is_consistent(temp):
            if tr.enabled:
                tr.emit(EventKind.STORE_ELIDED_CONSISTENT, point=point,
                        temp=temp, reg=reg)
            state.note_consistency_used(temp)
            state.displace(temp)
            return
        if allow_move and self.options.early_second_chance:
            target = self._find_empty_register(
                state, table, emitter, temp, point, locked)
            if target is not None:
                op = Op.MOV if temp.regclass is RegClass.GPR else Op.FMOV
                pre.append(emitter.move(op, target, reg, SpillPhase.EVICT))
                if tr.enabled:
                    tr.emit(EventKind.EVICT, point=point, temp=temp, reg=reg,
                            detail=f"move->{target}")
                state.displace(temp)
                state.place(temp, target)
                return
        pre.append(emitter.store(temp, reg, SpillPhase.EVICT))
        if tr.enabled:
            tr.emit(EventKind.EVICT, point=point, temp=temp, reg=reg,
                    detail="store")
            tr.emit(EventKind.SPILL_STORE_EMITTED, point=point, temp=temp,
                    reg=reg)
        state.set_consistent(temp)
        state.displace(temp)

    def _find_empty_register(self, state: ScanState, table: LifetimeTable,
                             emitter: SpillCodeEmitter, temp: Temp, point: int,
                             locked: set[PhysReg]) -> PhysReg | None:
        """An occupant-free register whose hole holds ``temp``'s remaining
        live ranges (the early-second-chance target search).

        Fresh callee-saved registers are not eligible: converting one
        eviction store into a move is a bad trade when it drags a new
        prologue save/restore pair into every activation of the function.

        Determinism: ``machine.regs`` is in register-index order and the
        first eligible register wins, so among equally-good candidates the
        lowest index is always chosen — allocations never depend on hash
        order or Python version.
        """
        machine = table.machine
        remaining = self._remaining_ranges(table, temp, point)
        for reg in emitter.register_order(temp.regclass):
            if reg in locked:
                continue
            if machine.is_callee_saved(reg) and reg not in state.ever_used:
                continue
            state.prune(reg, point)
            if state.occupants_of(reg):
                continue
            if table.reserved_for(reg).overlaps(remaining):
                continue
            return reg
        return None

    # ------------------------------------------------------------------
    # Register selection (Section 2.2's binpacking search).
    # ------------------------------------------------------------------
    def _find_register(self, state: ScanState, table: LifetimeTable,
                       emitter: SpillCodeEmitter, stats: AllocationStats,
                       temp: Temp, point: int, locked: set[PhysReg],
                       pre: list[Instr]) -> PhysReg:
        """Choose (and if necessary free up) a register for ``temp``.

        Ties are broken explicitly on the register index (the lexicographic
        ``(hole size, index)`` keys below), so the same input always yields
        the same allocation — and therefore the same benchmark numbers —
        across runs, hash seeds, and Python versions.
        """
        remaining = self._remaining_ranges(table, temp, point)
        best_fit: PhysReg | None = None
        best_fit_key = (_INF + 1, -1)  # (hole end, register index), minimized
        largest: PhysReg | None = None
        largest_key = (-point, -1)  # (-hole end, register index), minimized
        for reg in emitter.register_order(temp.regclass):
            if reg in locked:
                continue
            hole_end, _resume = self._hole_end(state, table, reg, point)
            if hole_end <= point:
                continue
            # Occupants must never be live while the newcomer is: their
            # resumptions have no eviction event, so an overlap would
            # silently clobber one of the two.
            if any(self._occupant_ranges(table, other).overlaps(remaining)
                   for other in state.occupants_of(reg)):
                continue
            if not table.reserved_for(reg).overlaps(remaining):
                # Sufficient: the register is free over every point where
                # the temporary is live (holes included) — best fit keeps
                # the smallest such hole (Section 2.2), lowest index on ties.
                key = (hole_end, reg.index)
                if key < best_fit_key:
                    best_fit, best_fit_key = reg, key
            else:
                # Insufficient only because of a reservation: usable, the
                # reservation-expiry events will evict (Section 2.5's
                # "largest insufficiently-large hole"), lowest index on ties.
                key = (-hole_end, reg.index)
                if key < largest_key:
                    largest, largest_key = reg, key
        chosen = best_fit if best_fit is not None else largest
        # Under forced-evict stress, sometimes take the eviction path even
        # though a register was available; fall back to the free register
        # when nothing is evictable.
        if chosen is None or emitter.force_evict():
            try:
                chosen = self._evict_lowest_priority(
                    state, table, emitter, stats, temp, point, locked, pre)
            except AllocationError:
                if chosen is None:
                    raise
        tr = stats.trace
        if tr.enabled:
            shared_hole = bool(state.occupants_of(chosen))
            tr.emit(EventKind.HOLE_REUSE if shared_hole else EventKind.ASSIGN,
                    point=point, temp=temp, reg=chosen)
        state.place(temp, chosen)
        return chosen

    def _evict_lowest_priority(self, state: ScanState, table: LifetimeTable,
                               emitter: SpillCodeEmitter,
                               stats: AllocationStats, temp: Temp, point: int,
                               locked: set[PhysReg],
                               pre: list[Instr]) -> PhysReg:
        """No free hole: evict the lowest-priority live occupant.

        The victim search scans registers in index order and keeps the
        explicit minimum of ``(priority, register index)``, so equal
        priorities always evict from the lowest-indexed register —
        deterministic across runs and Python versions.
        """
        victim_reg: PhysReg | None = None
        victim: Temp | None = None
        worst = (float("inf"), -1)  # (priority, register index), minimized
        for reg in emitter.register_order(temp.regclass):
            if (reg in locked
                    or table.reserved_for(reg).next_covered_memo(point)
                    == point):
                continue
            blocking = [t for t in state.occupants_of(reg)
                        if table.temps[t].start <= point < table.temps[t].end]
            if not blocking:
                continue
            live = [t for t in blocking if table.temps[t].alive_at(point)]
            if live:
                candidate = live[0]
                priority = eviction_priority(table, candidate, point)
            else:
                # Only a hole-resident occupant blocks (possible when hole
                # packing is disabled): evicting it is free.
                candidate = blocking[0]
                priority = -1.0
            key = (priority, reg.index)
            if key < worst:
                worst, victim, victim_reg = key, candidate, reg
        if victim_reg is None:
            raise AllocationError(
                f"no register of class {temp.regclass.name} available for "
                f"{temp} at point {point} (file too small)")
        self._evict(state, table, emitter, stats, victim, victim_reg, point,
                    pre, locked, allow_move=False)
        # Hole claimants whose hole cannot also host the newcomer lose
        # their claim (no code needed: a hole holds no value).
        remaining = self._remaining_ranges(table, temp, point)
        for claimant in list(state.occupants_of(victim_reg)):
            if self._occupant_ranges(table, claimant).overlaps(remaining):
                state.displace(claimant)
        return victim_reg

    # ------------------------------------------------------------------
    # The scan.
    # ------------------------------------------------------------------
    def allocate_function(self, fn: Function, machine: MachineDescription,
                          shared: SharedAnalyses, emitter: SpillCodeEmitter,
                          stats: AllocationStats) -> None:
        table = shared.lifetimes
        state = ScanState(table, shared.liveness, shared.cfg)
        opts = self.options
        tr = stats.trace

        with stats.profiler.phase("allocate.scan"):
            for block in fn.blocks:
                if tr.enabled:
                    tr.set_location(block=block.label)
                state.begin_block(block.label)
                if opts.conservative_consistency:
                    state.reinit_consistency_conservative(block.label)
                rewritten: list[Instr] = []
                for instr in block.instrs:
                    use_point = table.use_point(instr)
                    def_point = use_point + 1
                    pre: list[Instr] = []
                    locked: set[PhysReg] = set()

                    # 1. Reservation events: convention reclaims registers.
                    self._process_reservations(state, table, emitter, stats,
                                               use_point, pre, locked)

                    # 2. Uses.
                    for i, use in enumerate(instr.uses):
                        if isinstance(use, PhysReg):
                            locked.add(use)
                            continue
                        reg = state.loc.get(use)
                        if reg is None:
                            reg = self._find_register(state, table, emitter,
                                                      stats, use, use_point,
                                                      locked, pre)
                            reload = emitter.reload(use, reg, SpillPhase.EVICT)
                            pre.append(reload)
                            if tr.enabled:
                                tr.emit(EventKind.SECOND_CHANCE_RELOAD,
                                        point=use_point, temp=use, reg=reg)
                            if not emitter.rematerialized(reload):
                                # A remat leaves memory untouched, so the
                                # register/memory consistency bit must not
                                # be raised for it.
                                state.set_consistent(use)
                        instr.uses[i] = reg
                        locked.add(reg)

                    # 3. Defs.
                    for i, dst in enumerate(instr.defs):
                        if isinstance(dst, PhysReg):
                            locked.add(dst)
                            continue
                        reg = state.loc.get(dst)
                        if (reg is None and opts.move_elimination
                                and instr.is_move):
                            reg = self._try_move_elimination(
                                state, table, stats, instr, dst, def_point)
                        if reg is None:
                            reg = self._find_register(state, table, emitter,
                                                      stats, dst, def_point,
                                                      locked, pre)
                        if tr.enabled and emitter.has_home(dst):
                            # The redefined value's memory home goes stale:
                            # its store back is postponed until eviction.
                            tr.emit(EventKind.SPILL_STORE_POSTPONED,
                                    point=def_point, temp=dst, reg=reg)
                        instr.defs[i] = reg
                        locked.add(reg)
                        state.clear_consistent(dst)

                    rewritten.extend(pre)
                    rewritten.append(instr)
                block.instrs = rewritten
                state.end_block(block.label)

        with stats.profiler.phase("allocate.resolve"):
            iterations = resolve_edges(
                fn, machine, shared, state, emitter, stats,
                avoid_consistent_stores=opts.avoid_consistent_stores,
                run_dataflow=(opts.avoid_consistent_stores
                              and not opts.conservative_consistency))
        stats.dataflow_iterations[fn.name] = iterations
        stats.metrics.bump("binpack.resolution.dataflow_iterations",
                           iterations)
        stats.metrics.bump("binpack.scan.placements", state.stat_placements)
        stats.metrics.bump("binpack.scan.hole_shares", state.stat_hole_shares)
        stats.metrics.bump("binpack.scan.consistency_assumptions",
                           state.stat_consistency_assumptions)

    def _process_reservations(self, state: ScanState, table: LifetimeTable,
                              emitter: SpillCodeEmitter,
                              stats: AllocationStats, use_point: int,
                              pre: list[Instr],
                              locked: set[PhysReg]) -> None:
        """Evict occupants of registers the convention claims during the
        current instruction window ``[use_point, use_point + 2)``."""
        window_end = use_point + 2
        # Snapshot: an early-second-chance move inside _evict may add a
        # fresh register key to the occupancy map.  Sorted so eviction
        # order is a function of the code, not of occupancy-map history.
        for reg, claim in sorted(state.occupants.items()):
            if not claim:
                continue
            if not table.reserved_for(reg).overlaps_interval_memo(
                    use_point, window_end):
                continue
            for temp in list(claim):
                self._evict(state, table, emitter, stats, temp, reg,
                            use_point, pre, locked, allow_move=True)

    def _try_move_elimination(self, state: ScanState, table: LifetimeTable,
                              stats: AllocationStats, instr: Instr, dst: Temp,
                              def_point: int) -> PhysReg | None:
        """Section 2.5's move elimination: give the move's destination the
        source's register when that register has a hole starting right
        after the source use that is big enough for the destination."""
        src = instr.uses[0]
        if not isinstance(src, PhysReg):
            return None  # the use pass rewrites resident sources to PhysReg
        remaining = self._remaining_ranges(table, dst, def_point)
        if table.reserved_for(src).overlaps(remaining):
            return None
        state.prune(src, def_point)
        for occupant in state.occupants_of(src):
            if self._occupant_ranges(table, occupant).overlaps(remaining):
                return None
        state.place(dst, src)
        stats.moves_eliminated += 1
        stats.metrics.bump("binpack.moves_eliminated")
        tr = stats.trace
        if tr.enabled:
            tr.emit(EventKind.MOVE_ELIMINATED, point=def_point, temp=dst,
                    reg=src)
        return src
