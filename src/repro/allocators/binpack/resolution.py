"""Resolution: reconciling the linear scan with the real CFG (Section 2.4).

The scan records where every cross-block temporary lived at the top and
bottom of each block.  For each CFG edge ``p -> s`` and each temporary
live across it, the three mismatch cases of Section 2.4 are repaired:

* register at ``p`` bottom, memory at ``s`` top → **store** (elided when
  the register and memory home are known consistent);
* memory → register → **load**;
* two different registers → **move**, with the whole edge's moves treated
  as one parallel copy and sequentialized "in the semantically-correct
  order, even in the case where two (or more) temporaries swap their
  allocated registers" — cycles are broken through the temporary's own
  memory home, which needs no scratch register.

Placement follows the paper's footnote: top of a single-predecessor
head, bottom of a single-successor tail, otherwise the (critical) edge is
split.  One extra guard the footnote leaves implicit: code placed at a
block bottom sits *before* the terminator, so if the terminator reads a
register the edge code writes, we split the edge instead.

Consistency dataflow
--------------------

Stores elided during the scan (and at edges) relied on ``ARE_CONSISTENT``
bits whose truth may be path-dependent.  The scan recorded, per block,
``USED_CONSISTENCY`` (gen: relied on a non-local consistency assumption)
and ``WROTE_TR`` (kill: the register was rewritten).  We solve the
paper's equations

    USED_C_out(b) = union of USED_C_in(s) over successors s
    USED_C_in(b)  = USED_CONSISTENCY(b) | (USED_C_out(b) & ~WROTE_TR(b))

and insert a store on each edge ``p -> s`` where ``USED_C_in(s)`` needs
``t`` consistent but ``ARE_CONSISTENT(p)`` does not deliver it.  One
refinement over the paper's text: an *edge* store elided because
``ARE_CONSISTENT(p)`` was set is itself a non-local reliance when the
bit was inherited rather than established in ``p``, so such edges
contribute gen bits too (computed in a pre-pass before the dataflow).
"""

from __future__ import annotations

from repro.allocators.base import AllocationStats, SharedAnalyses
from repro.allocators.binpack.state import MEM, BlockRecord, Location, ScanState
from repro.cfg.cfg import split_edge
from repro.dataflow.framework import DataflowProblem, Direction, solve
from repro.dataflow.liveness import LivenessInfo
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, SpillPhase
from repro.ir.temp import PhysReg, Temp
from repro.ir.types import RegClass
from repro.obs.trace import EventKind
from repro.spill.emitter import SpillCodeEmitter
from repro.target.machine import MachineDescription


def _move_op(cls: RegClass) -> Op:
    return Op.MOV if cls is RegClass.GPR else Op.FMOV


def sequentialize_moves(moves: list[tuple[PhysReg, PhysReg, Temp]],
                        emitter: SpillCodeEmitter,
                        stats: AllocationStats) -> list[Instr]:
    """Order one edge's parallel register moves; break cycles via memory.

    ``moves`` holds ``(src, dst, temp)`` triples with pairwise-distinct
    destinations (and pairwise-distinct sources).  A move is safe to emit
    once no pending move still reads its destination; when only cycles
    remain, one temp detours through its own memory home (store now, load
    after the rest of its cycle has drained).
    """
    tr = stats.trace
    pending = [(src, dst, temp) for src, dst, temp in moves if src != dst]
    out: list[Instr] = []
    deferred: list[Instr] = []
    while pending:
        emitted = False
        for i, (src, dst, temp) in enumerate(pending):
            blocked = any(dst == other_src
                          for j, (other_src, _, _) in enumerate(pending)
                          if j != i)
            if blocked:
                continue
            out.append(emitter.move(_move_op(temp.regclass), dst, src,
                                    SpillPhase.RESOLVE))
            if tr.enabled:
                tr.emit(EventKind.RESOLUTION_EDGE_FIX, temp=temp, reg=dst,
                        detail="move")
            pending.pop(i)
            emitted = True
            break
        if not emitted:
            src, dst, temp = pending.pop(0)
            out.append(emitter.store(temp, src, SpillPhase.RESOLVE))
            deferred.append(emitter.reload(temp, dst, SpillPhase.RESOLVE))
            if tr.enabled:
                tr.emit(EventKind.RESOLUTION_EDGE_FIX, temp=temp, reg=src,
                        detail="store (cycle break)")
                tr.emit(EventKind.RESOLUTION_EDGE_FIX, temp=temp, reg=dst,
                        detail="load (cycle break)")
    out.extend(deferred)
    return out


def edge_traffic(records: dict[str, BlockRecord], liveness: LivenessInfo,
                 pred: str, succ: str) -> list[tuple[Temp, Location, Location]]:
    """The location pair of every temporary carried across ``pred -> succ``.

    A temporary live into ``succ`` can be absent from a boundary record:
    the scan only records temporaries it actually saw at that boundary,
    and a conservatively-live temporary (e.g. one whose defs all sit on
    other paths, kept live by the path-insensitive dataflow) never gets an
    entry.  A temporary the scan never placed holds no register at that
    boundary, so its location defaults to its memory home rather than
    raising ``KeyError``.
    """
    bottom = records[pred].bottom_loc
    top = records[succ].top_loc
    return [(temp, bottom.get(temp, MEM), top.get(temp, MEM))
            for temp in liveness.live_in_temps(succ)]


def _place_batch(fn: Function, shared: SharedAnalyses, pred: str, succ: str,
                 batch: list[Instr],
                 bottom_written: dict[str, set[PhysReg]]) -> None:
    """Put the edge's repair code where the paper's footnote says.

    ``bottom_written`` accumulates, per block, the registers written by
    batches already placed at that block's bottom this resolution round.
    """
    cfg = shared.cfg
    # The entry block has an implicit predecessor (function entry), so
    # edge code may never be hoisted to its top.
    if cfg.in_degree(succ) == 1 and succ != cfg.entry:
        fn.block(succ).insert_at_top(batch)
        return
    if cfg.out_degree(pred) == 1:
        block = fn.block(pred)
        term = block.terminator
        written = {reg for instr in batch for reg in instr.defs}
        read = {reg for instr in batch for reg in instr.uses}
        # Code placed at a block bottom sits *before* the terminator, so
        # three hazards force a split instead: the terminator reads a
        # register the batch writes, the terminator defines a register the
        # batch reads (the batch would see the not-yet-written value), or
        # an earlier batch at this bottom already wrote a register this
        # batch touches (the stacked batches would observe each other).
        prior = bottom_written.get(pred, frozenset())
        hazard = (any(use in written for use in term.uses)
                  or any(d in read for d in term.defs)
                  or bool(prior & (written | read)))
        if not hazard:
            block.insert_before_terminator(batch)
            bottom_written.setdefault(pred, set()).update(written)
            return
    new_block = split_edge(fn, cfg, pred, succ)
    new_block.insert_at_top(batch)


def resolve_edges(fn: Function, machine: MachineDescription,
                  shared: SharedAnalyses, state: ScanState,
                  emitter: SpillCodeEmitter, stats: AllocationStats, *,
                  avoid_consistent_stores: bool,
                  run_dataflow: bool) -> int:
    """Run resolution over every CFG edge.  Returns the number of
    iterations the consistency dataflow needed (0 when not run)."""
    cfg = shared.cfg
    liveness = shared.liveness
    index = liveness.index
    records = state.records
    edges = cfg.edges()

    # Pre-pass: gen bits contributed by stores we will elide *at edges*.
    extra_gen: dict[str, int] = {label: 0 for label in records}
    if run_dataflow:
        for pred, succ in edges:
            record = records[pred]
            for temp, src, dst in edge_traffic(records, liveness, pred, succ):
                if src is MEM or dst is not MEM:
                    continue
                bit = index.bit_or_none(temp)
                if bit is None:
                    continue
                if (record.consistent_at_end >> bit & 1
                        and not (record.wrote_tr >> bit & 1)):
                    extra_gen[pred] |= 1 << bit

    tr = stats.trace
    iterations = 0
    used_c_in: dict[str, int] = {label: 0 for label in records}
    if run_dataflow:
        with stats.profiler.phase("allocate.resolve.dataflow"):
            gen = {label: records[label].used_consistency | extra_gen[label]
                   for label in records}
            kill = {label: records[label].wrote_tr for label in records}
            result = solve(DataflowProblem(cfg, Direction.BACKWARD, gen, kill))
            used_c_in = result.in_
            iterations = result.iterations

    bottom_written: dict[str, set[PhysReg]] = {}
    with stats.profiler.phase("allocate.resolve.patch"):
        for pred, succ in edges:
            record = records[pred]
            if tr.enabled:
                tr.set_location(block=pred)
                edge = f"->{succ}"
            stores: list[Instr] = []
            moves: list[tuple[PhysReg, PhysReg, Temp]] = []
            loads: list[Instr] = []
            for temp, src, dst in edge_traffic(records, liveness, pred, succ):
                if isinstance(src, PhysReg):
                    bit = index.bit_or_none(temp)
                    consistent = (bit is not None
                                  and bool(record.consistent_at_end >> bit & 1))
                    needs_store = False
                    if dst is MEM:
                        needs_store = not (avoid_consistent_stores
                                           and consistent)
                        if tr.enabled and not needs_store:
                            tr.emit(EventKind.STORE_ELIDED_CONSISTENT,
                                    temp=temp, reg=src, detail=f"edge{edge}")
                    elif (run_dataflow and bit is not None
                            and used_c_in[succ] >> bit & 1 and not consistent):
                        # A path from ``succ`` exploits consistency this edge
                        # does not deliver (Section 2.4's insertion rule).
                        needs_store = True
                    if needs_store:
                        stores.append(emitter.store(temp, src,
                                                    SpillPhase.RESOLVE))
                        if tr.enabled:
                            tr.emit(EventKind.RESOLUTION_EDGE_FIX, temp=temp,
                                    reg=src, detail=f"store{edge}")
                    if isinstance(dst, PhysReg) and dst != src:
                        moves.append((src, dst, temp))
                else:  # src is MEM; the scan guarantees dst in {MEM, reg}
                    if isinstance(dst, PhysReg):
                        loads.append(emitter.reload(temp, dst,
                                                    SpillPhase.RESOLVE))
                        if tr.enabled:
                            tr.emit(EventKind.RESOLUTION_EDGE_FIX, temp=temp,
                                    reg=dst, detail=f"load{edge}")
            if not (stores or moves or loads):
                continue
            batch = stores + sequentialize_moves(moves, emitter, stats) + loads
            stats.metrics.bump("binpack.resolution.edges_patched")
            stats.metrics.bump("binpack.resolution.instructions", len(batch))
            _place_batch(fn, shared, pred, succ, batch, bottom_written)
    return iterations
