"""Mutable state of the binpacking scan.

The scan tracks, at every linear point:

* which temporaries currently *occupy* each register (several may share a
  register when all but one sit in lifetime holes — Figure 1's ``T3``
  inside ``T1``'s hole);
* each temporary's current location (a register, its memory home, or
  nowhere during a hole after an eviction);
* the ``ARE_CONSISTENT`` working bit vector of Section 2.4 — whether a
  resident temporary's register agrees with its memory home — plus the
  per-block ``WROTE_TR`` (kill) and ``USED_CONSISTENCY`` (gen) masks the
  resolution dataflow consumes;
* the location maps at the top and bottom of every block, which drive
  edge resolution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cfg.cfg import CFG
from repro.dataflow.liveness import LivenessInfo
from repro.ir.temp import PhysReg, Temp
from repro.lifetimes.intervals import LifetimeTable


class Mem(enum.Enum):
    """Sentinel location: the temporary lives in its memory home."""

    MEM = "mem"

    def __str__(self) -> str:
        return "mem"


#: A temporary's location at a block boundary.
Location = PhysReg | Mem

MEM = Mem.MEM


@dataclass(eq=False)
class BlockRecord:
    """What the scan knew at one block's boundaries (Section 2.4's maps)."""

    top_loc: dict[Temp, Location] = field(default_factory=dict)
    bottom_loc: dict[Temp, Location] = field(default_factory=dict)
    consistent_at_end: int = 0  # saved copy of ARE_CONSISTENT
    wrote_tr: int = 0  # KILL set
    used_consistency: int = 0  # GEN set


class ScanState:
    """Register-file occupancy and consistency bits during the scan."""

    def __init__(self, table: LifetimeTable, liveness: LivenessInfo, cfg: CFG):
        self.table = table
        self.liveness = liveness
        self.cfg = cfg
        #: Temporaries with a claim on each register.  At any point at
        #: most one occupant is live; the rest sit in lifetime holes.
        self.occupants: dict[PhysReg, list[Temp]] = {}
        #: Registers that have ever held a temporary — used to stop the
        #: early-second-chance move from dragging a *fresh* callee-saved
        #: register (and its prologue save/restore pair) into use just to
        #: save one store.
        self.ever_used: set[PhysReg] = set()
        #: Current register of each temporary (absent/None = not resident).
        self.loc: dict[Temp, PhysReg] = {}
        #: ARE_CONSISTENT working vector (bit per indexed global temp).
        self.consistent: int = 0
        #: Block-local consistency flags for unindexed (block-local) temps.
        self.local_consistent: set[Temp] = set()
        #: Per-block records, filled as the scan proceeds.
        self.records: dict[str, BlockRecord] = {}
        self._wrote: int = 0
        self._used: int = 0
        #: Scan-shape counters the allocator publishes into the metrics
        #: registry (see :mod:`repro.obs.metrics`) after the scan.
        self.stat_placements: int = 0
        self.stat_hole_shares: int = 0
        self.stat_consistency_assumptions: int = 0

    # ------------------------------------------------------------------
    # Occupancy.
    # ------------------------------------------------------------------
    def occupants_of(self, reg: PhysReg) -> list[Temp]:
        """Current claimants of ``reg`` (pruning finished lifetimes)."""
        claim = self.occupants.get(reg)
        if not claim:
            return []
        return claim

    def prune(self, reg: PhysReg, point: int) -> None:
        """Drop claimants whose lifetime has fully ended before ``point``."""
        claim = self.occupants.get(reg)
        if not claim:
            return
        keep = []
        for t in claim:
            if self.table.temps[t].end > point:
                keep.append(t)
            elif self.loc.get(t) == reg:
                del self.loc[t]
        self.occupants[reg] = keep

    def place(self, temp: Temp, reg: PhysReg) -> None:
        """Give ``temp`` a claim on ``reg`` and make it resident there."""
        claim = self.occupants.setdefault(reg, [])
        if claim:
            self.stat_hole_shares += 1
        claim.append(temp)
        self.stat_placements += 1
        self.loc[temp] = reg
        self.ever_used.add(reg)

    def displace(self, temp: Temp) -> None:
        """Remove ``temp``'s claim and residency (it no longer has a
        register; its location is memory or nowhere)."""
        reg = self.loc.pop(temp, None)
        if reg is not None:
            claim = self.occupants.get(reg)
            if claim and temp in claim:
                claim.remove(temp)

    # ------------------------------------------------------------------
    # Consistency bits (Section 2.3/2.4).
    # ------------------------------------------------------------------
    def _bit(self, temp: Temp) -> int | None:
        return self.liveness.index.bit_or_none(temp)

    def is_consistent(self, temp: Temp) -> bool:
        """The ``A_t`` bit: register contents match the memory home."""
        bit = self._bit(temp)
        if bit is None:
            return temp in self.local_consistent
        return bool(self.consistent >> bit & 1)

    def set_consistent(self, temp: Temp) -> None:
        """A spill to or from memory makes register and memory agree."""
        bit = self._bit(temp)
        if bit is None:
            self.local_consistent.add(temp)
        else:
            self.consistent |= 1 << bit

    def clear_consistent(self, temp: Temp) -> None:
        """A write to the register invalidates the memory home; also
        records the ``WROTE_TR`` kill bit for the resolution dataflow."""
        bit = self._bit(temp)
        if bit is None:
            self.local_consistent.discard(temp)
        else:
            self.consistent &= ~(1 << bit)
            self._wrote |= 1 << bit

    def note_consistency_used(self, temp: Temp) -> None:
        """A spill store was inhibited because ``A_t`` was set.  When the
        register was not written in this block (``W_t`` clear), the
        assumption is non-local and the ``USED_CONSISTENCY`` gen bit is
        raised (Section 2.4)."""
        bit = self._bit(temp)
        if bit is None:
            return
        if not (self._wrote >> bit & 1):
            self._used |= 1 << bit
            self.stat_consistency_assumptions += 1

    # ------------------------------------------------------------------
    # Block boundaries.
    # ------------------------------------------------------------------
    def begin_block(self, label: str) -> BlockRecord:
        """Open a block: reset the per-block masks and record the top
        location of every temporary live into it."""
        record = BlockRecord()
        self.records[label] = record
        self._wrote = 0
        self._used = 0
        self.local_consistent.clear()
        for t in self.liveness.live_in_temps(label):
            record.top_loc[t] = self.loc.get(t, MEM)
        return record

    def end_block(self, label: str) -> BlockRecord:
        """Close a block: record bottom locations, save the working
        ``ARE_CONSISTENT`` copy and the gen/kill masks."""
        record = self.records[label]
        for t in self.liveness.live_out_temps(label):
            record.bottom_loc[t] = self.loc.get(t, MEM)
        record.consistent_at_end = self.consistent
        record.wrote_tr = self._wrote
        record.used_consistency = self._used
        return record

    def reinit_consistency_conservative(self, label: str) -> None:
        """Section 2.6's strictly-linear alternative: at each block top,
        reinitialize ``ARE_CONSISTENT`` to the intersection of the saved
        vectors of all already-scanned predecessors, treating unscanned
        predecessors as all-clear."""
        preds = self.cfg.preds.get(label, [])
        mask = 0
        for i, pred in enumerate(preds):
            record = self.records.get(pred)
            saved = record.consistent_at_end if record is not None else 0
            mask = saved if i == 0 else mask & saved
        self.consistent = mask
