"""Shared allocator interface, setup analyses, and frame machinery.

The paper's experimental methodology (Section 3) keeps everything except
the central assignment algorithm identical between allocators: shared CFG
construction, liveness and loop analysis, shared spill-code utilities,
and a shared callee-saved save/restore convention.  This module is that
shared layer.

Timing discipline: :func:`allocate_module` computes the shared analyses
*outside* the timed region and accumulates only the allocator core's time
in :attr:`AllocationStats.alloc_seconds`, exactly as the paper's Table 3
times "only the core parts of the allocators ... after setup activities
common to both allocators".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cfg.cfg import CFG
from repro.ir.block import BasicBlock
from repro.cfg.loops import LoopInfo
from repro.dataflow.liveness import LivenessInfo, compute_liveness
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, SpillPhase
from repro.ir.module import Module
from repro.ir.temp import PhysReg, StackSlot, Temp
from repro.ir.types import RegClass
from repro.lifetimes.intervals import LifetimeTable, compute_lifetimes
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler
from repro.obs.trace import NULL_TRACER, Tracer
from repro.spill.context import DEFAULT_CONTEXT, AllocationContext
from repro.spill.emitter import SpillCodeEmitter
from repro.target.machine import MachineDescription

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pm -> base)
    from repro.pm.session import CompilationSession


class AllocationError(RuntimeError):
    """Raised when a function cannot be allocated on the target — in
    practice only when the register file is too small to hold one
    instruction's operands plus the calling convention."""


@dataclass(eq=False)
class SharedAnalyses:
    """The precomputed per-function inputs every allocator receives."""

    cfg: CFG
    liveness: LivenessInfo
    loops: LoopInfo
    lifetimes: LifetimeTable

    @classmethod
    def build(cls, fn: Function, machine: MachineDescription,
              profiler: PhaseProfiler | None = None) -> "SharedAnalyses":
        """Run the shared setup passes for ``fn``.

        With a ``profiler``, each analysis is timed under a ``setup.*``
        phase (the paper's timings *exclude* these, and so does
        ``alloc_seconds``; the profiler is how the exclusion is visible).
        """
        if profiler is None:
            profiler = PhaseProfiler()  # discarded; keeps one code path
        with profiler.phase("setup.cfg"):
            cfg = CFG.build(fn)
        with profiler.phase("setup.liveness"):
            liveness = compute_liveness(fn, cfg)
        with profiler.phase("setup.loops"):
            loops = LoopInfo.build(cfg)
        with profiler.phase("setup.lifetimes"):
            lifetimes = compute_lifetimes(fn, machine, cfg, liveness, loops)
        return cls(cfg, liveness, loops, lifetimes)


@dataclass
class AllocationStats:
    """What one allocator run did to one module.

    Static counts only — dynamic counts come from the simulator.

    Attributes:
        allocator: Name of the algorithm.
        alloc_seconds: Core allocation time, summed over functions
            (setup analyses excluded, per Section 3.2).
        candidates: Register candidates (temporaries) per function.
        spilled_temps: Temporaries that ever lived in memory.
        spill_static: Static count of inserted spill instructions by
            ``(phase, kind)``.
        moves_eliminated: Moves whose source and destination the
            allocator managed to place in the same register.
        callee_saved_used: Callee-saved registers requiring prologue
            save/restore, per function.
        coloring_iterations: Build/color rounds (coloring allocator only).
        dataflow_iterations: Fixed-point passes of the resolution
            consistency dataflow (binpacking only).
        interference_edges: Edges in the final interference graph per
            function (coloring allocator only).
        trace: The allocation-event tracer instrumented sites emit into
            (the disabled :data:`~repro.obs.trace.NULL_TRACER` by
            default; see :mod:`repro.obs.trace`).
        profiler: The phase profiler that measured this run;
            ``alloc_seconds`` is its ``allocate`` phase.
        metrics: The counters registry this run published into
            (see :mod:`repro.obs.metrics`).
    """

    allocator: str
    alloc_seconds: float = 0.0
    candidates: dict[str, int] = field(default_factory=dict)
    spilled_temps: dict[str, int] = field(default_factory=dict)
    spill_static: dict[tuple[SpillPhase, str], int] = field(default_factory=dict)
    moves_eliminated: int = 0
    callee_saved_used: dict[str, int] = field(default_factory=dict)
    coloring_iterations: dict[str, int] = field(default_factory=dict)
    dataflow_iterations: dict[str, int] = field(default_factory=dict)
    interference_edges: dict[str, int] = field(default_factory=dict)
    trace: Tracer = field(default=NULL_TRACER, repr=False)
    profiler: PhaseProfiler = field(default_factory=PhaseProfiler, repr=False)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry,
                                     repr=False)

    def total_candidates(self) -> int:
        """Register candidates across the module."""
        return sum(self.candidates.values())

    def bump_spill(self, phase: SpillPhase, kind: str, count: int = 1) -> None:
        """Accumulate a static spill-code count (and its metric)."""
        key = (phase, kind)
        self.spill_static[key] = self.spill_static.get(key, 0) + count
        self.metrics.bump(f"alloc.spill.{phase.value}.{kind}", count)


class SpillSlots:
    """Assigns each spilled temporary its *memory home* (Section 2.3)."""

    def __init__(self) -> None:
        self._slots: dict[Temp, StackSlot] = {}
        self._next = 0

    def home(self, temp: Temp) -> StackSlot:
        """The (lazily created) stack slot of ``temp``."""
        slot = self._slots.get(temp)
        if slot is None:
            slot = StackSlot(self._next, temp.regclass)
            self._next += 1
            self._slots[temp] = slot
        return slot

    def has_home(self, temp: Temp) -> bool:
        """Whether ``temp`` already has a memory home (without creating
        one) — i.e. a spill store has been emitted or postponed for it."""
        return temp in self._slots

    def fresh(self, regclass: RegClass) -> StackSlot:
        """An anonymous slot (callee saves)."""
        slot = StackSlot(self._next, regclass)
        self._next += 1
        return slot

    def __len__(self) -> int:
        return self._next

    def spilled_temps(self) -> list[Temp]:
        """Temporaries that were ever given a memory home."""
        return list(self._slots)


def eviction_priority(table: LifetimeTable, temp: Temp, point: int) -> float:
    """The spill-choice priority of Section 2.3.

    "Spilling decisions are based on a priority heuristic that compares
    the distance to each temporary's next reference, weighted by the
    depth of the loop it occurs in, picking the lowest-priority temporary
    for eviction."  Higher return value = more worth keeping in a
    register.  A temporary with no future reference has priority 0 (the
    ideal eviction victim).
    """
    ref = table.next_ref_at_or_after(temp, point)
    if ref is None:
        return 0.0
    ref_point, depth = ref
    distance = max(ref_point - point, 1)
    return float(10 ** min(depth, 12)) / distance


def insert_callee_saved_code(fn: Function, machine: MachineDescription,
                             slots: SpillSlots) -> list[PhysReg]:
    """Save/restore every callee-saved register the allocated code writes.

    Saves go at the very top of the entry block, restores immediately
    before every ``ret``.  Both carry the ``PROLOGUE`` tag: the paper's
    spill statistics cover "allocation candidates only", so this
    bookkeeping is excluded from Figure 3 but still executes (and is
    counted) in the dynamic totals.
    """
    written: set[PhysReg] = set()
    for instr in fn.instructions():
        for reg in instr.defs:
            if isinstance(reg, PhysReg) and machine.is_callee_saved(reg):
                written.add(reg)
    used = sorted(written)
    if not used:
        return []
    saved_slots = {reg: slots.fresh(reg.regclass) for reg in used}
    saves = [Instr(Op.STS, uses=[reg], slot=saved_slots[reg],
                   spill_phase=SpillPhase.PROLOGUE) for reg in used]
    entry = fn.entry
    targets = {t for instr in fn.instructions() for t in instr.targets}
    if entry.label in targets:
        # The entry block doubles as a branch target (e.g. a loop header):
        # saves must execute exactly once, so they get their own block.
        prologue = BasicBlock(fn.new_label("prologue"))
        prologue.instrs = [*saves, Instr(Op.JMP, targets=[entry.label])]
        fn.blocks.insert(0, prologue)
    else:
        entry.insert_at_top(saves)
    for block in fn.blocks:
        if block.terminator.op is not Op.RET:
            continue
        restores = [Instr(Op.LDS, defs=[reg], slot=saved_slots[reg],
                          spill_phase=SpillPhase.PROLOGUE) for reg in used]
        block.insert_before_terminator(restores)
    return used


class RegisterAllocator(abc.ABC):
    """Interface every allocator implements.

    Subclasses rewrite the function in place (temporaries replaced by
    physical registers, spill code inserted) and record what they did in
    ``stats``.  Callee-saved save/restore is handled by the shared driver
    after the core returns.
    """

    #: Short name used in reports and benchmark tables.
    name: str = "abstract"

    @abc.abstractmethod
    def allocate_function(self, fn: Function, machine: MachineDescription,
                          shared: SharedAnalyses, emitter: SpillCodeEmitter,
                          stats: AllocationStats) -> None:
        """Allocate registers for one function, in place.

        Spill code goes through ``emitter`` (which owns the slot table
        and the static spill accounting); the emitter's context also
        supplies the register selection order and the stress hooks.
        """

    def fresh(self) -> "RegisterAllocator":
        """A new instance with the same configuration (allocators may keep
        per-run scratch state)."""
        return self


def allocate_module(module: Module, allocator: RegisterAllocator,
                    machine: MachineDescription, *,
                    trace: Tracer | None = None,
                    profiler: PhaseProfiler | None = None,
                    metrics: MetricsRegistry | None = None,
                    session: "CompilationSession | None" = None,
                    context: AllocationContext | None = None
                    ) -> AllocationStats:
    """Run ``allocator`` over every function of ``module`` (in place).

    Shared analyses run under ``setup.*`` phases, outside the timed core;
    the core runs under the ``allocate`` phase of the stats' profiler and
    ``alloc_seconds`` is that phase's measurement (Table 3's number).
    The optional ``trace``/``profiler``/``metrics`` plug external
    observability in; by default tracing is disabled and the profiler
    and metrics registry are fresh per run (reachable via the stats).

    With a ``session`` (:class:`repro.pm.session.CompilationSession`) the
    shared analyses come from the session's cache — transferred from the
    base module when this module is one of its clones — and each function
    is invalidated in that cache right after allocation rewrites it, per
    the invalidation contract (the allocators insert spill code and split
    edges, so nothing survives).

    ``context`` (default: the inert :data:`~repro.spill.DEFAULT_CONTEXT`)
    configures rematerialization and the seeded stress modes; it is
    handed to every allocator through the per-function
    :class:`~repro.spill.SpillCodeEmitter`.
    """
    if context is None:
        context = DEFAULT_CONTEXT
    # `is None` checks, not `or`: an empty MetricsRegistry is falsy.
    stats = AllocationStats(
        allocator=allocator.name,
        trace=NULL_TRACER if trace is None else trace,
        profiler=PhaseProfiler() if profiler is None else profiler,
        metrics=MetricsRegistry() if metrics is None else metrics)
    tr = stats.trace
    prof = stats.profiler
    for fn in module.functions.values():
        if tr.enabled:
            tr.set_location(fn=fn.name)
        with prof.phase("setup"):
            if session is not None:
                shared = session.shared(fn, profiler=prof)
            else:
                shared = SharedAnalyses.build(fn, machine, prof)
        slots = SpillSlots()
        emitter = SpillCodeEmitter(fn, machine, context, slots, stats)
        stats.candidates[fn.name] = len(fn.all_temps())
        with prof.phase("allocate") as core:
            allocator.allocate_function(fn, machine, shared, emitter, stats)
        stats.alloc_seconds += core.seconds
        with prof.phase("frame.callee_saved"):
            used = insert_callee_saved_code(fn, machine, slots)
        if session is not None:
            session.analyses.invalidate(fn)
        stats.callee_saved_used[fn.name] = len(used)
        stats.spilled_temps[fn.name] = len(slots.spilled_temps())
        stats.metrics.bump("alloc.candidates", stats.candidates[fn.name])
        stats.metrics.bump("alloc.spilled_temps", stats.spilled_temps[fn.name])
        stats.metrics.bump("alloc.callee_saved_used", len(used))
    stats.metrics.set("alloc.seconds", stats.alloc_seconds)
    stats.metrics.bump("alloc.functions", len(module.functions))
    return stats
