"""Register allocators.

Four allocators share one interface (:class:`RegisterAllocator`):

* :class:`~repro.allocators.binpack.SecondChanceBinpacking` — the paper's
  contribution (Section 2).
* :class:`~repro.allocators.binpack.TwoPassBinpacking` — the whole-lifetime
  binpacking baseline of Section 3.1's ablation.
* :class:`~repro.allocators.coloring.GraphColoring` — George & Appel's
  iterated register coalescing, the paper's comparison allocator.
* :class:`~repro.allocators.linearscan.PolettoLinearScan` — the simple
  sorted-interval linear scan of Section 4's related work.

All of them consume the same precomputed CFG/liveness/loop analyses and
the same spill-slot and callee-save machinery, mirroring the paper's
"identical in every respect except the central register assignment
algorithms" methodology (Section 3).
"""

from repro.allocators.base import (
    AllocationStats,
    RegisterAllocator,
    SharedAnalyses,
    allocate_module,
)
from repro.allocators.binpack import SecondChanceBinpacking, TwoPassBinpacking
from repro.allocators.coloring import GraphColoring
from repro.allocators.linearscan import PolettoLinearScan

#: Allocator constructors by CLI name.  Batch-compilation workers build
#: allocators from these names (a name pickles; a configured allocator
#: object need not), so the registry lives here, importable everywhere.
ALLOCATOR_FACTORIES: dict[str, type[RegisterAllocator]] = {
    "second-chance": SecondChanceBinpacking,
    "two-pass": TwoPassBinpacking,
    "coloring": GraphColoring,
    "poletto": PolettoLinearScan,
}


def make_allocator(name: str) -> RegisterAllocator:
    """Construct a fresh allocator from its registry name."""
    try:
        factory = ALLOCATOR_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown allocator {name!r} "
            f"(choose from {', '.join(sorted(ALLOCATOR_FACTORIES))})"
        ) from None
    return factory()


__all__ = [
    "ALLOCATOR_FACTORIES",
    "make_allocator",
    "AllocationStats",
    "GraphColoring",
    "PolettoLinearScan",
    "RegisterAllocator",
    "SecondChanceBinpacking",
    "SharedAnalyses",
    "TwoPassBinpacking",
    "allocate_module",
]
