"""Register allocators.

Four allocators share one interface (:class:`RegisterAllocator`):

* :class:`~repro.allocators.binpack.SecondChanceBinpacking` — the paper's
  contribution (Section 2).
* :class:`~repro.allocators.binpack.TwoPassBinpacking` — the whole-lifetime
  binpacking baseline of Section 3.1's ablation.
* :class:`~repro.allocators.coloring.GraphColoring` — George & Appel's
  iterated register coalescing, the paper's comparison allocator.
* :class:`~repro.allocators.linearscan.PolettoLinearScan` — the simple
  sorted-interval linear scan of Section 4's related work.

All of them consume the same precomputed CFG/liveness/loop analyses and
the same spill-slot and callee-save machinery, mirroring the paper's
"identical in every respect except the central register assignment
algorithms" methodology (Section 3).
"""

from repro.allocators.base import (
    AllocationStats,
    RegisterAllocator,
    SharedAnalyses,
    allocate_module,
)
from repro.allocators.binpack import SecondChanceBinpacking, TwoPassBinpacking
from repro.allocators.coloring import GraphColoring
from repro.allocators.linearscan import PolettoLinearScan

__all__ = [
    "AllocationStats",
    "GraphColoring",
    "PolettoLinearScan",
    "RegisterAllocator",
    "SecondChanceBinpacking",
    "SharedAnalyses",
    "TwoPassBinpacking",
    "allocate_module",
]
