"""The classic linear-scan allocator of the paper's related work."""

from repro.allocators.linearscan.poletto import PolettoLinearScan

__all__ = ["PolettoLinearScan"]
