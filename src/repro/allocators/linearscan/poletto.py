"""Poletto-style linear scan (Section 4's related-work baseline).

"Having tried graph coloring, they developed a simpler method that scans
a sorted list of the lifetimes and at each step considers how many
lifetimes are currently active ...  When there are too many active
lifetimes to fit, the longest active lifetime is spilled to memory and
the scan proceeds.  No attempt is made to take advantage of lifetime
holes or to allocate partial lifetimes."

Accordingly this allocator flattens every lifetime to one contiguous
interval ``[start, end)`` (holes ignored), sorts by start point, keeps an
active list, and on pressure spills the interval that ends furthest in
the future.  Calling-convention reservations are respected by refusing a
register whose reserved ranges intersect the interval — which also means
an interval crossing a call can only take a callee-saved register, the
same structural handicap the two-pass baseline has.

Memory-resident references get scratch registers with the same restart
discipline as two-pass binpacking: when no register is free at a point,
the lowest-priority assigned interval covering that point is demoted to
memory and the decision re-runs.
"""

from __future__ import annotations

from repro.allocators.base import (
    AllocationError,
    AllocationStats,
    RegisterAllocator,
    SharedAnalyses,
    eviction_priority,
)
from repro.allocators.wholelife import rewrite_whole_lifetime
from repro.ir.function import Function
from repro.ir.instr import Instr
from repro.ir.temp import PhysReg, Temp
from repro.lifetimes.intervals import LifetimeTable
from repro.spill.emitter import SpillCodeEmitter
from repro.target.machine import MachineDescription


class PolettoLinearScan(RegisterAllocator):
    """Sorted-interval linear scan without holes or lifetime splitting."""

    def __init__(self) -> None:
        self.name = "poletto linear scan"

    def allocate_function(self, fn: Function, machine: MachineDescription,
                          shared: SharedAnalyses, emitter: SpillCodeEmitter,
                          stats: AllocationStats) -> None:
        table = shared.lifetimes
        # Forced-evict stress pre-seeds memory residents; empty by default.
        forced_memory: set[Temp] = emitter.forced_memory(
            t for t in table.temps if isinstance(t, Temp))
        restarts = 0
        while True:
            assignment = self._scan_intervals(table, emitter, forced_memory)
            scratch, victim = self._assign_scratches(table, emitter,
                                                     assignment)
            if victim is None:
                break
            forced_memory.add(victim)
            restarts += 1
        stats.metrics.bump("linearscan.restarts", restarts)
        stats.metrics.bump("linearscan.memory_resident", len(forced_memory))
        rewrite_whole_lifetime(fn, emitter, stats, assignment, scratch)

    # ------------------------------------------------------------------
    # Interval sweep.
    # ------------------------------------------------------------------
    def _interval(self, table: LifetimeTable, temp: Temp) -> tuple[int, int]:
        lifetime = table.temps[temp]
        return lifetime.start, lifetime.end

    def _scan_intervals(self, table: LifetimeTable,
                        emitter: SpillCodeEmitter,
                        forced_memory: set[Temp]) -> dict[Temp, PhysReg]:
        order = sorted((t for t in table.temps if isinstance(t, Temp)),
                       key=lambda t: (self._interval(table, t)[0], t.id))
        assignment: dict[Temp, PhysReg] = {}
        active: list[Temp] = []  # kept sorted by interval end

        def register_fits(reg: PhysReg, start: int, end: int) -> bool:
            if table.reserved_for(reg).overlaps_interval(start, end):
                return False
            return all(assignment[a] != reg for a in active)

        for temp in order:
            if temp in forced_memory:
                continue
            start, end = self._interval(table, temp)
            active = [a for a in active if self._interval(table, a)[1] > start]
            regs = emitter.register_order(temp.regclass,
                                          prefer_caller_saved=True)
            chosen = next((r for r in regs if register_fits(r, start, end)),
                          None)
            if chosen is not None:
                assignment[temp] = chosen
                active.append(temp)
                active.sort(key=lambda t: self._interval(table, t)[1])
                continue
            # Pressure: spill the furthest-ending compatible active
            # interval, or this one.
            candidates = [a for a in active
                          if a.regclass is temp.regclass
                          and not table.reserved_for(assignment[a])
                          .overlaps_interval(start, end)]
            victim = max(candidates,
                         key=lambda t: self._interval(table, t)[1],
                         default=None)
            if victim is not None and self._interval(table, victim)[1] > end:
                assignment[temp] = assignment.pop(victim)
                active.remove(victim)
                active.append(temp)
                active.sort(key=lambda t: self._interval(table, t)[1])
            # else: temp itself stays memory-resident.
        return assignment

    # ------------------------------------------------------------------
    # Point lifetimes for memory residents.
    # ------------------------------------------------------------------
    def _assign_scratches(self, table: LifetimeTable,
                          emitter: SpillCodeEmitter,
                          assignment: dict[Temp, PhysReg],
                          ) -> tuple[dict[tuple[Instr, Temp], PhysReg],
                                     Temp | None]:
        scratch: dict[tuple[Instr, Temp], PhysReg] = {}
        assigned_spans = {t: self._interval(table, t) for t in assignment}

        def busy(reg: PhysReg, start: int, end: int) -> bool:
            if table.reserved_for(reg).overlaps_interval(start, end):
                return True
            return any(r == reg and s < end and start < e
                       for t, r in assignment.items()
                       for s, e in (assigned_spans[t],))

        for instr in table.linear:
            start = table.use_point(instr)
            end = start + 2
            locked: set[PhysReg] = {r for r in instr.regs()
                                    if isinstance(r, PhysReg)}
            locked |= {assignment[t] for t in instr.temps() if t in assignment}
            for temp in instr.temps():
                if temp in assignment or (instr, temp) in scratch:
                    continue
                regs = emitter.register_order(temp.regclass,
                                              prefer_caller_saved=True)
                chosen = next((r for r in regs
                               if r not in locked and not busy(r, start, end)),
                              None)
                if chosen is None:
                    victim = self._pick_victim(table, assignment, temp, start)
                    return scratch, victim
                scratch[(instr, temp)] = chosen
                locked.add(chosen)
        return scratch, None

    def _pick_victim(self, table: LifetimeTable,
                     assignment: dict[Temp, PhysReg], temp: Temp,
                     point: int) -> Temp:
        candidates = [t for t in assignment
                      if t.regclass is temp.regclass
                      and self._interval(table, t)[0] <= point
                      < self._interval(table, t)[1]]
        if not candidates:
            raise AllocationError(
                f"poletto: no scratch register for {temp} at point {point} "
                f"and nothing to demote (file too small)")
        return min(candidates, key=lambda t: eviction_priority(table, t, point))
