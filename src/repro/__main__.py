"""Command-line interface: ``python -m repro <command> ...``.

Subcommands:

* ``run FILE.mc``       — compile a minic file and execute it;
* ``compile FILE.mc``   — dump the IR (before and, with ``--allocate``,
                          after register allocation);
* ``compare FILE.mc``   — run every allocator and print a Table-1-style
                          comparison;
* ``bench NAME``        — the same comparison on a built-in benchmark
                          analog (``python -m repro bench wc``);
                          ``bench --perf`` instead runs the tracked
                          wall-clock suite (``tools/perf_bench.py``,
                          see docs/PERFORMANCE.md);
* ``trace FILE.mc``     — stream the allocator's decision events
                          (assigns, evictions, reloads, resolution
                          fixes) as they happen, plus a count summary;
* ``profile FILE.mc``   — per-phase wall-clock profile of the pipeline
                          and the counters every layer published;
* ``suite [NAME ...]``  — run a declarative benchmark suite into the
                          persistent result store, computing only
                          cache-miss cells (``repro suite quick``);
* ``report``            — render every table/figure of the evaluation
                          from the result store; ``--check`` diffs them
                          against the checked-in goldens, ``--diff A B``
                          compares two suite runs (docs/REPORTING.md);
* ``serve``             — run the allocation service (JSONL over a
                          socket + minimal HTTP) with its persistent
                          cache; ``--soak`` runs the cold/warm load
                          benchmark instead (docs/SERVING.md).

Options shared by all subcommands: ``--machine alpha|tiny`` (default
alpha), ``--allocator second-chance|two-pass|coloring|poletto`` (default
second-chance, where a single allocator applies), ``--spill-cleanup``,
and ``--trace-out FILE.jsonl`` (write every allocation event as one
JSON object per line; see docs/OBSERVABILITY.md for the schema).
"""

from __future__ import annotations

import argparse
import sys

from repro.allocators import ALLOCATOR_FACTORIES
from repro.ir.printer import print_module
from repro.lang import compile_minic
from repro.obs import (JsonlSink, MetricsRegistry, PhaseProfiler,
                       RingBufferSink, TextSink, Tracer)
from repro.pipeline import run_allocator
from repro.pm.batch import compare_allocators
from repro.sim import simulate
from repro.sim.machine import outputs_equal
from repro.spill import DEFAULT_CONTEXT, STRESS_MODES, AllocationContext
from repro.stats.report import format_table
from repro.target import alpha, tiny

ALLOCATORS = ALLOCATOR_FACTORIES


def _context(args: argparse.Namespace) -> AllocationContext:
    """The :class:`AllocationContext` the shared ``--remat`` /
    ``--stress`` / ``--stress-seed`` flags describe (the inert default
    when none were given)."""
    return AllocationContext(remat=getattr(args, "remat", False),
                             stress=getattr(args, "stress", "none"),
                             seed=getattr(args, "stress_seed", 0))


def _machine(name: str):
    if name == "alpha":
        return alpha()
    if name == "tiny":
        return tiny(8, 8)
    raise SystemExit(f"unknown machine {name!r} (alpha or tiny)")


def _load_module(path: str, machine):
    try:
        with open(path) as handle:
            source = handle.read()
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    return compile_minic(source, machine)


class _TraceOut:
    """The optional ``--trace-out FILE.jsonl`` sink, usable as a context
    manager so the file is flushed and closed on every exit path."""

    def __init__(self, args: argparse.Namespace):
        self.path = getattr(args, "trace_out", None)
        self.handle = None

    def __enter__(self) -> "_TraceOut":
        if self.path:
            try:
                self.handle = open(self.path, "w")
            except OSError as exc:
                raise SystemExit(f"cannot write {self.path}: {exc}")
        return self

    def __exit__(self, *exc) -> None:
        if self.handle is not None:
            self.handle.close()

    def tracer(self, *extra_sinks) -> Tracer | None:
        """A tracer over the JSONL sink plus ``extra_sinks`` (or ``None``
        when there is nothing to trace into — tracing stays free)."""
        sinks = [s for s in extra_sinks if s is not None]
        if self.handle is not None:
            sinks.append(JsonlSink(self.handle))
        return Tracer(sinks) if sinks else None


def cmd_run(args: argparse.Namespace) -> int:
    machine = _machine(args.machine)
    module = _load_module(args.file, machine)
    allocator = ALLOCATORS[args.allocator]()
    with _TraceOut(args) as out:
        result = run_allocator(module, allocator, machine,
                               spill_cleanup=args.spill_cleanup,
                               trace=out.tracer(), context=_context(args))
    outcome = simulate(result.module, machine)
    for value in outcome.output:
        print(value)
    print(f"# {outcome.dynamic_instructions:,} instructions, "
          f"{outcome.cycles:,} cycles, allocator: {allocator.name}",
          file=sys.stderr)
    result_value = outcome.result
    return int(result_value) & 0xFF if isinstance(result_value, int) else 0


def cmd_compile(args: argparse.Namespace) -> int:
    machine = _machine(args.machine)
    module = _load_module(args.file, machine)
    if not args.allocate:
        print(print_module(module))
        return 0
    allocator = ALLOCATORS[args.allocator]()
    with _TraceOut(args) as out:
        result = run_allocator(module, allocator, machine,
                               spill_cleanup=args.spill_cleanup,
                               trace=out.tracer(), context=_context(args))
    print(print_module(result.module))
    return 0


def _comparison(module, machine, spill_cleanup: bool,
                trace: Tracer | None = None, jobs: int = 1,
                context: AllocationContext = DEFAULT_CONTEXT) -> str:
    reference = simulate(module, machine)
    cells = compare_allocators(module, machine, spill_cleanup=spill_cleanup,
                               jobs=jobs, trace=trace, context=context)
    rows = []
    for cell in cells:
        if not outputs_equal(cell.output, reference.output):
            raise SystemExit(
                f"{cell.allocator}: allocation changed program output!")
        rows.append([cell.allocator, cell.dynamic_instructions, cell.cycles,
                     f"{100 * cell.spill_fraction:.2f}%",
                     f"{cell.alloc_seconds * 1000:.1f}"])
    return format_table(
        ["allocator", "dyn instrs", "cycles", "spill%", "alloc ms"], rows)


def cmd_compare(args: argparse.Namespace) -> int:
    machine = _machine(args.machine)
    module = _load_module(args.file, machine)
    with _TraceOut(args) as out:
        print(_comparison(module, machine, args.spill_cleanup,
                          trace=out.tracer(), jobs=args.jobs,
                          context=_context(args)))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.workloads.programs import PROGRAM_NAMES, build_program

    if args.perf:
        # The tracked wall-clock suite (tools/perf_bench.py): hot-kernel
        # and end-to-end medians, reusable as the CI regression gate.
        import os
        sys.path.insert(0, os.path.join(os.path.dirname(__file__),
                                        "..", "..", "tools"))
        import perf_bench
        check: list[str] = []
        if args.check is not None:
            baseline = args.check
            if baseline == "auto":
                # Newest trajectory point in the repo.
                numbered = perf_bench._bench_numbers()
                if not numbered:
                    raise SystemExit("bench --perf --check: no BENCH_*.json "
                                     "baseline in the repository")
                baseline = str(numbered[-1][1])
            check = ["--check", baseline]
        return perf_bench.main(
            (["--quick"] if args.quick else [])
            + ["--reps", str(args.reps)]
            + (["--verbose"] if args.verbose else [])
            + check)
    if args.name is None:
        raise SystemExit("bench: an analog name is required "
                         "(or use --perf for the wall-clock suite)")
    if args.name not in PROGRAM_NAMES:
        raise SystemExit(f"unknown analog {args.name!r}; choose from "
                         f"{', '.join(PROGRAM_NAMES)}")
    machine = _machine(args.machine)
    module = build_program(args.name, machine)
    print(f"benchmark analog: {args.name} on {machine}")
    with _TraceOut(args) as out:
        print(_comparison(module, machine, args.spill_cleanup,
                          trace=out.tracer(), jobs=args.jobs,
                          context=_context(args)))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    machine = _machine(args.machine)
    module = _load_module(args.file, machine)
    allocator = ALLOCATORS[args.allocator]()
    text_sink = None if args.quiet else TextSink(sys.stdout)
    with _TraceOut(args) as out:
        tracer = out.tracer(text_sink)
        if tracer is None:
            # --quiet without --trace-out: count events, print nothing.
            tracer = Tracer([RingBufferSink()])
        result = run_allocator(module, allocator, machine,
                               spill_cleanup=args.spill_cleanup,
                               trace=tracer, context=_context(args))
    rows = [[kind.value, count] for kind, count in tracer.counts.items()]
    print(format_table(["event", "count"], rows,
                       title=f"event summary: {allocator.name}"))
    if args.trace_out:
        total = sum(tracer.counts.values())
        print(f"# {total} events written to {args.trace_out}",
              file=sys.stderr)
    # Keep the allocated module honest even in trace mode.
    simulate(result.module, machine)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    machine = _machine(args.machine)
    module = _load_module(args.file, machine)
    allocator = ALLOCATORS[args.allocator]()
    profiler = PhaseProfiler()
    # One registry for the whole run so the session's analysis-cache
    # counters (pm.*) render alongside the allocator's own.
    metrics = MetricsRegistry()
    with _TraceOut(args) as out:
        result = run_allocator(module, allocator, machine,
                               spill_cleanup=args.spill_cleanup,
                               profiler=profiler, trace=out.tracer(),
                               metrics=metrics, context=_context(args))
    stats = result.stats
    print(profiler.render(title=f"phase profile: {allocator.name}"))
    print(f"alloc_seconds = {stats.alloc_seconds * 1e3:.3f} ms "
          f"(== the 'allocate' phase, Table 3's timed core)")
    print()
    print(stats.metrics.render(title="metrics"))
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import CONFIG_GRID, STRESS_GRID, fuzz

    configs = STRESS_GRID if args.stress_grid else CONFIG_GRID
    if args.config:
        by_name = {c.name: c for c in CONFIG_GRID + STRESS_GRID}
        unknown = [name for name in args.config if name not in by_name]
        if unknown:
            raise SystemExit(f"unknown config(s) {', '.join(unknown)}; "
                             f"choose from {', '.join(sorted(by_name))}")
        configs = tuple(by_name[name] for name in args.config)

    seeds = range(args.start, args.start + args.seeds)

    def progress(seed, report):
        if args.verbose:
            print(f"  seed {seed}: {report.checks} checks, "
                  f"{len(report.divergences)} divergence(s)", file=sys.stderr)

    report = fuzz(seeds, configs=configs, shrink=not args.no_shrink,
                  shrink_budget=args.shrink_budget, jobs=args.jobs,
                  progress=progress if args.verbose else None)
    print(report.format())
    if not report.ok and args.out:
        # One parseable witness: the first divergence's module, with the
        # attribution as ;;-comments (the IR comment marker), so the file
        # feeds straight into tools/shrink_ir.py.  The context line makes
        # the witness self-replaying: shrink_ir reads it back, so stress/
        # remat failures reproduce with no flags to reconstruct by hand.
        from repro.spill import AllocationContext

        div = report.divergences[0]
        header = [f"{div.kind} config={div.config} {div.describe}"]
        if div.context:
            ctx = AllocationContext.parse(div.context)
            machine = next((tok[len("machine="):]
                            for tok in div.describe.split()
                            if tok.startswith("machine=")), "")
            if machine.startswith("tiny(") and machine.endswith(")"):
                gpr, fpr = machine[len("tiny("):-1].split(",")
                machine_args = ["--machine", "tiny",
                                "--gpr", gpr, "--fpr", fpr]
            elif machine:
                machine_args = ["--machine", machine]
            else:
                machine_args = []
            header.append(f"context={div.context}")
            header.append(f"replay: tools/shrink_ir.py {args.out} "
                          f"--config {div.config} --kind {div.kind} "
                          f"{' '.join(machine_args + ctx.cli_args())}")
        header.extend(div.message.splitlines())
        with open(args.out, "w") as fh:
            for line in header:
                fh.write(f";; {line}\n")
            fh.write(f"{div.module_text}\n")
        print(f"# shrunken repro written to {args.out} "
              f"(first of {len(report.divergences)} divergence(s))",
              file=sys.stderr)
    return 0 if report.ok else 1


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.results import ResultStore, run_suite
    from repro.results.suite import SUITES, dedup_specs

    specs = []
    for name in (args.names or ["quick"]):
        try:
            build = SUITES[name]
        except KeyError:
            raise SystemExit(f"unknown suite {name!r}; choose from "
                             f"{', '.join(SUITES)}")
        specs.extend(build(reps=args.reps))
    specs = dedup_specs(specs)
    store = ResultStore(args.store)
    say = (lambda msg: print(msg, file=sys.stderr)) if args.verbose \
        else (lambda msg: None)
    outcome = run_suite(specs, store, jobs=args.jobs,
                        label=" ".join(args.names or ["quick"]),
                        progress=say)
    print(outcome.summary())
    print(f"store: {store.root} ({len(store)} cells)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.results import (MissingCells, ResultStore,
                               check_against_goldens, diff_runs, render_all,
                               render_perf_trajectory, render_runs)
    from repro.results.suite import FAST_SET

    store = ResultStore(args.store)
    if args.runs:
        print(render_runs(store))
        return 0
    if args.diff:
        try:
            print(diff_runs(store, *args.diff))
        except LookupError as exc:
            raise SystemExit(str(exc))
        return 0
    names = list(FAST_SET)
    if args.set == "full":
        from repro.workloads.programs import PROGRAM_NAMES
        names = list(PROGRAM_NAMES)
    try:
        rendered = render_all(store, names)
    except MissingCells as exc:
        raise SystemExit(f"report: {exc}")
    if args.out:
        import os
        os.makedirs(args.out, exist_ok=True)
        for filename, text in rendered.items():
            with open(os.path.join(args.out, filename), "w") as fh:
                fh.write(text + "\n")
        print(f"wrote {len(rendered)} artifact(s) to {args.out}")
    else:
        for filename, text in rendered.items():
            print(text)
            print()
    if args.perf:
        print(render_perf_trajectory(store))
        print()
    if args.check is not None:
        golden_dir = args.check or "benchmarks/results"
        failures = check_against_goldens(rendered, golden_dir)
        if failures:
            for line in failures:
                print(f"FAIL: {line}", file=sys.stderr)
            return 1
        print(f"all {len(rendered)} artifact(s) match the goldens "
              f"in {golden_dir} (timing artifacts on their deterministic "
              f"columns)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.serve import AllocationServer, run_soak

    if args.soak:
        doc = run_soak(args.store, requests=args.requests,
                       dup_ratio=args.dup_ratio, seed=args.seed,
                       jobs=args.jobs,
                       echo=lambda msg: print(msg, file=sys.stderr))
        cold, warm = doc["before"]["serve"], doc["after"]["serve"]
        speedup = doc["speedup"]["serve"]
        print(f"cold: median {1e3 * cold['median_s']:.2f} ms, "
              f"{100 * cold['hit_rate']:.1f}% hits")
        print(f"warm: median {1e3 * warm['median_s']:.2f} ms, "
              f"{100 * warm['hit_rate']:.1f}% hits")
        print(f"speedup (cold/warm median): {speedup:.2f}x")
        if args.bench_out:
            with open(args.bench_out, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.bench_out}", file=sys.stderr)
        if args.record:
            # One kind="perf" record so `repro report --perf` folds the
            # soak into the trajectory next to the perf-bench points.
            from repro.results.store import (CellKey, ResultStore,
                                             content_hash)

            run = dict(doc["after"], serve_cold=cold,
                       speedup=doc["speedup"])
            run["mode"] = "serve-soak"
            store = ResultStore(args.store)
            key = CellKey(workload="serve:soak", allocator="suite",
                          machine="host", kind="perf", reps=args.requests)
            run_id = store.begin_run(label="serve-soak")
            store.put(key, content_hash("serve-soak", str(args.requests),
                                        str(args.dup_ratio), str(args.seed)),
                      run)
            store.finish_run({"computed": 1, "label": "serve-soak"})
            print(f"recorded soak run {run_id} in store {store.root}",
                  file=sys.stderr)
        return 0
    import threading

    server = AllocationServer(args.store, host=args.host, port=args.port,
                              jobs=args.jobs)

    def announce():
        # The port is only known once the loop binds the socket.
        server.wait_ready()
        print(f"serving on {args.host}:{server.port} "
              f"(store: {server.cache.store.root}, jobs: {args.jobs}, "
              f"{len(server.cache)} cached artifact(s))", file=sys.stderr)

    threading.Thread(target=announce, daemon=True).start()
    try:
        server.run()
    except KeyboardInterrupt:
        pass
    print(server.metrics.render(title="serve metrics"), file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Linear-scan register allocation reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    def context_options(p: argparse.ArgumentParser):
        p.add_argument("--remat", action="store_true",
                       help="rematerialize single-definition constants "
                            "instead of reloading them from spill slots")
        p.add_argument("--stress", default="none", choices=list(STRESS_MODES),
                       help="seeded allocator stress mode (default: none)")
        p.add_argument("--stress-seed", type=int, default=0, metavar="N",
                       help="seed for the stress mode's RNG (default: 0)")

    def common(p: argparse.ArgumentParser, with_allocator: bool = True):
        p.add_argument("--machine", default="alpha",
                       choices=["alpha", "tiny"],
                       help="target machine (default: alpha)")
        p.add_argument("--spill-cleanup", action="store_true",
                       help="run the post-allocation spill-code cleanup")
        p.add_argument("--trace-out", metavar="FILE.jsonl", default=None,
                       help="write allocation events as JSON lines")
        context_options(p)
        if with_allocator:
            p.add_argument("--allocator", default="second-chance",
                           choices=sorted(ALLOCATORS),
                           help="register allocator (default: second-chance)")

    run_p = sub.add_parser("run", help="compile and execute a minic file")
    run_p.add_argument("file")
    common(run_p)
    run_p.set_defaults(func=cmd_run)

    compile_p = sub.add_parser("compile", help="dump IR for a minic file")
    compile_p.add_argument("file")
    compile_p.add_argument("--allocate", action="store_true",
                           help="dump post-allocation code instead")
    common(compile_p)
    compile_p.set_defaults(func=cmd_compile)

    def jobs_option(p: argparse.ArgumentParser):
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run up to N allocator/seed jobs in parallel "
                            "worker processes (default: 1 = serial, one "
                            "shared analysis cache); output is identical "
                            "either way")

    compare_p = sub.add_parser("compare",
                               help="compare all allocators on a minic file")
    compare_p.add_argument("file")
    common(compare_p, with_allocator=False)
    jobs_option(compare_p)
    compare_p.set_defaults(func=cmd_compare)

    bench_p = sub.add_parser("bench",
                             help="compare allocators on a built-in analog "
                                  "(or --perf for the wall-clock suite)")
    bench_p.add_argument("name", nargs="?", default=None)
    bench_p.add_argument("--perf", action="store_true",
                         help="run the tracked perf-bench suite "
                              "(tools/perf_bench.py) instead of one analog")
    bench_p.add_argument("--quick", action="store_true",
                         help="with --perf: the smaller CI-smoke subset")
    bench_p.add_argument("--reps", type=int, default=3, metavar="N",
                         help="with --perf: reps per benchmark (default: 3)")
    bench_p.add_argument("--verbose", action="store_true",
                         help="with --perf: progress on stderr")
    bench_p.add_argument("--check", nargs="?", const="auto", default=None,
                         metavar="BENCH.json|STORE_DIR",
                         help="with --perf: ratio-gate the run against a "
                              "recorded baseline (default: the newest "
                              "BENCH_*.json)")
    common(bench_p, with_allocator=False)
    jobs_option(bench_p)
    bench_p.set_defaults(func=cmd_bench)

    trace_p = sub.add_parser(
        "trace", help="stream allocation decision events for a minic file")
    trace_p.add_argument("file")
    trace_p.add_argument("--quiet", action="store_true",
                         help="suppress the per-event lines (summary only)")
    common(trace_p)
    trace_p.set_defaults(func=cmd_trace)

    profile_p = sub.add_parser(
        "profile", help="per-phase wall-clock profile of the pipeline")
    profile_p.add_argument("file")
    common(profile_p)
    profile_p.set_defaults(func=cmd_profile)

    fuzz_p = sub.add_parser(
        "fuzz", help="differential-fuzz every allocator against the "
                     "simulator oracle (exit 1 on any divergence)")
    fuzz_p.add_argument("--seeds", type=int, default=50, metavar="N",
                        help="number of seeds to run (default: 50)")
    fuzz_p.add_argument("--start", type=int, default=0, metavar="SEED",
                        help="first seed (default: 0)")
    fuzz_p.add_argument("--config", action="append", metavar="NAME",
                        help="restrict to named config(s), from the default "
                             "or stress grid; repeatable")
    fuzz_p.add_argument("--stress-grid", action="store_true",
                        help="fuzz the seeded stress grid (reduced-regs / "
                             "forced-evict / shuffle, plus remat) instead "
                             "of the BinpackOptions grid")
    fuzz_p.add_argument("--no-shrink", action="store_true",
                        help="report failing modules without minimizing")
    fuzz_p.add_argument("--shrink-budget", type=int, default=400,
                        metavar="N",
                        help="max candidate evaluations per shrink "
                             "(default: 400)")
    fuzz_p.add_argument("--out", metavar="FILE",
                        help="also write shrunken repro IR to FILE")
    fuzz_p.add_argument("--verbose", action="store_true",
                        help="per-seed progress on stderr")
    jobs_option(fuzz_p)
    fuzz_p.set_defaults(func=cmd_fuzz)

    def store_option(p: argparse.ArgumentParser):
        p.add_argument("--store", metavar="DIR", default=None,
                       help="result-store root (default: "
                            "$REPRO_RESULT_STORE or "
                            "benchmarks/results/store)")

    suite_p = sub.add_parser(
        "suite", help="run a declarative benchmark suite into the result "
                      "store (only cache-miss cells are computed)")
    suite_p.add_argument("names", nargs="*", metavar="SUITE",
                         help="suite name(s): quick, full (default: quick)")
    suite_p.add_argument("--reps", type=int, default=3, metavar="N",
                         help="repetitions per timing cell (default: 3)")
    suite_p.add_argument("--verbose", action="store_true",
                         help="per-cell progress on stderr")
    store_option(suite_p)
    jobs_option(suite_p)
    suite_p.set_defaults(func=cmd_suite)

    report_p = sub.add_parser(
        "report", help="render the evaluation's tables and figures from "
                       "the result store")
    report_p.add_argument("--set", default="fast", choices=["fast", "full"],
                          help="analog set for the quality tables "
                               "(default: fast — the goldens' subset)")
    report_p.add_argument("--out", metavar="DIR", default=None,
                          help="write artifacts to DIR instead of stdout")
    report_p.add_argument("--check", nargs="?", const="", metavar="DIR",
                          help="diff artifacts against the goldens "
                               "(default: benchmarks/results); exit 1 on "
                               "any mismatch")
    report_p.add_argument("--diff", nargs=2, metavar=("RUN_A", "RUN_B"),
                          help="regression report between two suite runs "
                               "(see `report --runs` for ids)")
    report_p.add_argument("--runs", action="store_true",
                          help="list the store's suite runs")
    report_p.add_argument("--perf", action="store_true",
                          help="append the perf trajectory "
                               "(BENCH_*.json + stored perf records)")
    store_option(report_p)
    report_p.set_defaults(func=cmd_report)

    serve_p = sub.add_parser(
        "serve", help="run the allocation service (or --soak: the "
                      "cold/warm cache benchmark)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=0, metavar="N",
                         help="bind port (default: 0 = ephemeral, "
                              "printed on startup)")
    serve_p.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for cache misses "
                              "(default: 1; 0 = in-process threads)")
    serve_p.add_argument("--soak", action="store_true",
                         help="run the soak benchmark: a cold pass and a "
                              "warm pass of generated load through a "
                              "fresh in-process server")
    serve_p.add_argument("--requests", type=int, default=200, metavar="N",
                         help="with --soak: requests per pass "
                              "(default: 200)")
    serve_p.add_argument("--dup-ratio", type=float, default=0.5, metavar="R",
                         help="with --soak: fraction of duplicate requests "
                              "in the stream (default: 0.5)")
    serve_p.add_argument("--seed", type=int, default=0, metavar="N",
                         help="with --soak: corpus seed (default: 0)")
    serve_p.add_argument("--bench-out", metavar="FILE", default=None,
                         help="with --soak: write the BENCH-style "
                              "document to FILE")
    serve_p.add_argument("--record", action="store_true",
                         help="with --soak: also record the run in the "
                              "result store for `report --perf`")
    store_option(serve_p)
    serve_p.set_defaults(func=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
