"""The reference interpreter: direct-dispatch, one Python frame per call.

This is the original simulator, retained verbatim as the *semantic
oracle* for :class:`repro.sim.machine.Simulator` (the pre-decoded
production interpreter).  The differential tests in
``tests/test_sim_predecode.py`` run both on the same programs and demand
identical outputs, op counts, cycles, and faults — so any change to the
fast path that perturbs semantics fails immediately against this one.

It is deliberately *not* optimized: operands are re-classified with
``isinstance`` on every access and calls recurse one Python frame per
simulated frame, which is exactly the per-instruction overhead the
pre-decoded interpreter exists to remove.  Do not use it outside tests.
"""

from __future__ import annotations

import sys
from collections import Counter

from repro.ir.function import Function
from repro.ir.instr import Instr, Op
from repro.ir.module import Module
from repro.ir.temp import PhysReg, Reg, StackSlot, Temp
from repro.ir.types import RegClass
from repro.sim.errors import SimulationError
from repro.sim.machine import _FPR_POISON, _GPR_POISON, SimOutcome, _wrap64
from repro.target.machine import MachineDescription, cycle_cost

# The reference interpreter recurses one Python call per simulated call;
# make sure the interpreter allows the full simulated depth (set once, at
# import, so test frameworks that snapshot the limit see a stable value).
_NEEDED_RECURSION = 2000 * 3 + 200
if sys.getrecursionlimit() < _NEEDED_RECURSION:
    sys.setrecursionlimit(_NEEDED_RECURSION)


class _Frame:
    """Per-activation state: temporaries, stack slots, saved callee-saves."""

    __slots__ = ("fn", "temps", "slots", "entry_callee_saved", "block", "index")

    def __init__(self, fn: Function):
        self.fn = fn
        self.temps: dict[Temp, int | float] = {}
        self.slots: dict[StackSlot, int | float] = {}
        self.entry_callee_saved: dict[PhysReg, int | float] = {}
        self.block = fn.entry
        self.index = 0


class ReferenceSimulator:
    """Executes a module; see :mod:`repro.sim.machine` for the semantics."""

    def __init__(self, module: Module, machine: MachineDescription, *,
                 max_steps: int = 50_000_000, poison_calls: bool = True,
                 check_callee_saved: bool = True, trap_poison: bool = False):
        self.module = module
        self.machine = machine
        self.max_steps = max_steps
        self.poison_calls = poison_calls
        self.check_callee_saved = check_callee_saved
        self.trap_poison = trap_poison
        self._poisoned: set[PhysReg] = set()
        self.regs: dict[PhysReg, int | float] = {}
        for reg in machine.gprs:
            self.regs[reg] = 0
        for reg in machine.fprs:
            self.regs[reg] = 0.0
        self.heap: list[int | float | None] = [None] * module.heap_size
        for arr in module.globals.values():
            fill: int | float = 0 if arr.regclass is RegClass.GPR else 0.0
            for i in range(arr.size):
                self.heap[arr.base + i] = arr.init[i] if i < len(arr.init) else fill
        self.output: list[int | float] = []
        self.steps = 0
        self.cycles = 0
        self.op_counts: Counter = Counter()
        self.spill_counts: Counter = Counter()
        self._blocks_cache: dict[str, dict[str, object]] = {}

    # ------------------------------------------------------------------
    # Register/memory access.
    # ------------------------------------------------------------------
    def _read(self, frame: _Frame, reg: Reg) -> int | float:
        if isinstance(reg, Temp):
            default: int | float = 0 if reg.regclass is RegClass.GPR else 0.0
            return frame.temps.get(reg, default)
        try:
            value = self.regs[reg]
        except KeyError:
            raise SimulationError(f"register {reg} does not exist on "
                                  f"{self.machine.name}") from None
        if self.trap_poison and reg in self._poisoned:
            raise SimulationError(
                f"read of caller-saved {reg} still poisoned by a call")
        return value

    def _write(self, frame: _Frame, reg: Reg, value: int | float) -> None:
        if isinstance(reg, Temp):
            frame.temps[reg] = value
        else:
            if reg not in self.regs:
                raise SimulationError(f"register {reg} does not exist on "
                                      f"{self.machine.name}")
            self.regs[reg] = value
            self._poisoned.discard(reg)

    def _heap_load(self, address: int, cls: RegClass, fn: str) -> int | float:
        if not isinstance(address, int):
            raise SimulationError(f"{fn}: non-integer address {address!r}")
        if not 0 <= address < len(self.heap) or self.heap[address] is None:
            raise SimulationError(f"{fn}: heap access out of bounds at {address}")
        value = self.heap[address]
        if cls is RegClass.GPR and not isinstance(value, int):
            raise SimulationError(f"{fn}: integer load of float cell {address}")
        if cls is RegClass.FPR and not isinstance(value, float):
            raise SimulationError(f"{fn}: float load of integer cell {address}")
        return value

    def _heap_store(self, address: int, value: int | float, fn: str) -> None:
        if not isinstance(address, int):
            raise SimulationError(f"{fn}: non-integer address {address!r}")
        if not 0 <= address < len(self.heap) or self.heap[address] is None:
            raise SimulationError(f"{fn}: heap access out of bounds at {address}")
        self.heap[address] = value

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    #: Maximum simulated call depth (each level costs a few Python frames).
    MAX_CALL_DEPTH = 2000

    def run(self, entry: str = "main") -> SimOutcome:
        """Execute from ``entry`` until its ``ret``; return the outcome."""
        result = self._call(self.module.function(entry), depth=0)
        return SimOutcome(
            output=self.output,
            result=result,
            dynamic_instructions=self.steps,
            cycles=self.cycles,
            op_counts=self.op_counts,
            spill_counts=self.spill_counts,
        )

    def _block_map(self, fn: Function) -> dict[str, object]:
        cached = self._blocks_cache.get(fn.name)
        if cached is None:
            cached = {b.label: b for b in fn.blocks}
            self._blocks_cache[fn.name] = cached
        return cached

    def _call(self, fn: Function, depth: int) -> int | float | None:
        if depth > self.MAX_CALL_DEPTH:
            raise SimulationError(f"call depth exceeded entering {fn.name}")
        frame = _Frame(fn)
        if self.check_callee_saved:
            for cls in (RegClass.GPR, RegClass.FPR):
                for reg in self.machine.callee_saved(cls):
                    frame.entry_callee_saved[reg] = self.regs[reg]
        blocks = self._block_map(fn)

        while True:
            if frame.index >= len(frame.block.instrs):
                raise SimulationError(f"{fn.name}/{frame.block.label}: fell off block")
            instr = frame.block.instrs[frame.index]
            self.steps += 1
            if self.steps > self.max_steps:
                raise SimulationError(f"step budget exceeded in {fn.name}")
            self.cycles += cycle_cost(instr.op)
            self.op_counts[instr.op] += 1
            if instr.spill_phase is not None:
                self.spill_counts[(instr.spill_phase, instr.spill_kind())] += 1

            op = instr.op
            if op is Op.RET:
                value = self._read(frame, instr.uses[0]) if instr.uses else None
                if self.check_callee_saved:
                    for reg, saved in frame.entry_callee_saved.items():
                        current = self.regs[reg]
                        same = (current == saved or
                                (current != current and saved != saved))
                        if not same:
                            raise SimulationError(
                                f"{fn.name}: callee-saved {reg} clobbered "
                                f"({saved!r} -> {current!r})")
                return value
            if op is Op.JMP:
                frame.block = blocks[instr.targets[0]]
                frame.index = 0
                continue
            if op is Op.BR:
                cond = self._read(frame, instr.uses[0])
                frame.block = blocks[instr.targets[0] if cond else instr.targets[1]]
                frame.index = 0
                continue
            if op is Op.CALL:
                callee = self.module.functions.get(instr.callee)
                if callee is None:
                    raise SimulationError(f"{fn.name}: call to unknown "
                                          f"function {instr.callee!r}")
                value = self._call(callee, depth + 1)
                if self.poison_calls:
                    skip = set(instr.defs)
                    for cls in (RegClass.GPR, RegClass.FPR):
                        poison = _GPR_POISON if cls is RegClass.GPR else _FPR_POISON
                        for reg in self.machine.caller_saved(cls):
                            if reg in skip:
                                continue
                            self.regs[reg] = poison
                            self._poisoned.add(reg)
                for d in instr.defs:
                    if value is None:
                        raise SimulationError(
                            f"{fn.name}: {instr.callee} returned no value "
                            f"but call expects one")
                    self._write(frame, d, value)
                frame.index += 1
                continue

            self._execute_straightline(frame, instr, fn.name)
            frame.index += 1

    def _execute_straightline(self, frame: _Frame, instr: Instr, fname: str) -> None:
        op = instr.op
        read = self._read
        if op is Op.LI or op is Op.FLI:
            self._write(frame, instr.defs[0], instr.imm)
            return
        if op is Op.MOV or op is Op.FMOV:
            self._write(frame, instr.defs[0], read(frame, instr.uses[0]))
            return
        if op is Op.PRINT:
            self.output.append(read(frame, instr.uses[0]))
            return
        if op is Op.NOP:
            return
        if op is Op.LDS:
            slot = instr.slot
            if slot not in frame.slots:
                raise SimulationError(f"{fname}: load of never-written {slot}")
            self._write(frame, instr.defs[0], frame.slots[slot])
            return
        if op is Op.STS:
            frame.slots[instr.slot] = read(frame, instr.uses[0])
            return
        if op is Op.LD or op is Op.FLD:
            base = read(frame, instr.uses[0])
            cls = RegClass.GPR if op is Op.LD else RegClass.FPR
            self._write(frame, instr.defs[0],
                        self._heap_load(base + instr.imm, cls, fname))
            return
        if op is Op.ST or op is Op.FST:
            value = read(frame, instr.uses[0])
            base = read(frame, instr.uses[1])
            self._heap_store(base + instr.imm, value, fname)
            return

        if op is Op.ADDI:
            self._write(frame, instr.defs[0],
                        _wrap64(read(frame, instr.uses[0]) + instr.imm))
            return
        if op in (Op.NEG, Op.NOT, Op.FNEG, Op.ITOF, Op.FTOI):
            a = read(frame, instr.uses[0])
            if op is Op.NEG:
                value: int | float = _wrap64(-a)
            elif op is Op.NOT:
                value = _wrap64(~a)
            elif op is Op.FNEG:
                value = -a
            elif op is Op.ITOF:
                value = float(a)
            else:  # FTOI truncates toward zero
                if a != a or a in (float("inf"), float("-inf")):
                    raise SimulationError(f"{fname}: ftoi of non-finite {a!r}")
                value = _wrap64(int(a))
            self._write(frame, instr.defs[0], value)
            return

        a = read(frame, instr.uses[0])
        b = read(frame, instr.uses[1])
        if op is Op.ADD:
            value = _wrap64(a + b)
        elif op is Op.SUB:
            value = _wrap64(a - b)
        elif op is Op.MUL:
            value = _wrap64(a * b)
        elif op is Op.DIV:
            if b == 0:
                raise SimulationError(f"{fname}: division by zero")
            q = abs(a) // abs(b)
            value = _wrap64(q if (a < 0) == (b < 0) else -q)
        elif op is Op.REM:
            if b == 0:
                raise SimulationError(f"{fname}: remainder by zero")
            q = abs(a) // abs(b)
            value = _wrap64(a - _wrap64(b * (q if (a < 0) == (b < 0) else -q)))
        elif op is Op.AND:
            value = _wrap64(a & b)
        elif op is Op.OR:
            value = _wrap64(a | b)
        elif op is Op.XOR:
            value = _wrap64(a ^ b)
        elif op is Op.SHL:
            value = _wrap64(a << (b % 64))
        elif op is Op.SHR:
            value = _wrap64(a >> (b % 64))
        elif op is Op.SLT:
            value = int(a < b)
        elif op is Op.SLE:
            value = int(a <= b)
        elif op is Op.SEQ:
            value = int(a == b)
        elif op is Op.SNE:
            value = int(a != b)
        elif op is Op.FADD:
            value = a + b
        elif op is Op.FSUB:
            value = a - b
        elif op is Op.FMUL:
            value = a * b
        elif op is Op.FDIV:
            if b == 0.0:
                raise SimulationError(f"{fname}: float division by zero")
            value = a / b
        elif op is Op.FSLT:
            value = int(a < b)
        elif op is Op.FSLE:
            value = int(a <= b)
        elif op is Op.FSEQ:
            value = int(a == b)
        elif op is Op.FSNE:
            value = int(a != b)
        else:  # pragma: no cover - exhaustive over the opcode set
            raise SimulationError(f"{fname}: unimplemented opcode {op}")
        self._write(frame, instr.defs[0], value)


def reference_simulate(module: Module, machine: MachineDescription, *,
                       entry: str = "main", max_steps: int = 50_000_000,
                       poison_calls: bool = True,
                       check_callee_saved: bool = True,
                       trap_poison: bool = False) -> SimOutcome:
    """Run ``module`` on the reference interpreter (tests only)."""
    sim = ReferenceSimulator(module, machine, max_steps=max_steps,
                             poison_calls=poison_calls,
                             check_callee_saved=check_callee_saved,
                             trap_poison=trap_poison)
    return sim.run(entry)
