"""The executing simulator (pre-decoded, dense-state interpreter).

Semantics notes:

* Integers are 64-bit two's-complement: every integer result is wrapped
  into ``[-2**63, 2**63)``.  ``div``/``rem`` truncate toward zero (C
  semantics) and fault on a zero divisor.  Shift counts are taken modulo
  64; ``shr`` is an arithmetic shift.
* Floats are IEEE doubles (Python floats).  Register allocation never
  reorders arithmetic, so allocated code produces bit-identical floats.
* Physical registers form one *global* register file shared by every
  frame — which is what makes the caller/callee-saved convention
  observable.  Temporaries and stack slots are per-frame.
* ``call`` transfers control; when the callee's ``ret`` carries a value,
  the ``call``'s def registers (if any) receive it.  This one rule covers
  both virtual code (``ret t3`` / ``call @f() -> r0``) and fully lowered
  code (where the value additionally travels through the return register).

Strictness (all on by default):

* ``poison_calls``: after a call returns, caller-saved registers that are
  not the call's defs are overwritten with poison, so code that wrongly
  keeps a value in a caller-saved register across a call misbehaves
  deterministically rather than accidentally working.
* ``check_callee_saved``: on ``ret``, every callee-saved register must
  hold the value it had at function entry.
* reading a stack slot that was never stored in this frame faults —
  this is what catches missing spill stores (the consistency dataflow's
  whole job, Section 2.4).

Opt-in strictness (off by default, used by the fuzz harness):

* ``trap_poison``: reading a register still holding call poison faults
  immediately with the offending instruction, instead of silently
  propagating the poison value until (maybe) an output diverges.
  Tracked per register, not by value, so a program that legitimately
  computes the poison constant is unaffected; the trap does not follow
  poison through memory (a stored poison value reloads silently).

Execution model
---------------

The module-walking interpreter lives in
:mod:`repro.sim.reference` (tests only).  This one *pre-decodes*: the
first time a function is called, every block is compiled once into a
flat tuple program — one ``(ctl, handler, cycles, op, spill, args)``
entry per instruction, with the opcode dispatched through a table of
bound handler methods and every operand resolved at decode time into its
slot kind (temporary / physical register / stack slot / immediate /
branch target).  The per-instruction loop then touches no ``isinstance``,
no dict-of-dicts block lookup, and no signature re-inspection; simulated
calls push entries on an explicit frame stack instead of recursing one
Python frame per call, so call depth is bounded by ``MAX_CALL_DEPTH``
alone, not by the host interpreter's recursion limit.

Dense state
-----------

All machine state lives in flat Python lists indexed by small integers
interned at decode time — the hot loop performs **zero hashing**:

* **Registers** get one machine-wide index space (``self.regs`` is a
  flat list, GPRs first then FPRs, in machine order).  Registers are
  always initialized (0 / 0.0), so no sentinel is needed.
* **Temporaries** get one index space *per function*; each frame's
  ``temps`` list is pre-filled from a per-function template of register
  class defaults (0 for GPR, 0.0 for FPR), so a read of a never-written
  temporary yields the class default exactly as the reference's
  ``dict.get(temp, default)`` did.
* **Stack slots** get one *module-wide* index space; each frame's
  ``slots`` list is pre-filled with the ``_UNSET`` sentinel, and a load
  finding the sentinel raises the same "load of never-written" fault,
  byte-identical, the dict-membership test produced.  The decoded entry
  keeps the :class:`~repro.ir.temp.StackSlot` object purely for the
  fault message.
* **Poison tracking** (``trap_poison``) is a per-register ``bytearray``
  flag vector instead of a set of ``PhysReg`` objects; guarded operand
  specs carry the register object only for the fault message.

Frames are **pooled per function**: a ``ret`` returns the frame to its
function's free list and the next call re-arms it with two C-level slice
copies (temps/slots templates) instead of allocating fresh dicts.  The
callee-saved snapshot is a flat list filled through a precomputed
callee-saved index vector — no per-call dict.

Both dynamic histograms are integer-keyed in the loop — opcodes by their
dense ``Op`` index, spill categories by an interned ``(phase, kind)``
index — and fold back into the observable ``Counter`` objects only at
the ``op_counts`` / ``spill_counts`` boundary, so no ``enum.__hash__``
runs per instruction.

Decoded programs are cached per function for the lifetime of the
``Simulator`` (a module must not be mutated mid-simulation, which the
pipeline never does); ``decode.compiled`` / ``decode.cached`` count
compiles and cache hits and publish as ``sim.decode.*`` metrics, and
``frames.allocated`` / ``frames.reused`` make the frame pool observable
as ``sim.frames.*``.
"""

from __future__ import annotations

import operator
from collections import Counter
from dataclasses import dataclass

from repro.ir.function import Function
from repro.ir.instr import Instr, Op, SpillPhase
from repro.ir.module import Module
from repro.ir.temp import PhysReg, Reg, StackSlot, Temp
from repro.ir.types import RegClass
from repro.sim.errors import SimulationError
from repro.target.machine import MachineDescription, cycle_cost

_MASK64 = (1 << 64) - 1
_HALF64 = 1 << 63
_TWO64 = 1 << 64

_GPR_POISON = -6148914691236517206  # 0xAAAA...AAAA as a signed 64-bit value
_FPR_POISON = -2.462743370480293e103

#: Sentinel marking a stack-slot cell never stored in this frame.  An
#: identity check against it replaces the reference's dict-membership
#: test; it can never collide with a program value (those are ints and
#: floats).
_UNSET = object()


def _wrap64(value: int) -> int:
    """Wrap an unbounded int into signed 64-bit two's complement."""
    value &= _MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


@dataclass
class SimOutcome:
    """Everything one simulation run produced.

    Attributes:
        output: The values printed, in order (the oracle's observable).
        result: ``main``'s returned value (``None`` for a bare ``ret``).
        dynamic_instructions: Total instructions executed.
        cycles: Total cycles under the shared cost model.
        op_counts: Dynamic count per opcode.
        spill_counts: Dynamic count per (phase, kind) for allocator-
            inserted instructions — Figure 3's raw data.
        decode_compiled: Functions the simulator pre-decoded (0 for the
            reference interpreter).
        decode_cached: Calls served from the decode cache.
        frames_allocated: Frames newly constructed (0 for the reference
            interpreter, which builds one per call instead of pooling).
        frames_reused: Calls served by re-arming a pooled frame.
    """

    output: list[int | float]
    result: int | float | None
    dynamic_instructions: int
    cycles: int
    op_counts: Counter
    spill_counts: Counter
    decode_compiled: int = 0
    decode_cached: int = 0
    frames_allocated: int = 0
    frames_reused: int = 0

    @property
    def spill_instructions(self) -> int:
        """Dynamic instructions inserted for allocation candidates
        (Table 2's numerator: evict + resolve, excluding prologue)."""
        return sum(count for (phase, _kind), count in self.spill_counts.items()
                   if phase is not SpillPhase.PROLOGUE)

    def spill_fraction(self) -> float:
        """Fraction of all dynamic instructions that are candidate spill
        code (Table 2)."""
        if not self.dynamic_instructions:
            return 0.0
        return self.spill_instructions / self.dynamic_instructions

    def publish(self, metrics) -> None:
        """Publish this run's dynamic counts into a
        :class:`~repro.obs.metrics.MetricsRegistry` under ``sim.*`` keys.
        Kept out of the execution loop so simulation speed is untouched
        when nobody asks for metrics."""
        metrics.bump("sim.dynamic.instructions", self.dynamic_instructions)
        metrics.bump("sim.dynamic.cycles", self.cycles)
        metrics.bump("sim.dynamic.spill_instructions", self.spill_instructions)
        metrics.bump("sim.decode.compiled", self.decode_compiled)
        metrics.bump("sim.decode.cached", self.decode_cached)
        metrics.bump("sim.frames.allocated", self.frames_allocated)
        metrics.bump("sim.frames.reused", self.frames_reused)
        for op, count in self.op_counts.items():
            metrics.bump(f"sim.op.{op.name.lower()}", count)
        for (phase, kind), count in self.spill_counts.items():
            metrics.bump(f"sim.spill.{phase.value}.{kind.name.lower()}",
                         count)


class _Frame:
    """Per-activation state: temporaries, stack slots, saved callee-saves.

    All three are flat lists in their dense index spaces (see the module
    docstring).  Control position (current decoded block + index) lives
    in the run loop's locals and on the explicit call stack, not here.
    Frames are pooled per function (``info.pool``) and re-armed from the
    templates on reuse.
    """

    __slots__ = ("fn", "info", "temps", "slots", "saved")

    def __init__(self, info: "_FnInfo", n_saved: int):
        self.fn = info.fn
        self.info = info
        self.temps: list[int | float] = list(info.temps_tpl)
        self.slots: list = list(info.slots_tpl)
        self.saved: list[int | float] = [0] * n_saved


class _FnInfo:
    """One function's decoded program plus its frame-template state."""

    __slots__ = ("fn", "entry", "temps_tpl", "slots_tpl", "pool")

    def __init__(self, fn: Function):
        self.fn = fn
        self.entry: list = []
        #: Class defaults per temp index (0 / 0.0) — a frame's initial
        #: ``temps``; a read of a never-written temp sees its default.
        self.temps_tpl: list[int | float] = []
        #: ``_UNSET`` per module-wide slot index this function can touch.
        self.slots_tpl: list = []
        #: Free frames, reused LIFO by the next call of this function.
        self.pool: list[_Frame] = []


# Control tags of decoded entries (entry[0]).
_CTL_STRAIGHT = 0
_CTL_JMP = 1
_CTL_BR = 2
_CTL_CALL = 3
_CTL_RET = 4
_CTL_FAULT = 5  # fell-off-block sentinel / unknown branch target

# Operand-spec kinds (spec[0]): how a register operand is accessed.
_K_TEMP = 0    # (0, temp_index)            frame.temps[i]
_K_PHYS = 1    # (1, reg_index)             self.regs[i]
_K_GUARD = 2   # (2, reg_index, physreg)    + poison trap/untrack bookkeeping
_K_BAD = 3     # (3, message)               faults when executed

#: Dense opcode numbering for the run loop's histogram: counting into a
#: flat int list is markedly cheaper than a per-instruction Counter[Op]
#: update; the histogram folds back into the Counter on loop exit.
_OP_LIST = tuple(Op)
_OP_INDEX = {op: i for i, op in enumerate(_OP_LIST)}

#: spill index -1 in a decoded entry = not allocator-inserted code.
_NO_SPILL = -1

#: Two-operand integer ALU ops sharing one handler (wrap applied after).
_INT_BIN = {
    Op.ADD: operator.add,
    Op.SUB: operator.sub,
    Op.MUL: operator.mul,
    Op.AND: operator.and_,
    Op.OR: operator.or_,
    Op.XOR: operator.xor,
    Op.SHL: lambda a, b: a << (b % 64),
    Op.SHR: lambda a, b: a >> (b % 64),
}
#: Comparisons producing 0/1 in a GPR (both files; operands pre-typed).
_CMP_BIN = {
    Op.SLT: operator.lt, Op.SLE: operator.le,
    Op.SEQ: operator.eq, Op.SNE: operator.ne,
    Op.FSLT: operator.lt, Op.FSLE: operator.le,
    Op.FSEQ: operator.eq, Op.FSNE: operator.ne,
}
#: Unwrapped float arithmetic (FDIV is separate: zero-divisor fault).
_FLT_BIN = {Op.FADD: operator.add, Op.FSUB: operator.sub,
            Op.FMUL: operator.mul}


class Simulator:
    """Executes a module; see the module docstring for the semantics."""

    def __init__(self, module: Module, machine: MachineDescription, *,
                 max_steps: int = 50_000_000, poison_calls: bool = True,
                 check_callee_saved: bool = True, trap_poison: bool = False):
        self.module = module
        self.machine = machine
        self.max_steps = max_steps
        self.poison_calls = poison_calls
        self.check_callee_saved = check_callee_saved
        self.trap_poison = trap_poison
        #: Machine-wide dense register index space: GPRs then FPRs, in
        #: machine order.  ``self.regs`` is the flat register file.
        self._reg_ix: dict[PhysReg, int] = {}
        self.regs: list[int | float] = []
        for reg in machine.gprs:
            self._reg_ix[reg] = len(self.regs)
            self.regs.append(0)
        for reg in machine.fprs:
            self._reg_ix[reg] = len(self.regs)
            self.regs.append(0.0)
        #: Per-register poison flags (only written when ``trap_poison``).
        self._poisoned = bytearray(len(self.regs))
        self.heap: list[int | float | None] = [None] * module.heap_size
        for arr in module.globals.values():
            fill: int | float = 0 if arr.regclass is RegClass.GPR else 0.0
            for i in range(arr.size):
                self.heap[arr.base + i] = arr.init[i] if i < len(arr.init) else fill
        self.output: list[int | float] = []
        self.steps = 0
        self.cycles = 0
        self.op_counts: Counter = Counter()
        self._op_hist: list[int] = [0] * len(_OP_LIST)
        self.spill_counts: Counter = Counter()
        #: Interned spill categories: ``(phase, kind) -> dense index``;
        #: the loop counts into ``_spill_hist`` and folds on exit.
        self._spill_ix: dict[tuple, int] = {}
        self._spill_keys: list[tuple] = []
        self._spill_hist: list[int] = []
        #: Module-wide dense stack-slot index space, grown at decode.
        self._slot_ix: dict[StackSlot, int] = {}
        #: Decoded program + frame templates per function name, filled
        #: lazily at first call.
        self._decoded: dict[str, _FnInfo] = {}
        self.decode_compiled = 0
        self.decode_cached = 0
        self.frames_allocated = 0
        self.frames_reused = 0
        #: Caller-saved registers with their poison values, both classes —
        #: fixed per machine, shared by every call-site decode (mapped to
        #: register indices there).
        self._poison_all: tuple[tuple[PhysReg, int | float], ...] = tuple(
            [(r, _GPR_POISON) for r in machine.caller_saved(RegClass.GPR)]
            + [(r, _FPR_POISON) for r in machine.caller_saved(RegClass.FPR)])
        #: Callee-saved index vector + parallel register objects (the
        #: objects appear only in clobber fault messages).  Order matches
        #: the reference's snapshot insertion order: GPRs then FPRs.
        callee = (machine.callee_saved(RegClass.GPR)
                  + machine.callee_saved(RegClass.FPR))
        self._callee_regs: tuple[PhysReg, ...] = callee
        self._callee_idx: tuple[int, ...] = tuple(self._reg_ix[r]
                                                  for r in callee)
        # Decode-time per-function interning state (valid only inside
        # _decode_fn; held on self so the spec helpers keep their shape).
        self._cur_temp_ix: dict[Temp, int] = {}
        self._cur_temps_tpl: list[int | float] = []

    # ------------------------------------------------------------------
    # Decoding.
    # ------------------------------------------------------------------
    def _fn_info(self, fn: Function) -> _FnInfo:
        """The decoded program of ``fn`` (compiling on first call)."""
        info = self._decoded.get(fn.name)
        if info is not None:
            self.decode_cached += 1
            return info
        self.decode_compiled += 1
        return self._decode_fn(fn)

    def _decode_fn(self, fn: Function) -> _FnInfo:
        info = _FnInfo(fn)
        self._cur_temp_ix = {}
        self._cur_temps_tpl = info.temps_tpl
        codes: dict[str, list] = {b.label: [] for b in fn.blocks}
        for block in fn.blocks:
            out = codes[block.label]
            for instr in block.instrs:
                out.append(self._decode_instr(fn, instr, codes))
            # Fell-off guard: a block without a terminator faults exactly
            # where the reference interpreter does.
            out.append((_CTL_FAULT, None, 0, 0, _NO_SPILL,
                        (SimulationError,
                         f"{fn.name}/{block.label}: fell off block")))
        info.entry = codes[fn.entry.label]
        # Every slot this function touches was interned above, so the
        # module-wide count now covers all of its indices.
        info.slots_tpl = [_UNSET] * len(self._slot_ix)
        self._decoded[fn.name] = info
        return info

    @staticmethod
    def _target(label: str, codes: dict[str, list]) -> list:
        """The decoded code of branch target ``label``.  An unknown label
        becomes a sentinel program raising the same ``KeyError`` the
        module-walking interpreter's block lookup would — and only when
        the branch is actually taken to it."""
        code = codes.get(label)
        if code is None:
            return [(_CTL_FAULT, None, 0, 0, _NO_SPILL, (KeyError, label))]
        return code

    def _temp_i(self, temp: Temp) -> int:
        """Intern ``temp`` into the current function's index space."""
        i = self._cur_temp_ix.get(temp)
        if i is None:
            i = self._cur_temp_ix[temp] = len(self._cur_temps_tpl)
            self._cur_temps_tpl.append(
                0 if temp.regclass is RegClass.GPR else 0.0)
        return i

    def _slot_i(self, slot: StackSlot) -> int:
        """Intern ``slot`` into the module-wide index space."""
        i = self._slot_ix.get(slot)
        if i is None:
            i = self._slot_ix[slot] = len(self._slot_ix)
        return i

    def _spill_i(self, key: tuple) -> int:
        """Intern a ``(phase, kind)`` spill category to its dense index."""
        i = self._spill_ix.get(key)
        if i is None:
            i = self._spill_ix[key] = len(self._spill_keys)
            self._spill_keys.append(key)
            self._spill_hist.append(0)
        return i

    def _read_spec(self, reg: Reg) -> tuple:
        """Pre-resolve a use operand into its slot kind + dense index."""
        if isinstance(reg, Temp):
            return (_K_TEMP, self._temp_i(reg))
        ri = self._reg_ix.get(reg)
        if ri is None:
            return (_K_BAD, f"register {reg} does not exist on "
                            f"{self.machine.name}")
        if self.trap_poison:
            return (_K_GUARD, ri, reg)
        return (_K_PHYS, ri)

    def _write_spec(self, reg: Reg) -> tuple:
        """Pre-resolve a def operand into its slot kind + dense index."""
        if isinstance(reg, Temp):
            return (_K_TEMP, self._temp_i(reg))
        ri = self._reg_ix.get(reg)
        if ri is None:
            return (_K_BAD, f"register {reg} does not exist on "
                            f"{self.machine.name}")
        # Writes un-poison; only worth tracking when reads can trap.
        return (_K_GUARD, ri, reg) if self.trap_poison else (_K_PHYS, ri)

    def _decode_instr(self, fn: Function, instr: Instr,
                      codes: dict[str, list]) -> tuple:
        """Compile one instruction into its flat decoded entry."""
        op = instr.op
        cyc = cycle_cost(op)
        spill_i = (_NO_SPILL if instr.spill_phase is None
                   else self._spill_i((instr.spill_phase,
                                       instr.spill_kind())))
        fname = fn.name

        op_i = _OP_INDEX[op]

        def entry(ctl: int, handler, args) -> tuple:
            return (ctl, handler, cyc, op_i, spill_i, args)

        if op is Op.JMP:
            return entry(_CTL_JMP, None, self._target(instr.targets[0], codes))
        if op is Op.BR:
            return entry(_CTL_BR, None,
                         (self._read_spec(instr.uses[0]),
                          self._target(instr.targets[0], codes),
                          self._target(instr.targets[1], codes)))
        if op is Op.RET:
            spec = self._read_spec(instr.uses[0]) if instr.uses else None
            return entry(_CTL_RET, None, spec)
        if op is Op.CALL:
            callee = self.module.functions.get(instr.callee)
            skip = set(instr.defs)
            poison = (tuple((self._reg_ix[reg], value)
                            for reg, value in self._poison_all
                            if reg not in skip)
                      if self.poison_calls else ())
            defs = tuple(self._write_spec(d) for d in instr.defs)
            return entry(_CTL_CALL, None,
                         (callee, instr.callee, poison, defs, fname))

        handler, args = self._decode_straightline(fname, instr)
        return entry(_CTL_STRAIGHT, handler, args)

    def _decode_straightline(self, fname: str, instr: Instr):
        """Pick the bound handler + pre-resolved args for one opcode."""
        op = instr.op
        if op is Op.LI or op is Op.FLI:
            return self._h_imm, (instr.imm, self._write_spec(instr.defs[0]))
        if op is Op.MOV or op is Op.FMOV:
            return self._h_mov, (self._read_spec(instr.uses[0]),
                                 self._write_spec(instr.defs[0]))
        if op is Op.PRINT:
            return self._h_print, (self._read_spec(instr.uses[0]),)
        if op is Op.NOP:
            return self._h_nop, ()
        if op is Op.LDS:
            return self._h_lds, (self._slot_i(instr.slot),
                                 self._write_spec(instr.defs[0]), fname,
                                 instr.slot)
        if op is Op.STS:
            return self._h_sts, (self._read_spec(instr.uses[0]),
                                 self._slot_i(instr.slot))
        if op is Op.LD or op is Op.FLD:
            cls = RegClass.GPR if op is Op.LD else RegClass.FPR
            return self._h_load, (self._read_spec(instr.uses[0]), instr.imm,
                                  cls, self._write_spec(instr.defs[0]), fname)
        if op is Op.ST or op is Op.FST:
            return self._h_store, (self._read_spec(instr.uses[0]),
                                   self._read_spec(instr.uses[1]),
                                   instr.imm, fname)
        if op is Op.ADDI:
            return self._h_addi, (self._read_spec(instr.uses[0]), instr.imm,
                                  self._write_spec(instr.defs[0]))
        if op in (Op.NEG, Op.NOT, Op.FNEG, Op.ITOF, Op.FTOI):
            unary = {Op.NEG: self._h_neg, Op.NOT: self._h_not,
                     Op.FNEG: self._h_fneg, Op.ITOF: self._h_itof,
                     Op.FTOI: self._h_ftoi}[op]
            return unary, (self._read_spec(instr.uses[0]),
                           self._write_spec(instr.defs[0]), fname)
        binargs = (self._read_spec(instr.uses[0]),
                   self._read_spec(instr.uses[1]),
                   self._write_spec(instr.defs[0]))
        fnop = _INT_BIN.get(op)
        if fnop is not None:
            return self._h_ibin, (fnop, *binargs)
        fnop = _CMP_BIN.get(op)
        if fnop is not None:
            return self._h_cmp, (fnop, *binargs)
        fnop = _FLT_BIN.get(op)
        if fnop is not None:
            return self._h_fbin, (fnop, *binargs)
        if op is Op.DIV or op is Op.REM:
            which = "division" if op is Op.DIV else "remainder"
            handler = self._h_div if op is Op.DIV else self._h_rem
            return handler, (*binargs, f"{fname}: {which} by zero")
        if op is Op.FDIV:
            return self._h_fdiv, (*binargs,
                                  f"{fname}: float division by zero")
        raise SimulationError(
            f"{fname}: unimplemented opcode {op}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Operand access: the slow (guarded) paths.  The fast kinds are
    # inlined into every handler.
    # ------------------------------------------------------------------
    def _read_guard(self, spec) -> int | float:
        kind = spec[0]
        if kind == _K_GUARD:
            if self._poisoned[spec[1]]:
                raise SimulationError(
                    f"read of caller-saved {spec[2]} still poisoned by a "
                    f"call")
            return self.regs[spec[1]]
        raise SimulationError(spec[1])  # _K_BAD

    def _write_guard(self, spec, value) -> None:
        kind = spec[0]
        if kind == _K_GUARD:
            ri = spec[1]
            self.regs[ri] = value
            self._poisoned[ri] = 0
            return
        raise SimulationError(spec[1])  # _K_BAD

    # ------------------------------------------------------------------
    # Heap.
    # ------------------------------------------------------------------
    def _heap_load(self, address: int, cls: RegClass, fn: str) -> int | float:
        if not isinstance(address, int):
            raise SimulationError(f"{fn}: non-integer address {address!r}")
        if not 0 <= address < len(self.heap) or self.heap[address] is None:
            raise SimulationError(f"{fn}: heap access out of bounds at {address}")
        value = self.heap[address]
        if cls is RegClass.GPR and not isinstance(value, int):
            raise SimulationError(f"{fn}: integer load of float cell {address}")
        if cls is RegClass.FPR and not isinstance(value, float):
            raise SimulationError(f"{fn}: float load of integer cell {address}")
        return value

    def _heap_store(self, address: int, value: int | float, fn: str) -> None:
        if not isinstance(address, int):
            raise SimulationError(f"{fn}: non-integer address {address!r}")
        if not 0 <= address < len(self.heap) or self.heap[address] is None:
            raise SimulationError(f"{fn}: heap access out of bounds at {address}")
        self.heap[address] = value

    # ------------------------------------------------------------------
    # Straight-line handlers.  Every handler receives (frame, args) with
    # args fully pre-resolved; operand reads/writes inline the two fast
    # slot kinds (flat-list indexing) and fall back to the guarded paths.
    # ------------------------------------------------------------------
    def _h_nop(self, frame: _Frame, a) -> None:
        pass

    def _h_imm(self, frame: _Frame, a) -> None:
        value, dst = a
        if dst[0] == 0:
            frame.temps[dst[1]] = value
        elif dst[0] == 1:
            self.regs[dst[1]] = value
        else:
            self._write_guard(dst, value)

    def _h_mov(self, frame: _Frame, a) -> None:
        src, dst = a
        if src[0] == 0:
            value = frame.temps[src[1]]
        elif src[0] == 1:
            value = self.regs[src[1]]
        else:
            value = self._read_guard(src)
        if dst[0] == 0:
            frame.temps[dst[1]] = value
        elif dst[0] == 1:
            self.regs[dst[1]] = value
        else:
            self._write_guard(dst, value)

    def _h_print(self, frame: _Frame, a) -> None:
        src = a[0]
        if src[0] == 0:
            value = frame.temps[src[1]]
        elif src[0] == 1:
            value = self.regs[src[1]]
        else:
            value = self._read_guard(src)
        self.output.append(value)

    def _h_lds(self, frame: _Frame, a) -> None:
        si, dst, fname, slot = a
        value = frame.slots[si]
        if value is _UNSET:
            raise SimulationError(f"{fname}: load of never-written {slot}")
        if dst[0] == 0:
            frame.temps[dst[1]] = value
        elif dst[0] == 1:
            self.regs[dst[1]] = value
        else:
            self._write_guard(dst, value)

    def _h_sts(self, frame: _Frame, a) -> None:
        src, si = a
        if src[0] == 0:
            value = frame.temps[src[1]]
        elif src[0] == 1:
            value = self.regs[src[1]]
        else:
            value = self._read_guard(src)
        frame.slots[si] = value

    def _h_load(self, frame: _Frame, a) -> None:
        base_spec, imm, cls, dst, fname = a
        if base_spec[0] == 0:
            base = frame.temps[base_spec[1]]
        elif base_spec[0] == 1:
            base = self.regs[base_spec[1]]
        else:
            base = self._read_guard(base_spec)
        value = self._heap_load(base + imm, cls, fname)
        if dst[0] == 0:
            frame.temps[dst[1]] = value
        elif dst[0] == 1:
            self.regs[dst[1]] = value
        else:
            self._write_guard(dst, value)

    def _h_store(self, frame: _Frame, a) -> None:
        src, base_spec, imm, fname = a
        if src[0] == 0:
            value = frame.temps[src[1]]
        elif src[0] == 1:
            value = self.regs[src[1]]
        else:
            value = self._read_guard(src)
        if base_spec[0] == 0:
            base = frame.temps[base_spec[1]]
        elif base_spec[0] == 1:
            base = self.regs[base_spec[1]]
        else:
            base = self._read_guard(base_spec)
        self._heap_store(base + imm, value, fname)

    def _h_addi(self, frame: _Frame, a) -> None:
        src, imm, dst = a
        if src[0] == 0:
            value = frame.temps[src[1]]
        elif src[0] == 1:
            value = self.regs[src[1]]
        else:
            value = self._read_guard(src)
        value = (value + imm) & _MASK64
        if value >= _HALF64:
            value -= _TWO64
        if dst[0] == 0:
            frame.temps[dst[1]] = value
        elif dst[0] == 1:
            self.regs[dst[1]] = value
        else:
            self._write_guard(dst, value)

    def _unary(self, frame: _Frame, a):
        src = a[0]
        if src[0] == 0:
            return frame.temps[src[1]]
        if src[0] == 1:
            return self.regs[src[1]]
        return self._read_guard(src)

    def _store_result(self, frame: _Frame, dst, value) -> None:
        if dst[0] == 0:
            frame.temps[dst[1]] = value
        elif dst[0] == 1:
            self.regs[dst[1]] = value
        else:
            self._write_guard(dst, value)

    def _h_neg(self, frame: _Frame, a) -> None:
        value = (-self._unary(frame, a)) & _MASK64
        if value >= _HALF64:
            value -= _TWO64
        self._store_result(frame, a[1], value)

    def _h_not(self, frame: _Frame, a) -> None:
        value = (~self._unary(frame, a)) & _MASK64
        if value >= _HALF64:
            value -= _TWO64
        self._store_result(frame, a[1], value)

    def _h_fneg(self, frame: _Frame, a) -> None:
        self._store_result(frame, a[1], -self._unary(frame, a))

    def _h_itof(self, frame: _Frame, a) -> None:
        self._store_result(frame, a[1], float(self._unary(frame, a)))

    def _h_ftoi(self, frame: _Frame, a) -> None:
        value = self._unary(frame, a)
        if value != value or value in (float("inf"), float("-inf")):
            raise SimulationError(f"{a[2]}: ftoi of non-finite {value!r}")
        value = int(value) & _MASK64
        if value >= _HALF64:
            value -= _TWO64
        self._store_result(frame, a[1], value)

    def _h_ibin(self, frame: _Frame, a) -> None:
        fnop, sa, sb, dst = a
        temps = frame.temps
        regs = self.regs
        if sa[0] == 0:
            x = temps[sa[1]]
        elif sa[0] == 1:
            x = regs[sa[1]]
        else:
            x = self._read_guard(sa)
        if sb[0] == 0:
            y = temps[sb[1]]
        elif sb[0] == 1:
            y = regs[sb[1]]
        else:
            y = self._read_guard(sb)
        value = fnop(x, y) & _MASK64
        if value >= _HALF64:
            value -= _TWO64
        if dst[0] == 0:
            temps[dst[1]] = value
        elif dst[0] == 1:
            regs[dst[1]] = value
        else:
            self._write_guard(dst, value)

    def _h_cmp(self, frame: _Frame, a) -> None:
        fnop, sa, sb, dst = a
        temps = frame.temps
        regs = self.regs
        if sa[0] == 0:
            x = temps[sa[1]]
        elif sa[0] == 1:
            x = regs[sa[1]]
        else:
            x = self._read_guard(sa)
        if sb[0] == 0:
            y = temps[sb[1]]
        elif sb[0] == 1:
            y = regs[sb[1]]
        else:
            y = self._read_guard(sb)
        value = 1 if fnop(x, y) else 0
        if dst[0] == 0:
            temps[dst[1]] = value
        elif dst[0] == 1:
            regs[dst[1]] = value
        else:
            self._write_guard(dst, value)

    def _h_fbin(self, frame: _Frame, a) -> None:
        fnop, sa, sb, dst = a
        temps = frame.temps
        regs = self.regs
        if sa[0] == 0:
            x = temps[sa[1]]
        elif sa[0] == 1:
            x = regs[sa[1]]
        else:
            x = self._read_guard(sa)
        if sb[0] == 0:
            y = temps[sb[1]]
        elif sb[0] == 1:
            y = regs[sb[1]]
        else:
            y = self._read_guard(sb)
        value = fnop(x, y)
        if dst[0] == 0:
            temps[dst[1]] = value
        elif dst[0] == 1:
            regs[dst[1]] = value
        else:
            self._write_guard(dst, value)

    def _divmod_operands(self, frame: _Frame, a):
        _sa, sb = a[0], a[1]
        # (shared by div/rem: read both operands with the inline kinds)
        if _sa[0] == 0:
            x = frame.temps[_sa[1]]
        elif _sa[0] == 1:
            x = self.regs[_sa[1]]
        else:
            x = self._read_guard(_sa)
        if sb[0] == 0:
            y = frame.temps[sb[1]]
        elif sb[0] == 1:
            y = self.regs[sb[1]]
        else:
            y = self._read_guard(sb)
        return x, y

    def _h_div(self, frame: _Frame, a) -> None:
        x, y = self._divmod_operands(frame, a)
        if y == 0:
            raise SimulationError(a[3])
        q = abs(x) // abs(y)
        value = (q if (x < 0) == (y < 0) else -q) & _MASK64
        if value >= _HALF64:
            value -= _TWO64
        self._store_result(frame, a[2], value)

    def _h_rem(self, frame: _Frame, a) -> None:
        x, y = self._divmod_operands(frame, a)
        if y == 0:
            raise SimulationError(a[3])
        q = abs(x) // abs(y)
        value = _wrap64(x - _wrap64(y * (q if (x < 0) == (y < 0) else -q)))
        self._store_result(frame, a[2], value)

    def _h_fdiv(self, frame: _Frame, a) -> None:
        x, y = self._divmod_operands(frame, a)
        if y == 0.0:
            raise SimulationError(a[3])
        self._store_result(frame, a[2], x / y)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    #: Maximum simulated call depth (explicit stack entries, not Python
    #: frames — the host recursion limit is irrelevant).
    MAX_CALL_DEPTH = 2000

    def run(self, entry: str = "main") -> SimOutcome:
        """Execute from ``entry`` until its ``ret``; return the outcome."""
        result = self._run(self.module.function(entry))
        return SimOutcome(
            output=self.output,
            result=result,
            dynamic_instructions=self.steps,
            cycles=self.cycles,
            op_counts=self.op_counts,
            spill_counts=self.spill_counts,
            decode_compiled=self.decode_compiled,
            decode_cached=self.decode_cached,
            frames_allocated=self.frames_allocated,
            frames_reused=self.frames_reused,
        )

    def _acquire_frame(self, info: _FnInfo) -> _Frame:
        """A ready frame for ``info``'s function: pooled when available
        (re-armed by two slice copies from the templates), fresh
        otherwise; the callee-saved snapshot fills through the
        precomputed index vector."""
        pool = info.pool
        if pool:
            frame = pool.pop()
            frame.temps[:] = info.temps_tpl
            frame.slots[:] = info.slots_tpl
            self.frames_reused += 1
        else:
            frame = _Frame(info, len(self._callee_idx))
            self.frames_allocated += 1
        if self.check_callee_saved:
            regs = self.regs
            saved = frame.saved
            for k, ri in enumerate(self._callee_idx):
                saved[k] = regs[ri]
        return frame

    def _run(self, fn: Function) -> int | float | None:
        """The dispatch loop over decoded entries + the explicit frame
        stack.  Hot counters live in locals and are written back on every
        exit path."""
        info = self._fn_info(fn)
        frame = self._acquire_frame(info)
        code = info.entry
        i = 0
        stack: list = []  # (frame, code, resume_index, call_args)
        steps = self.steps
        cycles = self.cycles
        max_steps = self.max_steps
        op_hist = self._op_hist
        spill_hist = self._spill_hist
        regs = self.regs
        check_callee = self.check_callee_saved
        callee_idx = self._callee_idx
        callee_regs = self._callee_regs
        trap = self.trap_poison
        poisoned = self._poisoned

        try:
            while True:
                ctl, handler, cyc, op_i, spill_i, args = code[i]
                if ctl == 5:  # fault sentinel: not a real instruction,
                    exc_type, payload = args  # so raises without counting
                    raise exc_type(payload)
                steps += 1
                if steps > max_steps:
                    raise SimulationError(
                        f"step budget exceeded in {frame.fn.name}")
                cycles += cyc
                op_hist[op_i] += 1
                if spill_i >= 0:
                    spill_hist[spill_i] += 1
                if ctl == 0:  # straight-line
                    handler(frame, args)
                    i += 1
                elif ctl == 2:  # br
                    spec, then_code, else_code = args
                    if spec[0] == 0:
                        cond = frame.temps[spec[1]]
                    elif spec[0] == 1:
                        cond = regs[spec[1]]
                    else:
                        cond = self._read_guard(spec)
                    code = then_code if cond else else_code
                    i = 0
                elif ctl == 1:  # jmp
                    code = args
                    i = 0
                elif ctl == 3:  # call
                    callee, callee_name, poison, defs, fname = args
                    if callee is None:
                        raise SimulationError(
                            f"{fname}: call to unknown "
                            f"function {callee_name!r}")
                    if len(stack) >= self.MAX_CALL_DEPTH:
                        raise SimulationError(
                            f"call depth exceeded entering {callee.name}")
                    stack.append((frame, code, i + 1, args))
                    info = self._fn_info(callee)
                    frame = self._acquire_frame(info)
                    code = info.entry
                    i = 0
                else:  # ret
                    spec = args
                    if spec is None:
                        value = None
                    elif spec[0] == 0:
                        value = frame.temps[spec[1]]
                    elif spec[0] == 1:
                        value = regs[spec[1]]
                    else:
                        value = self._read_guard(spec)
                    if check_callee:
                        saved = frame.saved
                        for k, ri in enumerate(callee_idx):
                            current = regs[ri]
                            entry_value = saved[k]
                            same = (current == entry_value or
                                    (current != current
                                     and entry_value != entry_value))
                            if not same:
                                raise SimulationError(
                                    f"{frame.fn.name}: callee-saved "
                                    f"{callee_regs[k]} clobbered "
                                    f"({entry_value!r} -> {current!r})")
                    frame.info.pool.append(frame)
                    if not stack:
                        return value
                    frame, code, i, call_args = stack.pop()
                    _callee, callee_name, poison, defs, fname = call_args
                    for ri, poison_value in poison:
                        regs[ri] = poison_value
                        if trap:
                            poisoned[ri] = 1
                    for dst in defs:
                        if value is None:
                            raise SimulationError(
                                f"{fname}: {callee_name} returned no value "
                                f"but call expects one")
                        if dst[0] == 0:
                            frame.temps[dst[1]] = value
                        elif dst[0] == 1:
                            regs[dst[1]] = value
                        else:
                            self._write_guard(dst, value)
        finally:
            self.steps = steps
            self.cycles = cycles
            op_counts = self.op_counts
            for op_i, count in enumerate(op_hist):
                if count:
                    op_counts[_OP_LIST[op_i]] += count
                    op_hist[op_i] = 0
            spill_counts = self.spill_counts
            spill_keys = self._spill_keys
            for spill_i, count in enumerate(spill_hist):
                if count:
                    spill_counts[spill_keys[spill_i]] += count
                    spill_hist[spill_i] = 0


def outputs_equal(a: list[int | float] | None, b: list[int | float] | None) -> bool:
    """Observable-output equality: exact values and types, NaN == NaN.

    Register allocation never reorders or perturbs arithmetic, so even
    float outputs must match bit-for-bit; NaN is compared as equal to
    itself so programs that legitimately compute NaN still have a stable
    oracle.
    """
    if a is None or b is None:
        return a is b
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if type(x) is not type(y):
            return False
        if x != y and not (x != x and y != y):
            return False
    return True


def simulate(module: Module, machine: MachineDescription, *,
             entry: str = "main", max_steps: int = 50_000_000,
             poison_calls: bool = True,
             check_callee_saved: bool = True,
             trap_poison: bool = False,
             metrics=None) -> SimOutcome:
    """Run ``module`` from ``entry`` and return the :class:`SimOutcome`.

    With a ``metrics`` registry, the outcome's dynamic counts are
    published under ``sim.*`` after the run (see :meth:`SimOutcome.publish`).
    """
    sim = Simulator(module, machine, max_steps=max_steps,
                    poison_calls=poison_calls,
                    check_callee_saved=check_callee_saved,
                    trap_poison=trap_poison)
    outcome = sim.run(entry)
    if metrics is not None:
        outcome.publish(metrics)
    return outcome
