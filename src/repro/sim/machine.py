"""The executing simulator.

Semantics notes:

* Integers are 64-bit two's-complement: every integer result is wrapped
  into ``[-2**63, 2**63)``.  ``div``/``rem`` truncate toward zero (C
  semantics) and fault on a zero divisor.  Shift counts are taken modulo
  64; ``shr`` is an arithmetic shift.
* Floats are IEEE doubles (Python floats).  Register allocation never
  reorders arithmetic, so allocated code produces bit-identical floats.
* Physical registers form one *global* register file shared by every
  frame — which is what makes the caller/callee-saved convention
  observable.  Temporaries and stack slots are per-frame.
* ``call`` transfers control; when the callee's ``ret`` carries a value,
  the ``call``'s def registers (if any) receive it.  This one rule covers
  both virtual code (``ret t3`` / ``call @f() -> r0``) and fully lowered
  code (where the value additionally travels through the return register).

Strictness (all on by default):

* ``poison_calls``: after a call returns, caller-saved registers that are
  not the call's defs are overwritten with poison, so code that wrongly
  keeps a value in a caller-saved register across a call misbehaves
  deterministically rather than accidentally working.
* ``check_callee_saved``: on ``ret``, every callee-saved register must
  hold the value it had at function entry.
* reading a stack slot that was never stored in this frame faults —
  this is what catches missing spill stores (the consistency dataflow's
  whole job, Section 2.4).

Opt-in strictness (off by default, used by the fuzz harness):

* ``trap_poison``: reading a register still holding call poison faults
  immediately with the offending instruction, instead of silently
  propagating the poison value until (maybe) an output diverges.
  Tracked per register, not by value, so a program that legitimately
  computes the poison constant is unaffected; the trap does not follow
  poison through memory (a stored poison value reloads silently).
"""

from __future__ import annotations

import sys
from collections import Counter
from dataclasses import dataclass

from repro.ir.function import Function
from repro.ir.instr import Instr, Op, SpillPhase
from repro.ir.module import Module
from repro.ir.temp import PhysReg, Reg, StackSlot, Temp
from repro.ir.types import RegClass
from repro.sim.errors import SimulationError
from repro.target.machine import MachineDescription, cycle_cost

_MASK64 = (1 << 64) - 1

# The simulator recurses one Python call per simulated call; make sure the
# interpreter allows the full simulated depth (set once, at import, so test
# frameworks that snapshot the limit see a stable value).
_NEEDED_RECURSION = 2000 * 3 + 200
if sys.getrecursionlimit() < _NEEDED_RECURSION:
    sys.setrecursionlimit(_NEEDED_RECURSION)
_GPR_POISON = -6148914691236517206  # 0xAAAA...AAAA as a signed 64-bit value
_FPR_POISON = -2.462743370480293e103


def _wrap64(value: int) -> int:
    """Wrap an unbounded int into signed 64-bit two's complement."""
    value &= _MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


@dataclass
class SimOutcome:
    """Everything one simulation run produced.

    Attributes:
        output: The values printed, in order (the oracle's observable).
        result: ``main``'s returned value (``None`` for a bare ``ret``).
        dynamic_instructions: Total instructions executed.
        cycles: Total cycles under the shared cost model.
        op_counts: Dynamic count per opcode.
        spill_counts: Dynamic count per (phase, kind) for allocator-
            inserted instructions — Figure 3's raw data.
    """

    output: list[int | float]
    result: int | float | None
    dynamic_instructions: int
    cycles: int
    op_counts: Counter
    spill_counts: Counter

    @property
    def spill_instructions(self) -> int:
        """Dynamic instructions inserted for allocation candidates
        (Table 2's numerator: evict + resolve, excluding prologue)."""
        return sum(count for (phase, _kind), count in self.spill_counts.items()
                   if phase is not SpillPhase.PROLOGUE)

    def spill_fraction(self) -> float:
        """Fraction of all dynamic instructions that are candidate spill
        code (Table 2)."""
        if not self.dynamic_instructions:
            return 0.0
        return self.spill_instructions / self.dynamic_instructions

    def publish(self, metrics) -> None:
        """Publish this run's dynamic counts into a
        :class:`~repro.obs.metrics.MetricsRegistry` under ``sim.*`` keys.
        Kept out of the execution loop so simulation speed is untouched
        when nobody asks for metrics."""
        metrics.bump("sim.dynamic.instructions", self.dynamic_instructions)
        metrics.bump("sim.dynamic.cycles", self.cycles)
        metrics.bump("sim.dynamic.spill_instructions", self.spill_instructions)
        for op, count in self.op_counts.items():
            metrics.bump(f"sim.op.{op.name.lower()}", count)
        for (phase, kind), count in self.spill_counts.items():
            metrics.bump(f"sim.spill.{phase.value}.{kind.name.lower()}",
                         count)


class _Frame:
    """Per-activation state: temporaries, stack slots, saved callee-saves."""

    __slots__ = ("fn", "temps", "slots", "entry_callee_saved", "block", "index")

    def __init__(self, fn: Function):
        self.fn = fn
        self.temps: dict[Temp, int | float] = {}
        self.slots: dict[StackSlot, int | float] = {}
        self.entry_callee_saved: dict[PhysReg, int | float] = {}
        self.block = fn.entry
        self.index = 0


class Simulator:
    """Executes a module; see the module docstring for the semantics."""

    def __init__(self, module: Module, machine: MachineDescription, *,
                 max_steps: int = 50_000_000, poison_calls: bool = True,
                 check_callee_saved: bool = True, trap_poison: bool = False):
        self.module = module
        self.machine = machine
        self.max_steps = max_steps
        self.poison_calls = poison_calls
        self.check_callee_saved = check_callee_saved
        self.trap_poison = trap_poison
        self._poisoned: set[PhysReg] = set()
        self.regs: dict[PhysReg, int | float] = {}
        for reg in machine.gprs:
            self.regs[reg] = 0
        for reg in machine.fprs:
            self.regs[reg] = 0.0
        self.heap: list[int | float | None] = [None] * module.heap_size
        for arr in module.globals.values():
            fill: int | float = 0 if arr.regclass is RegClass.GPR else 0.0
            for i in range(arr.size):
                self.heap[arr.base + i] = arr.init[i] if i < len(arr.init) else fill
        self.output: list[int | float] = []
        self.steps = 0
        self.cycles = 0
        self.op_counts: Counter = Counter()
        self.spill_counts: Counter = Counter()
        self._blocks_cache: dict[str, dict[str, object]] = {}

    # ------------------------------------------------------------------
    # Register/memory access.
    # ------------------------------------------------------------------
    def _read(self, frame: _Frame, reg: Reg) -> int | float:
        if isinstance(reg, Temp):
            default: int | float = 0 if reg.regclass is RegClass.GPR else 0.0
            return frame.temps.get(reg, default)
        try:
            value = self.regs[reg]
        except KeyError:
            raise SimulationError(f"register {reg} does not exist on "
                                  f"{self.machine.name}") from None
        if self.trap_poison and reg in self._poisoned:
            raise SimulationError(
                f"read of caller-saved {reg} still poisoned by a call")
        return value

    def _write(self, frame: _Frame, reg: Reg, value: int | float) -> None:
        if isinstance(reg, Temp):
            frame.temps[reg] = value
        else:
            if reg not in self.regs:
                raise SimulationError(f"register {reg} does not exist on "
                                      f"{self.machine.name}")
            self.regs[reg] = value
            self._poisoned.discard(reg)

    def _heap_load(self, address: int, cls: RegClass, fn: str) -> int | float:
        if not isinstance(address, int):
            raise SimulationError(f"{fn}: non-integer address {address!r}")
        if not 0 <= address < len(self.heap) or self.heap[address] is None:
            raise SimulationError(f"{fn}: heap access out of bounds at {address}")
        value = self.heap[address]
        if cls is RegClass.GPR and not isinstance(value, int):
            raise SimulationError(f"{fn}: integer load of float cell {address}")
        if cls is RegClass.FPR and not isinstance(value, float):
            raise SimulationError(f"{fn}: float load of integer cell {address}")
        return value

    def _heap_store(self, address: int, value: int | float, fn: str) -> None:
        if not isinstance(address, int):
            raise SimulationError(f"{fn}: non-integer address {address!r}")
        if not 0 <= address < len(self.heap) or self.heap[address] is None:
            raise SimulationError(f"{fn}: heap access out of bounds at {address}")
        self.heap[address] = value

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    #: Maximum simulated call depth (each level costs a few Python frames).
    MAX_CALL_DEPTH = 2000

    def run(self, entry: str = "main") -> SimOutcome:
        """Execute from ``entry`` until its ``ret``; return the outcome."""
        result = self._call(self.module.function(entry), depth=0)
        return SimOutcome(
            output=self.output,
            result=result,
            dynamic_instructions=self.steps,
            cycles=self.cycles,
            op_counts=self.op_counts,
            spill_counts=self.spill_counts,
        )

    def _block_map(self, fn: Function) -> dict[str, object]:
        cached = self._blocks_cache.get(fn.name)
        if cached is None:
            cached = {b.label: b for b in fn.blocks}
            self._blocks_cache[fn.name] = cached
        return cached

    def _call(self, fn: Function, depth: int) -> int | float | None:
        if depth > self.MAX_CALL_DEPTH:
            raise SimulationError(f"call depth exceeded entering {fn.name}")
        frame = _Frame(fn)
        if self.check_callee_saved:
            for cls in (RegClass.GPR, RegClass.FPR):
                for reg in self.machine.callee_saved(cls):
                    frame.entry_callee_saved[reg] = self.regs[reg]
        blocks = self._block_map(fn)

        while True:
            if frame.index >= len(frame.block.instrs):
                raise SimulationError(f"{fn.name}/{frame.block.label}: fell off block")
            instr = frame.block.instrs[frame.index]
            self.steps += 1
            if self.steps > self.max_steps:
                raise SimulationError(f"step budget exceeded in {fn.name}")
            self.cycles += cycle_cost(instr.op)
            self.op_counts[instr.op] += 1
            if instr.spill_phase is not None:
                self.spill_counts[(instr.spill_phase, instr.spill_kind())] += 1

            op = instr.op
            if op is Op.RET:
                value = self._read(frame, instr.uses[0]) if instr.uses else None
                if self.check_callee_saved:
                    for reg, saved in frame.entry_callee_saved.items():
                        current = self.regs[reg]
                        same = (current == saved or
                                (current != current and saved != saved))
                        if not same:
                            raise SimulationError(
                                f"{fn.name}: callee-saved {reg} clobbered "
                                f"({saved!r} -> {current!r})")
                return value
            if op is Op.JMP:
                frame.block = blocks[instr.targets[0]]
                frame.index = 0
                continue
            if op is Op.BR:
                cond = self._read(frame, instr.uses[0])
                frame.block = blocks[instr.targets[0] if cond else instr.targets[1]]
                frame.index = 0
                continue
            if op is Op.CALL:
                callee = self.module.functions.get(instr.callee)
                if callee is None:
                    raise SimulationError(f"{fn.name}: call to unknown "
                                          f"function {instr.callee!r}")
                value = self._call(callee, depth + 1)
                if self.poison_calls:
                    skip = set(instr.defs)
                    for cls in (RegClass.GPR, RegClass.FPR):
                        poison = _GPR_POISON if cls is RegClass.GPR else _FPR_POISON
                        for reg in self.machine.caller_saved(cls):
                            if reg in skip:
                                continue
                            self.regs[reg] = poison
                            self._poisoned.add(reg)
                for d in instr.defs:
                    if value is None:
                        raise SimulationError(
                            f"{fn.name}: {instr.callee} returned no value "
                            f"but call expects one")
                    self._write(frame, d, value)
                frame.index += 1
                continue

            self._execute_straightline(frame, instr, fn.name)
            frame.index += 1

    def _execute_straightline(self, frame: _Frame, instr: Instr, fname: str) -> None:
        op = instr.op
        read = self._read
        if op is Op.LI or op is Op.FLI:
            self._write(frame, instr.defs[0], instr.imm)
            return
        if op is Op.MOV or op is Op.FMOV:
            self._write(frame, instr.defs[0], read(frame, instr.uses[0]))
            return
        if op is Op.PRINT:
            self.output.append(read(frame, instr.uses[0]))
            return
        if op is Op.NOP:
            return
        if op is Op.LDS:
            slot = instr.slot
            if slot not in frame.slots:
                raise SimulationError(f"{fname}: load of never-written {slot}")
            self._write(frame, instr.defs[0], frame.slots[slot])
            return
        if op is Op.STS:
            frame.slots[instr.slot] = read(frame, instr.uses[0])
            return
        if op is Op.LD or op is Op.FLD:
            base = read(frame, instr.uses[0])
            cls = RegClass.GPR if op is Op.LD else RegClass.FPR
            self._write(frame, instr.defs[0],
                        self._heap_load(base + instr.imm, cls, fname))
            return
        if op is Op.ST or op is Op.FST:
            value = read(frame, instr.uses[0])
            base = read(frame, instr.uses[1])
            self._heap_store(base + instr.imm, value, fname)
            return

        if op is Op.ADDI:
            self._write(frame, instr.defs[0],
                        _wrap64(read(frame, instr.uses[0]) + instr.imm))
            return
        if op in (Op.NEG, Op.NOT, Op.FNEG, Op.ITOF, Op.FTOI):
            a = read(frame, instr.uses[0])
            if op is Op.NEG:
                value: int | float = _wrap64(-a)
            elif op is Op.NOT:
                value = _wrap64(~a)
            elif op is Op.FNEG:
                value = -a
            elif op is Op.ITOF:
                value = float(a)
            else:  # FTOI truncates toward zero
                if a != a or a in (float("inf"), float("-inf")):
                    raise SimulationError(f"{fname}: ftoi of non-finite {a!r}")
                value = _wrap64(int(a))
            self._write(frame, instr.defs[0], value)
            return

        a = read(frame, instr.uses[0])
        b = read(frame, instr.uses[1])
        if op is Op.ADD:
            value = _wrap64(a + b)
        elif op is Op.SUB:
            value = _wrap64(a - b)
        elif op is Op.MUL:
            value = _wrap64(a * b)
        elif op is Op.DIV:
            if b == 0:
                raise SimulationError(f"{fname}: division by zero")
            q = abs(a) // abs(b)
            value = _wrap64(q if (a < 0) == (b < 0) else -q)
        elif op is Op.REM:
            if b == 0:
                raise SimulationError(f"{fname}: remainder by zero")
            q = abs(a) // abs(b)
            value = _wrap64(a - _wrap64(b * (q if (a < 0) == (b < 0) else -q)))
        elif op is Op.AND:
            value = _wrap64(a & b)
        elif op is Op.OR:
            value = _wrap64(a | b)
        elif op is Op.XOR:
            value = _wrap64(a ^ b)
        elif op is Op.SHL:
            value = _wrap64(a << (b % 64))
        elif op is Op.SHR:
            value = _wrap64(a >> (b % 64))
        elif op is Op.SLT:
            value = int(a < b)
        elif op is Op.SLE:
            value = int(a <= b)
        elif op is Op.SEQ:
            value = int(a == b)
        elif op is Op.SNE:
            value = int(a != b)
        elif op is Op.FADD:
            value = a + b
        elif op is Op.FSUB:
            value = a - b
        elif op is Op.FMUL:
            value = a * b
        elif op is Op.FDIV:
            if b == 0.0:
                raise SimulationError(f"{fname}: float division by zero")
            value = a / b
        elif op is Op.FSLT:
            value = int(a < b)
        elif op is Op.FSLE:
            value = int(a <= b)
        elif op is Op.FSEQ:
            value = int(a == b)
        elif op is Op.FSNE:
            value = int(a != b)
        else:  # pragma: no cover - exhaustive over the opcode set
            raise SimulationError(f"{fname}: unimplemented opcode {op}")
        self._write(frame, instr.defs[0], value)


def outputs_equal(a: list[int | float] | None, b: list[int | float] | None) -> bool:
    """Observable-output equality: exact values and types, NaN == NaN.

    Register allocation never reorders or perturbs arithmetic, so even
    float outputs must match bit-for-bit; NaN is compared as equal to
    itself so programs that legitimately compute NaN still have a stable
    oracle.
    """
    if a is None or b is None:
        return a is b
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if type(x) is not type(y):
            return False
        if x != y and not (x != x and y != y):
            return False
    return True


def simulate(module: Module, machine: MachineDescription, *,
             entry: str = "main", max_steps: int = 50_000_000,
             poison_calls: bool = True,
             check_callee_saved: bool = True,
             trap_poison: bool = False,
             metrics=None) -> SimOutcome:
    """Run ``module`` from ``entry`` and return the :class:`SimOutcome`.

    With a ``metrics`` registry, the outcome's dynamic counts are
    published under ``sim.*`` after the run (see :meth:`SimOutcome.publish`).
    """
    sim = Simulator(module, machine, max_steps=max_steps,
                    poison_calls=poison_calls,
                    check_callee_saved=check_callee_saved,
                    trap_poison=trap_poison)
    outcome = sim.run(entry)
    if metrics is not None:
        outcome.publish(metrics)
    return outcome
