"""An executing machine simulator for the IR.

The simulator plays two roles in the reproduction:

* **Oracle.**  It executes *virtual* code (temporaries as storage) and
  *physical* code (machine registers + stack slots) with identical
  semantics, so ``simulate(original) == simulate(allocated)`` is the
  correctness contract every allocator must meet.  Strictness knobs --
  poisoning caller-saved registers at calls, verifying callee-saved
  registers on return, faulting on loads of never-written stack slots --
  turn silent allocator bugs into immediate failures.

* **Instrument.**  It counts dynamic instructions, splits the
  allocator-inserted ones by phase and kind (the paper's Figure 3
  categories), and charges a per-opcode cycle model, standing in for the
  paper's HALT instrumentation and Alpha wall-clock runs (Tables 1 and 2).
"""

from repro.sim.errors import SimulationError
from repro.sim.machine import SimOutcome, Simulator, outputs_equal, simulate
from repro.sim.reference import ReferenceSimulator, reference_simulate

__all__ = ["ReferenceSimulator", "SimOutcome", "SimulationError",
           "Simulator", "outputs_equal", "reference_simulate", "simulate"]
