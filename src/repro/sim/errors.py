"""Simulator failure modes."""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Raised when executing IR faults.

    Faults include: division by zero, out-of-range heap accesses, reading
    a stack slot that was never written, clobbering a callee-saved
    register across a call, exceeding the step budget, and type confusion
    between the integer and floating-point files.  With a correct
    allocator, allocated code faults exactly when the original does.
    """
