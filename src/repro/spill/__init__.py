"""Shared spill-decision layer.

Every allocator used to re-implement its own spill-slot assignment,
store/load emission, and accounting.  This package centralises that
policy: :class:`~repro.spill.context.AllocationContext` carries the
run-wide knobs (rematerialization, seeded stress modes) and
:class:`~repro.spill.emitter.SpillCodeEmitter` owns the per-function
mechanics — slot homes, store/load/move construction with the right
``SpillPhase`` tag, per-category static accounting, and the decision
to rematerialize a constant instead of reloading it from memory.
"""

from repro.spill.context import (DEFAULT_CONTEXT, STRESS_MODES,
                                 AllocationContext)
from repro.spill.emitter import SpillCodeEmitter

__all__ = [
    "AllocationContext",
    "DEFAULT_CONTEXT",
    "STRESS_MODES",
    "SpillCodeEmitter",
]
