"""Per-function spill-code emission shared by every allocator.

The emitter concentrates what used to be duplicated across the
binpacking scan, the resolution pass, the whole-lifetime rewriter, and
the coloring spill phase: slot-home assignment, construction of the
tagged ``STS``/``LDS``/move instructions, the per-category static
accounting behind Figure 3, and — when the context enables it — the
decision to *rematerialize* a constant instead of reloading it.

A temporary is remat-able when it has exactly one definition in the
function and that definition is an original ``li``/``fli``: its value
is the same constant everywhere, so any reload can be replaced by
re-issuing the constant (1 cycle instead of a 3-cycle stack-slot
load).  The store half of the spill is kept — eliding it would change
slot liveness and is a follow-up — so rematerialization can only
remove loads.  Remat instructions carry ``remat_for`` so the dataflow
verifier can check them against the pre-allocation program.

Stress modes perturb *decisions*, never the machine description:
analyses stay shared and cacheable, and excluded registers are simply
never picked.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.ir.function import Function
from repro.ir.instr import Instr, Op, SpillPhase
from repro.ir.temp import PhysReg, Reg, StackSlot, Temp
from repro.ir.types import RegClass
from repro.spill.context import (FORCED_EVICT_RATE, FORCED_MEMORY_FRACTION,
                                 MIN_USABLE_REGS, AllocationContext)
from repro.target.machine import MachineDescription

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (base -> spill)
    from repro.allocators.base import AllocationStats, SpillSlots

#: Opcodes whose single original definition makes a temp remat-able.
_REMAT_OPS = (Op.LI, Op.FLI)


def remat_candidates(fn: Function) -> dict[Temp, tuple[Op, int | float]]:
    """Temps with exactly one definition, an original ``li``/``fli``."""
    seen: dict[Temp, Instr | None] = {}
    for instr in fn.instructions():
        for d in instr.defs:
            if isinstance(d, Temp):
                seen[d] = instr if d not in seen else None
    return {t: (i.op, i.imm) for t, i in seen.items()
            if i is not None and i.spill_phase is None
            and i.op in _REMAT_OPS and i.imm is not None}


class SpillCodeEmitter:
    """Owns spill-code emission for one function.

    Allocators call :meth:`store`/:meth:`reload`/:meth:`move` to build
    tagged spill instructions (the emitter bumps the matching static
    counter), :meth:`register_order` for their selection order, and the
    ``force_evict``/``forced_memory`` hooks under stress.  Placement of
    the returned instructions — and narrative tracing — stays with the
    caller, which knows the surrounding algorithm.
    """

    def __init__(self, fn: Function, machine: MachineDescription,
                 context: AllocationContext, slots: "SpillSlots",
                 stats: "AllocationStats") -> None:
        self.fn = fn
        self.machine = machine
        self.context = context
        self.slots = slots
        self.stats = stats
        self._orders: dict[tuple[RegClass, bool], tuple[PhysReg, ...]] = {}
        self._dropped: dict[RegClass, frozenset[PhysReg]] = {}
        self._evict_rng = (context.rng("force-evict", fn.name)
                          if context.stress == "forced-evict" else None)
        self._remat = remat_candidates(fn) if context.remat else {}

    # ------------------------------------------------------------------
    # Slot homes.
    # ------------------------------------------------------------------
    def home(self, temp: Temp) -> StackSlot:
        """The (lazily created) memory home of ``temp``."""
        return self.slots.home(temp)

    def has_home(self, temp: Temp) -> bool:
        return self.slots.has_home(temp)

    # ------------------------------------------------------------------
    # Emission + accounting.
    # ------------------------------------------------------------------
    def store(self, temp: Temp, reg: Reg, phase: SpillPhase) -> Instr:
        """A tagged spill store of ``reg`` into ``temp``'s home."""
        instr = Instr(Op.STS, uses=[reg], slot=self.slots.home(temp),
                      spill_phase=phase)
        self.stats.bump_spill(phase, "store")
        return instr

    def reload(self, temp: Temp, reg: Reg, phase: SpillPhase) -> Instr:
        """A tagged reload of ``temp`` into ``reg``.

        With rematerialization on and ``temp`` remat-able, this is the
        constant re-issued (``li``/``fli`` tagged ``remat``); the slot
        is untouched, so callers must *not* mark memory consistent.
        Otherwise it is the usual stack-slot load.
        """
        const = self._remat.get(temp) if isinstance(temp, Temp) else None
        if const is not None:
            op, imm = const
            self.stats.bump_spill(phase, "remat")
            return Instr(op, defs=[reg], imm=imm, spill_phase=phase,
                         remat_for=temp)
        instr = Instr(Op.LDS, defs=[reg], slot=self.slots.home(temp),
                      spill_phase=phase)
        self.stats.bump_spill(phase, "load")
        return instr

    def move(self, op: Op, dst: Reg, src: Reg, phase: SpillPhase) -> Instr:
        """A tagged register-to-register copy."""
        self.stats.bump_spill(phase, "move")
        return Instr(op, defs=[dst], uses=[src], spill_phase=phase)

    def rematerialized(self, instr: Instr) -> bool:
        """Whether :meth:`reload` produced ``instr`` by remat."""
        return instr.remat_for is not None

    def remattable(self, temp: Temp) -> bool:
        return temp in self._remat

    # ------------------------------------------------------------------
    # Stress hooks.
    # ------------------------------------------------------------------
    def register_order(self, regclass: RegClass,
                       prefer_caller_saved: bool = False
                       ) -> tuple[PhysReg, ...]:
        """The registers an allocator may assign, in selection order.

        Default context: index order, or caller-saved-then-callee-saved
        when ``prefer_caller_saved`` — exactly the orders the allocators
        used before this layer existed.  ``reduced-regs`` removes a
        seeded number of droppable registers (calling-convention
        registers always stay, and at least ``MIN_USABLE_REGS`` remain);
        ``shuffle`` replaces both views with one seeded permutation.
        """
        key = (regclass, prefer_caller_saved)
        order = self._orders.get(key)
        if order is None:
            order = self._compute_order(regclass, prefer_caller_saved)
            self._orders[key] = order
        return order

    def _compute_order(self, regclass: RegClass,
                       prefer_caller_saved: bool) -> tuple[PhysReg, ...]:
        machine, ctx = self.machine, self.context
        if ctx.stress == "shuffle":
            # One permutation per (function, class): both views agree,
            # and the caller-saved preference is deliberately destroyed.
            regs = list(machine.regs(regclass))
            ctx.rng("shuffle", self.fn.name, regclass.name).shuffle(regs)
            return tuple(regs)
        if prefer_caller_saved:
            base = (*machine.caller_saved(regclass),
                    *machine.callee_saved(regclass))
        else:
            base = machine.regs(regclass)
        dropped = self._dropped_regs(regclass)
        if dropped:
            base = tuple(r for r in base if r not in dropped)
        return tuple(base)

    def _dropped_regs(self, regclass: RegClass) -> frozenset[PhysReg]:
        """Registers ``reduced-regs`` stress removes from ``regclass``.

        Seed-dependent in *number*, deterministic in identity (highest
        indices go first), and shared by every order view so the
        function sees one consistent register file.
        """
        dropped = self._dropped.get(regclass)
        if dropped is None:
            ctx, machine = self.context, self.machine
            if ctx.stress != "reduced-regs":
                dropped = frozenset()
            else:
                keep = {machine.ret_reg(regclass),
                        *machine.param_regs(regclass)}
                droppable = [r for r in machine.regs(regclass)
                             if r not in keep]
                limit = min(len(droppable),
                            machine.file_size(regclass) - MIN_USABLE_REGS)
                if limit <= 0:
                    dropped = frozenset()
                else:
                    k = ctx.rng("reduced-regs", regclass.name).randint(1, limit)
                    dropped = frozenset(droppable[-k:])
            self._dropped[regclass] = dropped
        return dropped

    def force_evict(self) -> bool:
        """Under ``forced-evict`` stress: evict even though a register
        is free, with seeded probability.  Consumed once per placement
        decision that has an eviction candidate."""
        return (self._evict_rng is not None
                and self._evict_rng.random() < FORCED_EVICT_RATE)

    def forced_memory(self, temps: Iterable[Temp]) -> set[Temp]:
        """Under ``forced-evict`` stress: a seeded sample of candidates
        the whole-lifetime allocators must keep in memory homes."""
        if self.context.stress != "forced-evict":
            return set()
        pool = sorted(set(temps), key=lambda t: t.id)
        if not pool:
            return set()
        k = max(1, int(len(pool) * FORCED_MEMORY_FRACTION))
        rng = self.context.rng("forced-memory", self.fn.name)
        return set(rng.sample(pool, k))
