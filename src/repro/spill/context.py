"""Run-wide allocation configuration: remat and seeded stress modes.

An :class:`AllocationContext` travels from the CLI through
``pm.session``/``pm.batch`` into every allocator.  The default context
is inert: every allocator produces byte-identical output with and
without it.  Non-default contexts switch on

* **rematerialization** — single-definition constants are re-issued
  (``li``/``fli``) instead of reloaded from their stack slot;
* **stress modes** — seeded perturbations of the allocation decisions
  (fewer usable registers, forced evictions, shuffled selection order)
  that drive the allocators far from the happy path while the
  differential oracle and the dataflow verifier watch.

Everything seeded goes through :meth:`AllocationContext.rng`, which
seeds :class:`random.Random` with a *string* — string seeding hashes
with SHA-512, so results are independent of ``PYTHONHASHSEED`` and
reproducible across processes (the batch driver pickles contexts into
pool workers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

#: The recognised stress modes, in CLI order.
STRESS_MODES = ("none", "reduced-regs", "forced-evict", "shuffle")

#: Probability that the binpacking scan forces an eviction at a
#: placement decision under ``forced-evict`` stress.
FORCED_EVICT_RATE = 0.25

#: Fraction of candidate temporaries pre-forced to memory homes under
#: ``forced-evict`` stress in the whole-lifetime allocators.
FORCED_MEMORY_FRACTION = 0.25

#: Every register class keeps at least this many usable registers under
#: ``reduced-regs`` stress, so instructions' own operands still fit.
MIN_USABLE_REGS = 4


@dataclass(frozen=True)
class AllocationContext:
    """Immutable, picklable allocation configuration.

    Attributes:
        remat: Re-issue single-definition constants instead of
            reloading them from memory.
        stress: One of :data:`STRESS_MODES`.
        seed: Root seed for every stress decision.  Ignored (and kept
            at 0 by convention) when ``stress`` is ``"none"``.
    """

    remat: bool = False
    stress: str = "none"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.stress not in STRESS_MODES:
            raise ValueError(f"unknown stress mode {self.stress!r}; "
                             f"choose from {', '.join(STRESS_MODES)}")

    @property
    def is_default(self) -> bool:
        """True when this context cannot change any allocator's output."""
        return not self.remat and self.stress == "none"

    @property
    def stressed(self) -> bool:
        return self.stress != "none"

    def with_seed(self, seed: int) -> "AllocationContext":
        """The same context rooted at a different stress seed."""
        return replace(self, seed=seed)

    def rng(self, *salt: object) -> random.Random:
        """A deterministic RNG for one named decision site.

        The salt keeps independent sites (per function, per register
        class) from consuming the same stream.
        """
        tag = ":".join(str(part) for part in salt)
        return random.Random(f"{self.seed}:{tag}")

    # ------------------------------------------------------------------
    # Serialization: reports, witnesses, cache idents.
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Canonical compact form; empty for the default context."""
        parts = []
        if self.remat:
            parts.append("remat")
        if self.stress != "none":
            parts.append(f"stress={self.stress}")
            parts.append(f"seed={self.seed}")
        return ",".join(parts)

    def cli_args(self) -> list[str]:
        """CLI flags reproducing this context (for replay commands)."""
        args = []
        if self.remat:
            args.append("--remat")
        if self.stress != "none":
            args += ["--stress", self.stress, "--stress-seed", str(self.seed)]
        return args

    @classmethod
    def parse(cls, text: str) -> "AllocationContext":
        """Inverse of :meth:`describe` (accepts the empty string)."""
        remat, stress, seed = False, "none", 0
        for part in filter(None, text.split(",")):
            if part == "remat":
                remat = True
            elif part.startswith("stress="):
                stress = part.split("=", 1)[1]
            elif part.startswith("seed="):
                seed = int(part.split("=", 1)[1])
            else:
                raise ValueError(f"bad context fragment {part!r} in {text!r}")
        return cls(remat=remat, stress=stress, seed=seed)


#: The inert context every entry point uses unless told otherwise.
DEFAULT_CONTEXT = AllocationContext()
