"""Post-allocation spill-code cleanup (the paper's suggested follow-up).

Section 2.4: "A review of the output code shows that a global
optimization pass run after allocation can eliminate unnecessary
load/store pairs as well as partially redundant spill instructions using
hoisting and sinking techniques", and Section 2.5 anticipates replacing a
store/load pair to the same stack location with a register move.  The
paper leaves this pass to future work; this module implements its two
most profitable components over allocated (physical) code:

1. **Store-to-load forwarding.**  A load of slot ``s`` is rewritten into
   a register move when, on the straight-line path since the last store
   to ``s``, the stored register still holds the same value.  The move is
   then ``mov r, r`` whenever the allocator already agreed on registers,
   and the shared peephole deletes it.

2. **Dead spill-store elimination.**  A store to a slot nobody may read
   again (on any CFG path) is removed.  Slot liveness is a standard
   backward bit-vector problem over the function's stack slots — the same
   framework the allocators use for temporaries.

Both transformations work on any allocator's output (they are applied to
none by default — the benchmark ablation measures their effect), preserve
the spill-phase tags of surviving instructions, and never touch
``PROLOGUE`` callee-save traffic (its slots are read by definition at
every return).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.cfg import CFG
from repro.dataflow.framework import DataflowProblem, Direction, solve
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, SpillPhase
from repro.ir.module import Module
from repro.ir.temp import PhysReg, StackSlot
from repro.ir.types import RegClass


@dataclass
class SpillCleanupStats:
    """What the cleanup did to one function."""

    loads_forwarded: int = 0
    stores_removed: int = 0

    def __add__(self, other: "SpillCleanupStats") -> "SpillCleanupStats":
        return SpillCleanupStats(
            self.loads_forwarded + other.loads_forwarded,
            self.stores_removed + other.stores_removed)


def _forward_stores(fn: Function) -> int:
    """Within each block, turn ``sts r, [s] ... lds r', [s]`` into a move
    when ``r`` provably still holds the stored value at the load."""
    forwarded = 0
    for block in fn.blocks:
        # slot -> register whose current value equals the slot's contents.
        available: dict[StackSlot, PhysReg] = {}
        rewritten: list[Instr] = []
        for instr in block.instrs:
            if instr.op is Op.STS and instr.spill_phase is not SpillPhase.PROLOGUE:
                src = instr.uses[0]
                if isinstance(src, PhysReg):
                    available[instr.slot] = src
                else:
                    available.pop(instr.slot, None)
                rewritten.append(instr)
                continue
            if (instr.op is Op.LDS
                    and instr.spill_phase is not SpillPhase.PROLOGUE
                    and instr.slot in available):
                src = available[instr.slot]
                dst = instr.defs[0]
                move_op = Op.MOV if dst.regclass is RegClass.GPR else Op.FMOV
                rewritten.append(Instr(move_op, defs=[dst], uses=[src],
                                       spill_phase=instr.spill_phase))
                forwarded += 1
                # The slot value is now also in dst.
                if src in _written(instr):
                    available.pop(instr.slot, None)
                instr = None
            if instr is not None:
                rewritten.append(instr)
            # Any write to a register invalidates forwarding through it;
            # calls clobber unpredictably (callee register traffic).
            last = rewritten[-1]
            if last.is_call:
                available.clear()
            else:
                written = _written(last)
                if written:
                    for slot, reg in list(available.items()):
                        if reg in written:
                            del available[slot]
        block.instrs = rewritten
    return forwarded


def _written(instr: Instr) -> set[PhysReg]:
    return {r for r in instr.defs if isinstance(r, PhysReg)}


def _slot_index(fn: Function) -> dict[StackSlot, int]:
    slots: dict[StackSlot, int] = {}
    for instr in fn.instructions():
        if instr.slot is not None and instr.slot not in slots:
            slots[instr.slot] = len(slots)
    return slots


def _remove_dead_stores(fn: Function, analyses=None) -> int:
    """Delete stores to slots that no path reads before overwriting.

    Backward union dataflow over stack slots: ``gen`` = slots loaded
    before being stored in the block (upward-exposed slot reads),
    ``kill`` = slots stored.  A store is dead when its slot is not
    slot-live immediately after it.  Prologue saves are exempt (their
    restores sit before every ``ret``, so they are live anyway, but we
    skip them outright for clarity).
    """
    index = _slot_index(fn)
    if not index:
        return 0
    cfg = analyses.cfg(fn) if analyses is not None else CFG.build(fn)
    gen: dict[str, int] = {}
    kill: dict[str, int] = {}
    for block in fn.blocks:
        g = k = 0
        for instr in block.instrs:
            if instr.op is Op.LDS:
                bit = 1 << index[instr.slot]
                if not k & bit:
                    g |= bit
            elif instr.op is Op.STS:
                k |= 1 << index[instr.slot]
        gen[block.label] = g
        kill[block.label] = k
    result = solve(DataflowProblem(cfg, Direction.BACKWARD, gen, kill))

    removed = 0
    for block in fn.blocks:
        live = result.out[block.label]
        keep: list[Instr] = []
        for instr in reversed(block.instrs):
            if instr.op is Op.STS:
                bit = 1 << index[instr.slot]
                if (not live & bit
                        and instr.spill_phase is not SpillPhase.PROLOGUE):
                    removed += 1
                    continue
                live &= ~bit
            elif instr.op is Op.LDS:
                live |= 1 << index[instr.slot]
            keep.append(instr)
        keep.reverse()
        block.instrs = keep
    return removed


def cleanup_spill_code(fn: Function, analyses=None) -> SpillCleanupStats:
    """Run both cleanups to a fixed point (forwarding can kill a load,
    which can make its store dead).

    Neither rewrite touches labels or terminators, so a session cache
    passed as ``analyses`` serves one CFG to every fixed-point round.
    """
    stats = SpillCleanupStats()
    while True:
        forwarded = _forward_stores(fn)
        removed = _remove_dead_stores(fn, analyses)
        stats.loads_forwarded += forwarded
        stats.stores_removed += removed
        if not forwarded and not removed:
            return stats


def cleanup_spill_code_module(module: Module,
                              analyses=None) -> SpillCleanupStats:
    """Run the cleanup over every function; returns summed stats."""
    total = SpillCleanupStats()
    for fn in module.functions.values():
        total = total + cleanup_spill_code(fn, analyses)
    return total
