"""Dead-code elimination (the pre-allocation cleanup of Section 3).

Iteratively removes side-effect-free instructions whose defined
temporaries are dead — never used later on any path.  Liveness is
recomputed per round; the pass converges in a couple of rounds on
frontend output (each round can only expose more dead code by deleting
uses).

Only instructions that write a temporary and have no observable effect
are candidates: arithmetic, moves, immediates, conversions, and loads
(the IR has no volatile memory).  Stores, calls, prints, terminators and
anything writing a physical register always stay.
"""

from __future__ import annotations

from repro.cfg.cfg import CFG
from repro.dataflow.liveness import compute_liveness
from repro.ir.function import Function
from repro.ir.instr import Instr, Op
from repro.ir.module import Module
from repro.ir.temp import Temp

#: Opcodes with no effect beyond their register def.
_PURE_OPS = frozenset({
    Op.LI, Op.FLI, Op.MOV, Op.FMOV, Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM,
    Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.ADDI, Op.NEG, Op.NOT,
    Op.SLT, Op.SLE, Op.SEQ, Op.SNE, Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV,
    Op.FNEG, Op.FSLT, Op.FSLE, Op.FSEQ, Op.FSNE, Op.ITOF, Op.FTOI,
    Op.LD, Op.FLD, Op.NOP,
})

#: Pure opcodes that may still fault and therefore must not be deleted.
_MAY_FAULT = frozenset({Op.DIV, Op.REM, Op.FDIV, Op.LD, Op.FLD})


def _removable(instr: Instr, live_after: set[Temp]) -> bool:
    if instr.op is Op.NOP:
        return True
    if instr.op not in _PURE_OPS or instr.op in _MAY_FAULT:
        return False
    if not instr.defs:
        return False
    dst = instr.defs[0]
    if not isinstance(dst, Temp):
        return False
    return dst not in live_after


#: What a removing DCE round leaves valid: removals never touch labels or
#: terminators, so the CFG (and with it the loop forest) survives; the
#: liveness used to pick victims is stale the moment one is deleted.
_ROUND_PRESERVES = frozenset({"cfg", "loops"})


def eliminate_dead_code(fn: Function, analyses=None) -> int:
    """Remove dead pure instructions from ``fn``; returns removals.

    ``analyses`` (an :class:`repro.pm.analysis.AnalysisManager`) routes
    the per-round CFG and liveness queries through the session cache: the
    CFG is computed once for all rounds, and the final round's liveness —
    valid, since that round removed nothing — is left cached for the
    allocators.  Without it the pass recomputes both per round, as the
    seed implementation did.
    """
    removed_total = 0
    while True:
        if analyses is not None:
            cfg = analyses.cfg(fn)
            liveness = analyses.liveness(fn)
        else:
            cfg = CFG.build(fn)
            liveness = compute_liveness(fn, cfg)
        removed = 0
        for block in fn.blocks:
            live: set[Temp] = set(liveness.live_out_temps(block.label))
            keep: list[Instr] = []
            for instr in reversed(block.instrs):
                if _removable(instr, live):
                    removed += 1
                    continue
                keep.append(instr)
                for d in instr.defs:
                    if isinstance(d, Temp):
                        live.discard(d)
                for u in instr.uses:
                    if isinstance(u, Temp):
                        live.add(u)
            keep.reverse()
            block.instrs = keep
        removed_total += removed
        if not removed:
            return removed_total
        if analyses is not None:
            analyses.invalidate(fn, preserve=_ROUND_PRESERVES)


def eliminate_dead_code_module(module: Module, analyses=None) -> int:
    """Run DCE over every function; returns total removals."""
    return sum(eliminate_dead_code(fn, analyses)
               for fn in module.functions.values())
