"""Post-allocation peephole: remove self-moves.

After allocation, coalescing (coloring) and move elimination (binpacking)
leave behind ``mov r, r`` instructions; the paper's pipeline deletes them
in "a peephole optimization pass that removes moves that can safely
collapse into the preceding or succeeding instruction" (Section 3).  Both
allocators get exactly the same pass, so the comparison stays fair.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.module import Module


def remove_redundant_moves(fn: Function) -> int:
    """Delete ``mov r, r`` / ``fmov f, f``; returns the removal count."""
    removed = 0
    for block in fn.blocks:
        keep = []
        for instr in block.instrs:
            if (instr.is_move and instr.defs and instr.uses
                    and instr.defs[0] == instr.uses[0]):
                removed += 1
                continue
            keep.append(instr)
        block.instrs = keep
    return removed


def remove_redundant_moves_module(module: Module) -> int:
    """Run the peephole over every function; returns total removals."""
    return sum(remove_redundant_moves(fn) for fn in module.functions.values())
