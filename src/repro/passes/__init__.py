"""IR passes surrounding register allocation.

The paper's pipeline (Section 3): "register allocation is preceded by
dead code elimination and followed by a peephole optimization pass that
removes moves".  Both passes (and a post-allocation verifier) live here
and are applied identically around every allocator.
"""

from repro.passes.dce import eliminate_dead_code
from repro.passes.peephole import remove_redundant_moves
from repro.passes.spillopt import SpillCleanupStats, cleanup_spill_code
from repro.passes.verify_alloc import AllocationVerifyError, verify_allocation

__all__ = [
    "AllocationVerifyError",
    "SpillCleanupStats",
    "cleanup_spill_code",
    "eliminate_dead_code",
    "remove_redundant_moves",
    "verify_allocation",
]
