"""Post-allocation verifier.

A cheap structural check run after every allocator: no temporaries
survive, every physical register exists on the target, and parameter
counts respect the calling convention.  (Semantic equivalence is checked
by the simulator oracle in the test suite; this pass catches the shallow
breakage early with a precise message.)
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.temp import PhysReg
from repro.ir.validate import IRValidationError, validate_function
from repro.target.machine import MachineDescription


class AllocationVerifyError(ValueError):
    """Raised when allocated code violates the post-allocation contract."""


def verify_allocation(fn: Function, machine: MachineDescription) -> None:
    """Check that ``fn`` is fully and plausibly allocated."""
    try:
        validate_function(fn, physical=True)
    except IRValidationError as exc:
        raise AllocationVerifyError(str(exc)) from exc
    for block in fn.blocks:
        for instr in block.instrs:
            for reg in instr.regs():
                if isinstance(reg, PhysReg) and reg.index >= machine.file_size(reg.regclass):
                    raise AllocationVerifyError(
                        f"{fn.name}/{block.label}: register {reg} does not "
                        f"exist on {machine.name}")


def verify_allocation_module(module: Module, machine: MachineDescription) -> None:
    """Verify every function of ``module``."""
    for fn in module.functions.values():
        verify_allocation(fn, machine)
