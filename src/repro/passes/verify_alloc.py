"""Post-allocation verifiers.

Two layers, both raising :class:`AllocationVerifyError` with a precise
message:

* :func:`verify_allocation` — a cheap structural check run after every
  allocator: no temporaries survive, every physical register exists on
  the target, and operand shapes respect each opcode's signature.

* :func:`verify_dataflow` — a path-sensitive *dataflow* verifier that
  abstractly interprets the allocated code per block (and, through the
  split blocks the resolution pass creates, per edge), tracking which
  temporary's value every physical register and spill slot currently
  holds.  It statically rejects exactly the failure modes the paper's
  Section 2.3–2.4 machinery (postponed/elided spill stores, the
  ``USED_CONSISTENCY``/``WROTE_TR`` dataflow, edge resolution) is
  responsible for preventing: reads of clobbered registers, loads of
  never-written or stale spill slots, values left in caller-saved
  registers across calls, and clobbered callee-saved registers.

The dataflow verifier compares the allocated code against an *operand
snapshot* taken before allocation (:func:`snapshot_module`).  Allocators
rewrite ``defs``/``uses`` lists in place, preserving instruction
identity, so the snapshot tells us which temporary each physical operand
stands for; allocator-inserted code is identified by its ``spill_phase``
tag and interpreted as pure data movement.

Abstract domain (per location — physical register or stack slot):

    ``{v, ...}`` the location holds the *current* value of every variable
                 in the set (temporaries, and physical registers that
                 appear in the pre-allocation code, e.g. convention
                 registers).  A set, not a single variable, because a
                 copy ``mov p, t`` leaves its destination holding the
                 current value of both ``p`` and ``t`` — which allocators
                 exploit (e.g. evicting ``t`` by storing the register
                 just written as call argument ``p``).  The empty set
                 means "stale": everything the location held has since
                 been redefined elsewhere.
    ``POISON``   a caller-saved register after a call (matching the
                 simulator's poisoning semantics);
    ``UNWRITTEN``a stack slot no path has stored to;
    ``CONFLICT`` the join of a mark against a value set (set-against-set
                 joins intersect instead).

Transfer is exact for data movement (moves and spill loads/stores copy
the abstract value; an original copy's destination gets the source's set
plus the defined variable; a def of ``v`` removes ``v`` from every other
location's set), and every *use* of a pre-allocation variable demands
``v`` be in its location's set.  States are joined at block entries and
iterated to a fixed point (sets only shrink, so this terminates); the
error sweep runs once afterwards, on the stable states.

Run it *before* the move-removing peephole: move elimination leaves
``mov r, r`` identity moves whose def re-establishes ``CUR`` for the
destination temporary, and the peephole deletes precisely those.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.cfg import CFG
from repro.ir.function import Function
from repro.ir.instr import Instr, Op
from repro.ir.module import Module
from repro.ir.temp import PhysReg, Reg, StackSlot
from repro.ir.types import RegClass
from repro.ir.validate import IRValidationError, validate_function
from repro.target.machine import MachineDescription


class AllocationVerifyError(ValueError):
    """Raised when allocated code violates the post-allocation contract."""


# ----------------------------------------------------------------------
# Structural verifier (the original shallow pass).
# ----------------------------------------------------------------------
def verify_allocation(fn: Function, machine: MachineDescription) -> None:
    """Check that ``fn`` is fully and plausibly allocated."""
    try:
        validate_function(fn, physical=True)
    except IRValidationError as exc:
        raise AllocationVerifyError(str(exc)) from exc
    for block in fn.blocks:
        for instr in block.instrs:
            for reg in instr.regs():
                if isinstance(reg, PhysReg) and reg.index >= machine.file_size(reg.regclass):
                    raise AllocationVerifyError(
                        f"{fn.name}/{block.label}: register {reg} does not "
                        f"exist on {machine.name}")


def verify_allocation_module(module: Module, machine: MachineDescription) -> None:
    """Verify every function of ``module``."""
    for fn in module.functions.values():
        verify_allocation(fn, machine)


# ----------------------------------------------------------------------
# Pre-allocation operand snapshots.
# ----------------------------------------------------------------------
#: Per-function snapshot: instruction -> (defs, uses) before allocation.
OperandSnapshot = dict[Instr, tuple[tuple[Reg, ...], tuple[Reg, ...]]]


def snapshot_function(fn: Function) -> OperandSnapshot:
    """Record every instruction's operands before allocation rewrites them.

    Keyed by instruction identity (allocators mutate operand lists in
    place but never replace original :class:`Instr` objects), so the
    verifier can recover which variable each allocated operand implements.
    """
    return {instr: (tuple(instr.defs), tuple(instr.uses))
            for instr in fn.instructions()}


def snapshot_module(module: Module) -> dict[str, OperandSnapshot]:
    """Snapshot every function of ``module`` (call before allocating)."""
    return {name: snapshot_function(fn)
            for name, fn in module.functions.items()}


# ----------------------------------------------------------------------
# Abstract values.
# ----------------------------------------------------------------------
class _Mark:
    """A named non-set lattice element (POISON / UNWRITTEN / CONFLICT)."""

    __slots__ = ("label",)

    def __init__(self, label: str):
        self.label = label

    def __str__(self) -> str:
        return self.label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Mark({self.label})"


POISON = _Mark("a caller-saved register poisoned by a call")
UNWRITTEN = _Mark("a never-written location")
CONFLICT = _Mark("conflicting values from different paths")

#: A location's abstract value: either a mark, or the *set* of variables
#: whose current value the location holds.  A set (not a single variable)
#: because a copy ``mov p, t`` leaves its destination holding the current
#: value of both ``p`` and ``t`` — and allocators legitimately exploit
#: that (e.g. evicting ``t`` by storing the register that was just
#: written as the call argument ``p``).  The empty set means "some
#: superseded value": every variable the location once held has been
#: redefined elsewhere.
_AbsVal = "frozenset[Reg] | _Mark"
_State = dict[PhysReg | StackSlot, "frozenset[Reg] | _Mark"]


def _describe(val: "frozenset[Reg] | _Mark") -> str:
    if isinstance(val, _Mark):
        return val.label
    if not val:
        return "a stale (superseded) value"
    return "the current value of " + "/".join(sorted(str(v) for v in val))


def _meet(a: "frozenset[Reg] | _Mark", b: "frozenset[Reg] | _Mark"):
    """Join of path facts: variables current on *both* paths survive;
    disagreeing marks (or a mark against a value set) conflict."""
    if a == b:
        return a
    if isinstance(a, frozenset) and isinstance(b, frozenset):
        return a & b
    return CONFLICT


def _join_states(into: _State, other: _State) -> bool:
    """Meet ``other`` into ``into`` pointwise; True when ``into`` changed.

    A location absent from one side defaults to ``UNWRITTEN`` (slots) /
    is impossible (registers — both sides seed the full file).
    """
    changed = False
    for loc in set(into) | set(other):
        a = into.get(loc, UNWRITTEN)
        b = other.get(loc, UNWRITTEN)
        met = _meet(a, b)
        if into.get(loc, UNWRITTEN) != met:
            into[loc] = met
            changed = True
    return changed


class _DataflowVerifier:
    """Runs the abstract interpretation over one allocated function."""

    def __init__(self, fn: Function, machine: MachineDescription,
                 snapshot: OperandSnapshot, cfg: CFG | None = None):
        self.fn = fn
        self.machine = machine
        self.snapshot = snapshot
        self.cfg = cfg if cfg is not None else CFG.build(fn)
        self.errors: list[str] = []

    # -- state helpers -------------------------------------------------
    def _entry_state(self) -> _State:
        """At function entry every register symbolically holds "its own"
        value (parameters arrive in parameter registers; callee-saved
        registers hold the caller's values, which must survive to the
        ``ret``); no stack slot has been written."""
        state: _State = {}
        for cls in RegClass:
            for reg in self.machine.regs(cls):
                state[reg] = frozenset((reg,))
        return state

    def _invalidate(self, state: _State, var: Reg,
                    except_loc: PhysReg | StackSlot) -> None:
        """``var`` was redefined: every other copy of its value is stale."""
        for loc, val in state.items():
            if loc != except_loc and isinstance(val, frozenset) and var in val:
                state[loc] = val - {var}

    # -- transfer ------------------------------------------------------
    def _transfer(self, state: _State, instr: Instr, label: str,
                  record: bool) -> None:
        """Apply one instruction to ``state``; with ``record``, append an
        error for every pre-allocation variable read from a location that
        does not hold its current value."""
        if instr.spill_phase is not None:
            self._transfer_spill(state, instr, label, record)
            return
        orig = self.snapshot.get(instr)
        if orig is None:
            # ``split_edge`` introduces bare jumps with no spill tag; any
            # other unrecognized instruction is an error.
            if instr.op is Op.JMP and not instr.defs and not instr.uses:
                return
            if record:
                self.errors.append(
                    f"{self.fn.name}/{label}: instruction '{instr}' is "
                    f"neither original code nor tagged spill code")
            return
        orig_defs, orig_uses = orig
        # Uses: each variable must be read from a location currently
        # holding its value.
        for var, now in zip(orig_uses, instr.uses):
            if not isinstance(now, PhysReg):
                if record:
                    self.errors.append(
                        f"{self.fn.name}/{label}: use of {var} in '{instr}' "
                        f"was not rewritten to a physical register")
                continue
            have = state.get(now, UNWRITTEN)
            ok = isinstance(have, frozenset) and var in have
            if not ok and record:
                self.errors.append(
                    f"{self.fn.name}/{label}: '{instr}' reads {now} "
                    f"expecting the current value of {var}, but {now} "
                    f"holds {_describe(have)}")
        # A copy's destination additionally keeps holding everything the
        # source held: capture that before the def overwrites the state
        # (the source and destination register may coincide).
        copied: "frozenset[Reg] | None" = None
        if (instr.op in (Op.MOV, Op.FMOV) and len(instr.uses) == 1
                and isinstance(instr.uses[0], PhysReg)):
            src_val = state.get(instr.uses[0], UNWRITTEN)
            if isinstance(src_val, frozenset):
                copied = src_val
        if instr.op is Op.CALL:
            # The callee may clobber every caller-saved register; the
            # call's own defs receive the return value below.
            skip = set(instr.defs)
            for cls in RegClass:
                for reg in self.machine.caller_saved(cls):
                    if reg not in skip:
                        state[reg] = POISON
        if instr.op is Op.RET and record:
            # The paper's convention: callee-saved registers must leave
            # the function holding the values they arrived with.
            for cls in RegClass:
                for reg in self.machine.callee_saved(cls):
                    have = state.get(reg, UNWRITTEN)
                    if not (isinstance(have, frozenset) and reg in have):
                        self.errors.append(
                            f"{self.fn.name}/{label}: ret with callee-saved "
                            f"{reg} holding {_describe(have)} instead of its "
                            f"entry value")
        # Defs: the written register now holds the variable's (new)
        # current value — plus, for a copy, everything the source held —
        # and every other copy of that variable is stale.
        for var, now in zip(orig_defs, instr.defs):
            if not isinstance(now, PhysReg):
                if record:
                    self.errors.append(
                        f"{self.fn.name}/{label}: def of {var} in '{instr}' "
                        f"was not rewritten to a physical register")
                continue
            state[now] = (frozenset((var,)) if copied is None
                          else copied | {var})
            self._invalidate(state, var, now)

    def _transfer_spill(self, state: _State, instr: Instr, label: str,
                        record: bool) -> None:
        """Allocator-inserted code is pure data movement between locations."""
        if instr.op is Op.STS:
            src = instr.uses[0]
            state[instr.slot] = state.get(src, UNWRITTEN)
            return
        if instr.op is Op.LDS:
            have = state.get(instr.slot, UNWRITTEN)
            if have is UNWRITTEN and record:
                self.errors.append(
                    f"{self.fn.name}/{label}: spill load '{instr}' reads "
                    f"{instr.slot}, which no path has written")
            state[instr.defs[0]] = have
            return
        if instr.op in (Op.MOV, Op.FMOV):
            state[instr.defs[0]] = state.get(instr.uses[0], UNWRITTEN)
            return
        if instr.op is Op.JMP:
            return  # split-block terminators
        if instr.op in (Op.LI, Op.FLI) and instr.remat_for is not None:
            # Rematerialization: the constant is the temporary's *only*
            # definition, so re-issuing it re-establishes the current
            # value of ``remat_for`` in the destination register — no
            # stack slot involved, hence no staleness to check.
            state[instr.defs[0]] = frozenset((instr.remat_for,))
            return
        if record:  # pragma: no cover - no allocator emits other spill ops
            self.errors.append(
                f"{self.fn.name}/{label}: unexpected spill-tagged "
                f"instruction '{instr}'")

    # -- driver --------------------------------------------------------
    def run(self) -> list[str]:
        entry_label = self.fn.entry.label
        in_states: dict[str, _State] = {entry_label: self._entry_state()}
        order = self.cfg.reverse_postorder()
        blocks = {b.label: b for b in self.fn.blocks}
        # Fixed point on the block-entry states (flat domain: terminates).
        changed = True
        while changed:
            changed = False
            for label in order:
                if label not in in_states:
                    continue  # not yet reached
                state = dict(in_states[label])
                for instr in blocks[label].instrs:
                    self._transfer(state, instr, label, record=False)
                for succ in self.cfg.succs[label]:
                    if succ not in in_states:
                        in_states[succ] = dict(state)
                        changed = True
                    elif _join_states(in_states[succ], state):
                        changed = True
        # Error sweep on the stable states.
        for label in order:
            if label not in in_states:
                continue
            state = dict(in_states[label])
            for instr in blocks[label].instrs:
                self._transfer(state, instr, label, record=True)
        return self.errors


def verify_dataflow(fn: Function, machine: MachineDescription,
                    snapshot: OperandSnapshot,
                    cfg: CFG | None = None) -> None:
    """Abstractly interpret allocated ``fn``; raise on any dataflow error.

    ``snapshot`` must come from :func:`snapshot_function` on the *same*
    function object, taken after any pre-allocation passes (DCE) and
    before the allocator ran.  See the module docstring for the domain.
    ``cfg`` may supply the (post-allocation) control-flow graph when the
    caller already has it cached; the verifier never mutates it.
    """
    errors = _DataflowVerifier(fn, machine, snapshot, cfg).run()
    if errors:
        shown = "\n  ".join(errors[:8])
        more = f"\n  ... and {len(errors) - 8} more" if len(errors) > 8 else ""
        raise AllocationVerifyError(
            f"dataflow verification failed ({len(errors)} error(s)):\n"
            f"  {shown}{more}")


def verify_dataflow_module(module: Module, machine: MachineDescription,
                           snapshots: dict[str, OperandSnapshot],
                           analyses=None) -> None:
    """Run :func:`verify_dataflow` over every function of ``module``.

    ``analyses`` (an :class:`repro.pm.analysis.AnalysisManager`) serves
    each function's post-allocation CFG from the session cache, where the
    spill-cleanup pass will find it again.
    """
    for name, fn in module.functions.items():
        cfg = analyses.cfg(fn) if analyses is not None else None
        verify_dataflow(fn, machine, snapshots[name], cfg)
