"""Target machine descriptions (see :mod:`repro.target.machine`).

Two factories cover every configuration the reproduction uses:

* :func:`alpha` — the paper's 32+32-register Alpha-like machine;
* :func:`tiny` — scaled-down machines (the same convention shape on
  4–8 registers) so tests can create register pressure with small
  programs, as the paper's figures do with two-register examples.
"""

from __future__ import annotations

from repro.target.alpha import alpha
from repro.target.machine import CYCLE_COSTS, MachineDescription, cycle_cost

__all__ = ["CYCLE_COSTS", "MachineDescription", "alpha", "cycle_cost", "tiny"]

#: The smallest legal tiny file: return register, two parameter
#: registers, and at least one callee-saved register.
_MIN_FILE = 4


def tiny(n_gpr: int = 8, n_fpr: int = 8) -> MachineDescription:
    """A scaled-down machine with ``n_gpr``/``n_fpr`` registers per file.

    Layout per file: register 0 returns the result, registers 1–2 pass
    parameters, register 3 is a caller-saved temporary, and registers 4
    and up are callee-saved.  Each file needs at least four registers to
    fit that convention (at the four-register minimum, register 3 is the
    single callee-saved register instead).
    """
    if n_gpr < _MIN_FILE or n_fpr < _MIN_FILE:
        raise ValueError(
            f"tiny machines need at least {_MIN_FILE} registers per file "
            f"(got {n_gpr} GPRs, {n_fpr} FPRs)")
    return MachineDescription(
        f"tiny{n_gpr}x{n_fpr}", n_gpr, n_fpr,
        gpr_params=(1, 2), fpr_params=(1, 2),
        gpr_callee_saved=tuple(range(min(4, n_gpr - 1), n_gpr)),
        fpr_callee_saved=tuple(range(min(4, n_fpr - 1), n_fpr)),
        gpr_ret=0, fpr_ret=0)
