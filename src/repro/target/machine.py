"""Target machine descriptions: register files, calling convention, costs.

A :class:`MachineDescription` is a *pure data* view of the target that
every allocator shares: two disjoint register files (general-purpose and
floating-point, :mod:`repro.ir.types`), a partition of each file into
caller-saved and callee-saved registers, the parameter registers and the
return register of each class.  The paper's machine is an Alpha 21164
(Section 3.1); :func:`repro.target.alpha` builds the corresponding
description, and :func:`repro.target.tiny` builds arbitrarily small
machines so tests can force register pressure with tiny programs.

The cycle model (:data:`CYCLE_COSTS` / :func:`cycle_cost`) is shared by
every allocator's evaluation, so relative comparisons are fair: memory
traffic is what spill code adds, so loads and stores cost more than ALU
operations, and divides are the slowest thing the machine does.
"""

from __future__ import annotations

from repro.ir.instr import Op
from repro.ir.temp import PhysReg
from repro.ir.types import RegClass


class MachineDescription:
    """An immutable description of one target machine.

    Args:
        name: Human-readable target name (appears in diagnostics).
        n_gpr: Size of the general-purpose register file.
        n_fpr: Size of the floating-point register file.
        gpr_params: Indices of the GPR parameter registers, in argument
            order.
        fpr_params: Indices of the FPR parameter registers, in argument
            order.
        gpr_callee_saved: Indices of the callee-saved GPRs.
        fpr_callee_saved: Indices of the callee-saved FPRs.
        gpr_ret: Index of the GPR return register.
        fpr_ret: Index of the FPR return register.

    Every register not listed as callee-saved is caller-saved.  Parameter
    and return registers take part in the call itself, so they must be
    caller-saved; construction validates this along with index ranges.
    """

    __slots__ = ("name", "n_gpr", "n_fpr", "_params", "_callee", "_caller",
                 "_regs", "_ret", "_callee_set", "gprs", "fprs")

    def __init__(self, name: str, n_gpr: int, n_fpr: int,
                 gpr_params: tuple[int, ...], fpr_params: tuple[int, ...],
                 gpr_callee_saved: tuple[int, ...],
                 fpr_callee_saved: tuple[int, ...],
                 gpr_ret: int, fpr_ret: int):
        self.name = name
        self.n_gpr = n_gpr
        self.n_fpr = n_fpr
        spec = {
            RegClass.GPR: (n_gpr, tuple(gpr_params), tuple(gpr_callee_saved),
                           gpr_ret),
            RegClass.FPR: (n_fpr, tuple(fpr_params), tuple(fpr_callee_saved),
                           fpr_ret),
        }
        self._params: dict[RegClass, tuple[PhysReg, ...]] = {}
        self._callee: dict[RegClass, tuple[PhysReg, ...]] = {}
        self._caller: dict[RegClass, tuple[PhysReg, ...]] = {}
        self._regs: dict[RegClass, tuple[PhysReg, ...]] = {}
        self._ret: dict[RegClass, PhysReg] = {}
        for cls, (size, params, callee, ret) in spec.items():
            for index in (*params, *callee, ret):
                if not 0 <= index < size:
                    raise ValueError(
                        f"{name}: {cls.name} register index {index} out of "
                        f"range for a file of {size}")
            if len(set(params)) != len(params):
                raise ValueError(
                    f"{name}: duplicate {cls.name} parameter registers")
            callee_set = set(callee)
            for index in (*params, ret):
                if index in callee_set:
                    raise ValueError(
                        f"{name}: {cls.name} register {index} takes part in "
                        f"calls and must be caller-saved")
            self._regs[cls] = tuple(PhysReg(cls, i) for i in range(size))
            self._callee[cls] = tuple(PhysReg(cls, i) for i in sorted(callee_set))
            self._caller[cls] = tuple(r for r in self._regs[cls]
                                      if r.index not in callee_set)
            self._params[cls] = tuple(PhysReg(cls, i) for i in params)
            self._ret[cls] = PhysReg(cls, ret)
        self._callee_set = frozenset(self._callee[RegClass.GPR]
                                     + self._callee[RegClass.FPR])
        self.gprs = self._regs[RegClass.GPR]
        self.fprs = self._regs[RegClass.FPR]

    # ------------------------------------------------------------------
    # Register-file queries.
    # ------------------------------------------------------------------
    def file_size(self, cls: RegClass) -> int:
        """Number of registers in the ``cls`` file."""
        return len(self._regs[cls])

    def regs(self, cls: RegClass) -> tuple[PhysReg, ...]:
        """Every register of the ``cls`` file, in index order."""
        return self._regs[cls]

    def caller_saved(self, cls: RegClass) -> tuple[PhysReg, ...]:
        """The caller-saved registers of ``cls`` (clobbered by calls)."""
        return self._caller[cls]

    def callee_saved(self, cls: RegClass) -> tuple[PhysReg, ...]:
        """The callee-saved registers of ``cls`` (preserved by calls)."""
        return self._callee[cls]

    def param_regs(self, cls: RegClass) -> tuple[PhysReg, ...]:
        """The ``cls`` parameter registers, in argument order."""
        return self._params[cls]

    def ret_reg(self, cls: RegClass) -> PhysReg:
        """The register a ``cls``-valued function result travels in."""
        return self._ret[cls]

    def is_callee_saved(self, reg: PhysReg) -> bool:
        """Whether ``reg`` must be preserved across calls."""
        return reg in self._callee_set

    def is_caller_saved(self, reg: PhysReg) -> bool:
        """Whether ``reg`` may be clobbered by calls."""
        return reg not in self._callee_set

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MachineDescription({self.name!r}, n_gpr={self.n_gpr}, "
                f"n_fpr={self.n_fpr})")


#: Cycle cost per opcode; anything absent costs one cycle.  Memory traffic
#: (heap and stack-slot accesses alike) is a cache-hit latency, multiplies
#: are pipelined-but-long, and divides are the unpipelined worst case —
#: the relative shape that makes spill code expensive, which is all the
#: evaluation's cycle totals need.
CYCLE_COSTS: dict[Op, int] = {
    Op.LD: 3,
    Op.ST: 3,
    Op.FLD: 3,
    Op.FST: 3,
    Op.LDS: 3,
    Op.STS: 3,
    Op.MUL: 4,
    Op.FMUL: 4,
    Op.CALL: 2,
    Op.FDIV: 15,
    Op.FADD: 2,
    Op.FSUB: 2,
    Op.REM: 20,
    Op.DIV: 20,
}


def cycle_cost(op: Op) -> int:
    """Cycles one dynamic instance of ``op`` costs (default 1)."""
    return CYCLE_COSTS.get(op, 1)
