"""The paper's target: an Alpha-like machine (Section 3.1).

The evaluation machine is a DEC Alpha 21164: 32 integer and 32 floating-
point registers, six parameter registers per file, results returned in
register 0 of each file, and no stack arguments in our subset.  The
description below keeps those dimensions (they are what the paper's
register-pressure numbers depend on) with a simplified layout:

* ``r0``/``f0`` — return value (caller-saved);
* ``r1``–``r6`` / ``f1``–``f6`` — parameter registers (caller-saved);
* ``r7``–``r21`` / ``f7``–``f21`` — caller-saved temporaries;
* ``r22``–``r31`` / ``f22``–``f31`` — callee-saved (ten per file,
  standing in for the OSF/1 convention's saved set).
"""

from __future__ import annotations

from repro.target.machine import MachineDescription

_N = 32
_PARAMS = tuple(range(1, 7))
_CALLEE_SAVED = tuple(range(22, 32))


def alpha() -> MachineDescription:
    """The Alpha-like evaluation target (32 + 32 registers)."""
    return MachineDescription(
        "alpha", _N, _N,
        gpr_params=_PARAMS, fpr_params=_PARAMS,
        gpr_callee_saved=_CALLEE_SAVED, fpr_callee_saved=_CALLEE_SAVED,
        gpr_ret=0, fpr_ret=0)
