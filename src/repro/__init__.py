"""repro: a reproduction of Traub, Holloway & Smith (PLDI 1998),
"Quality and Speed in Linear-scan Register Allocation".

The package implements, from scratch, everything the paper's evaluation
needed: a load/store virtual-register IR with an Alpha-like two-file
calling convention, shared CFG/liveness/loop analyses, the paper's
second-chance binpacking allocator (lifetime holes, the single
allocate/rewrite pass, the resolution phase and its consistency dataflow,
and the Section 2.5 move optimizations), the two-pass binpacking and
Poletto linear-scan baselines, a faithful George--Appel iterated-register-
coalescing graph-coloring allocator, an executing machine simulator that
counts dynamic instructions by spill category, a small C-like frontend
("minic"), and analog workloads for every benchmark in the paper's
tables.

Quickstart::

    from repro import compile_minic, run_allocator, simulate
    from repro.allocators import SecondChanceBinpacking
    from repro.target import alpha

    machine = alpha()
    module = compile_minic(SOURCE, machine)
    result = run_allocator(module, SecondChanceBinpacking(), machine)
    outcome = simulate(result.module, machine)
    print(outcome.output, outcome.dynamic_instructions, outcome.cycles)
"""

from repro.lang.lower import compile_minic
from repro.pipeline import PipelineResult, run_allocator
from repro.sim.machine import SimOutcome, outputs_equal, simulate

__version__ = "1.0.0"

__all__ = [
    "PipelineResult",
    "SimOutcome",
    "compile_minic",
    "outputs_equal",
    "run_allocator",
    "simulate",
]
