"""Modules: a set of functions plus global data.

Global arrays are the only global storage in the IR (the minic frontend
lowers every global declaration to one).  Each array is assigned a base
address in the simulator's flat heap at load time; pre-allocation code
refers to them through ``li``-loaded base addresses, so the allocators
never see symbols.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.types import RegClass

#: Heap addresses are assigned upward from this base; address 0 is kept
#: invalid so stray zero-initialized pointers fault in the simulator.
HEAP_BASE = 16


@dataclass(frozen=True)
class GlobalArray:
    """A statically-allocated global array.

    Attributes:
        name: Source-level name.
        regclass: Element class (``GPR`` = int64 cells, ``FPR`` = floats).
        size: Number of elements.
        base: Heap base address, assigned by :meth:`Module.layout`.
        init: Optional initial element values (zero-filled otherwise).
    """

    name: str
    regclass: RegClass
    size: int
    base: int
    init: tuple[int | float, ...] = ()


@dataclass
class Module:
    """A compiled program: functions (``main`` is the entry) and globals."""

    functions: dict[str, Function] = field(default_factory=dict)
    globals: dict[str, GlobalArray] = field(default_factory=dict)
    _next_addr: int = HEAP_BASE

    def add_function(self, fn: Function) -> Function:
        """Register ``fn``, enforcing name uniqueness."""
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn

    def function(self, name: str) -> Function:
        """Look up a function by name."""
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function {name!r} in module") from None

    def add_global(self, name: str, regclass: RegClass, size: int,
                   init: tuple[int | float, ...] = ()) -> GlobalArray:
        """Allocate a global array at the next free heap address."""
        if name in self.globals:
            raise ValueError(f"duplicate global {name!r}")
        if size <= 0:
            raise ValueError(f"global {name!r} must have positive size")
        if len(init) > size:
            raise ValueError(f"global {name!r}: initializer longer than array")
        arr = GlobalArray(name, regclass, size, self._next_addr, tuple(init))
        self._next_addr += size
        self.globals[name] = arr
        return arr

    def clone(self, instr_map: "dict | None" = None) -> "Module":
        """A structural copy of the whole program (no ``copy.deepcopy``).

        Functions are cloned block-by-block (:meth:`Function.clone`);
        global arrays are frozen and shared.  ``instr_map``, when given,
        collects the original-to-clone instruction correspondence across
        every function, for analysis transfer (see :mod:`repro.pm`).
        """
        return Module(
            functions={name: fn.clone(instr_map)
                       for name, fn in self.functions.items()},
            globals=dict(self.globals),
            _next_addr=self._next_addr)

    @property
    def heap_size(self) -> int:
        """Total heap cells needed for the globals (plus the guard zone)."""
        return self._next_addr

    def __str__(self) -> str:
        from repro.ir.printer import print_module

        return print_module(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Module({len(self.functions)} functions, {len(self.globals)} globals)"
