"""Functions: ordered block lists plus the temporary factory.

The block list order is the *linear order* used throughout the paper: it
defines lifetime intervals (Section 2.1) and the order of the single
allocate/rewrite sweep (Section 2.3).  ``Function`` also owns the
temporary-id counter so that every allocation candidate in a function has
a unique id — the dataflow bit vectors index temporaries by these ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.ir.block import BasicBlock
from repro.ir.instr import Instr
from repro.ir.temp import Temp
from repro.ir.types import RegClass


@dataclass(eq=False)
class Function:
    """A single compilation unit for the allocators.

    Attributes:
        name: Function name (callees are resolved by name at simulation).
        params: Parameter temporaries, in declaration order.  After
            lowering, the entry block begins with moves from the parameter
            registers into these temporaries.
        blocks: Basic blocks in layout (linear) order; entry block first.
    """

    name: str
    params: list[Temp] = field(default_factory=list)
    blocks: list[BasicBlock] = field(default_factory=list)
    _next_temp_id: int = 0

    # ------------------------------------------------------------------
    # Temporaries.
    # ------------------------------------------------------------------
    def new_temp(self, regclass: RegClass, name: str | None = None) -> Temp:
        """Mint a fresh temporary of ``regclass``."""
        temp = Temp(regclass, self._next_temp_id, name)
        self._next_temp_id += 1
        return temp

    def temp_count(self) -> int:
        """Upper bound (exclusive) on temporary ids in this function."""
        return self._next_temp_id

    def note_temp_ids(self) -> None:
        """Bump the id counter past every temporary appearing in the code.

        Used by the parser, which materializes temps from their printed
        ids rather than through :meth:`new_temp`.
        """
        highest = -1
        for instr in self.instructions():
            for temp in instr.temps():
                highest = max(highest, temp.id)
        for temp in self.params:
            highest = max(highest, temp.id)
        self._next_temp_id = max(self._next_temp_id, highest + 1)

    # ------------------------------------------------------------------
    # Blocks.
    # ------------------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        """The entry block (first in layout order)."""
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block(self, label: str) -> BasicBlock:
        """Look up a block by label."""
        for b in self.blocks:
            if b.label == label:
                return b
        raise KeyError(f"no block {label!r} in function {self.name}")

    def block_index(self) -> dict[str, int]:
        """Map from label to position in layout order."""
        return {b.label: i for i, b in enumerate(self.blocks)}

    def add_block(self, block: BasicBlock) -> BasicBlock:
        """Append ``block``, enforcing label uniqueness."""
        if any(b.label == block.label for b in self.blocks):
            raise ValueError(f"duplicate block label {block.label!r}")
        self.blocks.append(block)
        return block

    def new_label(self, hint: str = "b") -> str:
        """A block label not yet used in this function."""
        existing = {b.label for b in self.blocks}
        i = len(self.blocks)
        while f"{hint}{i}" in existing:
            i += 1
        return f"{hint}{i}"

    # ------------------------------------------------------------------
    # Cloning.
    # ------------------------------------------------------------------
    def clone(self, instr_map: dict[Instr, Instr] | None = None) -> "Function":
        """A structural copy: fresh blocks and instructions, shared atoms.

        Temporaries, physical registers, slots, labels and immediates are
        immutable values and are shared; block and instruction objects
        (the only things passes mutate) are fresh.  This is what the
        pipeline uses instead of ``copy.deepcopy`` — it is one linear
        sweep with no recursion or memo table.

        ``instr_map``, when given, is filled with the original-to-clone
        instruction correspondence, which is what lets the analysis
        manager *transfer* instruction-keyed analyses (linear order,
        lifetime tables) onto the clone instead of recomputing them.
        """
        blocks: list[BasicBlock] = []
        for block in self.blocks:
            copied = [instr.copy() for instr in block.instrs]
            if instr_map is not None:
                for old, new in zip(block.instrs, copied):
                    instr_map[old] = new
            blocks.append(BasicBlock(block.label, copied))
        return Function(self.name, list(self.params), blocks,
                        self._next_temp_id)

    # ------------------------------------------------------------------
    # Traversal.
    # ------------------------------------------------------------------
    def instructions(self) -> Iterator[Instr]:
        """All instructions in linear order."""
        for b in self.blocks:
            yield from b.instrs

    def instruction_count(self) -> int:
        """Total static instruction count."""
        return sum(len(b) for b in self.blocks)

    def all_temps(self) -> list[Temp]:
        """Every distinct temporary referenced, in first-appearance order."""
        seen: dict[Temp, None] = {}
        for p in self.params:
            seen.setdefault(p, None)
        for instr in self.instructions():
            for t in instr.temps():
                seen.setdefault(t, None)
        return list(seen)

    def __str__(self) -> str:
        from repro.ir.printer import print_function

        return print_function(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Function({self.name!r}, {len(self.blocks)} blocks, "
                f"{self.instruction_count()} instrs)")
