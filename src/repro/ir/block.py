"""Basic blocks.

A basic block is a labelled, straight-line run of instructions whose last
instruction is the unique terminator (``jmp``/``br``/``ret``).  Blocks are
stored in a :class:`~repro.ir.function.Function` in *layout order*; that
order is exactly the "static linear order" the paper's linear-scan
allocator sweeps (Section 1), so block position in the function list is
semantically meaningful to the allocator even though control flow is fully
described by the terminators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.ir.instr import Instr, Op


@dataclass(eq=False)
class BasicBlock:
    """A labelled basic block (identity semantics, like :class:`Instr`).

    Attributes:
        label: Unique (per function) block name.
        instrs: The instructions, terminator last.
    """

    label: str
    instrs: list[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Instr:
        """The block's terminator instruction.

        Raises :class:`ValueError` on an unterminated block — blocks under
        construction use the builder, which appends the terminator last.
        """
        if not self.instrs or not self.instrs[-1].is_terminator:
            raise ValueError(f"block {self.label} has no terminator")
        return self.instrs[-1]

    @property
    def body(self) -> list[Instr]:
        """All instructions except the terminator."""
        return self.instrs[:-1] if self.instrs and self.instrs[-1].is_terminator else list(self.instrs)

    def successors(self) -> list[str]:
        """Labels of the blocks control may flow to next."""
        term = self.terminator
        if term.op is Op.RET:
            return []
        return list(term.targets)

    def append(self, instr: Instr) -> None:
        """Append ``instr``; refuses to add past an existing terminator."""
        if self.instrs and self.instrs[-1].is_terminator:
            raise ValueError(f"block {self.label} already terminated")
        self.instrs.append(instr)

    def insert_before_terminator(self, instrs: list[Instr]) -> None:
        """Insert ``instrs`` just before the terminator (resolution code)."""
        self.terminator  # raises if unterminated
        self.instrs[-1:-1] = instrs

    def insert_at_top(self, instrs: list[Instr]) -> None:
        """Insert ``instrs`` at the very top of the block."""
        self.instrs[:0] = instrs

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def __str__(self) -> str:
        from repro.ir.printer import print_block

        return print_block(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BasicBlock({self.label!r}, {len(self.instrs)} instrs)"
