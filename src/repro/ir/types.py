"""Register classes and small shared type helpers for the IR.

The target machine (see :mod:`repro.target`) has two disjoint register
files, as the Digital Alpha did: general-purpose integer registers and
floating-point registers.  Every temporary and every physical register
belongs to exactly one class, and an instruction operand slot accepts only
one class.  The paper notes (Section 3) that the graph-coloring allocator
solves the two files as two separate problems while the binpacking
allocator processes both files in one scan; our implementations preserve
that distinction.
"""

from __future__ import annotations

import enum


class RegClass(enum.Enum):
    """A machine register class.

    ``GPR`` holds 64-bit integers (and addresses); ``FPR`` holds
    double-precision floats.  Values never move directly between classes
    except through the explicit conversion instructions ``itof``/``ftoi``.
    """

    GPR = "gpr"
    FPR = "fpr"

    def __lt__(self, other: "RegClass") -> bool:
        # Orderable so registers (whose first sort field is their class)
        # sort deterministically in worklists: GPR before FPR.
        if not isinstance(other, RegClass):
            return NotImplemented
        return self.value > other.value  # "gpr" > "fpr" lexically

    @property
    def prefix(self) -> str:
        """The textual prefix used for temporaries of this class."""
        return "t" if self is RegClass.GPR else "ft"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegClass.{self.name}"


def zero_value(cls: RegClass) -> int | float:
    """The default (uninitialized) runtime value for a register class."""
    return 0 if cls is RegClass.GPR else 0.0
