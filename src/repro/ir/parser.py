"""Parser for the textual IR emitted by :mod:`repro.ir.printer`.

The grammar is line-oriented: ``global`` declarations, ``func`` headers,
``label:`` lines, and one instruction per line.  The parser exists for
round-trip testing, for writing IR test fixtures as strings, and for the
examples that dump and reload allocated code.
"""

from __future__ import annotations

import re

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instr import OP_INFO, Instr, Op, SpillPhase
from repro.ir.module import Module
from repro.ir.temp import PhysReg, Reg, StackSlot, Temp
from repro.ir.types import RegClass


class IRParseError(ValueError):
    """Raised on malformed textual IR, with a line number."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_REG_RE = re.compile(r"""
    ^(?:
        (?P<tclass>t|ft)(?P<tid>\d+)(?:\.(?P<tname>[A-Za-z_][A-Za-z0-9_]*))?
      | (?P<pclass>r|f)(?P<pidx>\d+)
    )$
""", re.VERBOSE)
_SLOT_RE = re.compile(r"^\[s(?P<idx>\d+)\.(?P<tag>[gf])\]$")
_LABEL_RE = re.compile(r"^(?P<label>[A-Za-z_][A-Za-z0-9_.]*):$")
_FUNC_RE = re.compile(r"^func\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*\((?P<params>[^)]*)\)\s*\{$")
_GLOBAL_RE = re.compile(
    r"^global\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*:\s*(?P<cls>gpr|fpr)"
    r"\[(?P<size>\d+)\](?:\s*=\s*\{(?P<init>[^}]*)\})?$")
_CALL_RE = re.compile(
    r"^call\s+@(?P<callee>[A-Za-z_][A-Za-z0-9_]*)\((?P<args>[^)]*)\)"
    r"(?:\s*->\s*(?P<rets>.+?))?(?:\s*!(?P<phase>\w+))?$")
_INT_RE = re.compile(r"^-?\d+$")


def parse_reg(text: str) -> Reg:
    """Parse a temporary (``t3``, ``ft2.x``) or physical register (``r5``)."""
    m = _REG_RE.match(text)
    if not m:
        raise ValueError(f"bad register {text!r}")
    if m.group("tclass"):
        cls = RegClass.GPR if m.group("tclass") == "t" else RegClass.FPR
        return Temp(cls, int(m.group("tid")), m.group("tname"))
    cls = RegClass.GPR if m.group("pclass") == "r" else RegClass.FPR
    return PhysReg(cls, int(m.group("pidx")))


def _parse_operand_list(text: str) -> list[str]:
    items = [part.strip() for part in text.split(",")]
    return [item for item in items if item]


def _parse_instr(line: str, lineno: int) -> Instr:
    call_match = _CALL_RE.match(line)
    if call_match:
        uses = [parse_reg(a) for a in _parse_operand_list(call_match.group("args"))]
        rets = call_match.group("rets") or ""
        defs = [parse_reg(a) for a in _parse_operand_list(rets)]
        phase = SpillPhase(call_match.group("phase")) if call_match.group("phase") else None
        return Instr(Op.CALL, defs=defs, uses=uses, callee=call_match.group("callee"),
                     spill_phase=phase)

    phase: SpillPhase | None = None
    if "!" in line:
        line, _, phase_text = line.rpartition("!")
        line = line.strip()
        try:
            phase = SpillPhase(phase_text.strip())
        except ValueError:
            raise IRParseError(lineno, f"unknown spill phase {phase_text!r}")

    mnemonic, _, rest = line.partition(" ")
    try:
        op = Op(mnemonic)
    except ValueError:
        raise IRParseError(lineno, f"unknown opcode {mnemonic!r}")
    info = OP_INFO[op]
    operands = _parse_operand_list(rest)

    instr = Instr(op)
    instr.spill_phase = phase
    # Consume defs, then uses, then slot, then imm, then targets — the
    # printer's fixed order.
    idx = 0

    def take(reason: str) -> str:
        nonlocal idx
        if idx >= len(operands):
            raise IRParseError(lineno, f"{op.value}: missing {reason}")
        token = operands[idx]
        idx += 1
        return token

    if op is Op.RET:
        # Variadic: zero or one returned register.
        for token in operands:
            instr.uses.append(parse_reg(token))
        return instr

    for _ in info.def_classes:
        instr.defs.append(parse_reg(take("def operand")))
    for _ in info.use_classes:
        instr.uses.append(parse_reg(take("use operand")))
    if info.has_slot:
        token = take("stack slot")
        m = _SLOT_RE.match(token)
        if not m:
            raise IRParseError(lineno, f"bad stack slot {token!r}")
        cls = RegClass.GPR if m.group("tag") == "g" else RegClass.FPR
        instr.slot = StackSlot(int(m.group("idx")), cls)
    if info.has_imm:
        token = take("immediate")
        if info.imm_float:
            instr.imm = float(token)
        elif _INT_RE.match(token):
            instr.imm = int(token)
        else:
            raise IRParseError(lineno, f"bad integer immediate {token!r}")
    for _ in range(info.n_targets):
        instr.targets.append(take("branch target"))
    if idx != len(operands):
        raise IRParseError(lineno, f"{op.value}: trailing operands {operands[idx:]!r}")
    return instr


def parse_function(text: str) -> Function:
    """Parse a single ``func ... { ... }`` body."""
    module = parse_module(text)
    if len(module.functions) != 1:
        raise ValueError(f"expected exactly one function, got {len(module.functions)}")
    return next(iter(module.functions.values()))


def parse_module(text: str) -> Module:
    """Parse a full module dump (globals and functions)."""
    module = Module()
    fn: Function | None = None
    block: BasicBlock | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";;")[0].strip()
        if not line:
            continue
        g = _GLOBAL_RE.match(line)
        if g:
            if fn is not None:
                raise IRParseError(lineno, "global declared inside a function")
            cls = RegClass.GPR if g.group("cls") == "gpr" else RegClass.FPR
            init_text = g.group("init")
            init: tuple[int | float, ...] = ()
            if init_text:
                values = _parse_operand_list(init_text)
                if cls is RegClass.GPR:
                    init = tuple(int(v) for v in values)
                else:
                    init = tuple(float(v) for v in values)
            module.add_global(g.group("name"), cls, int(g.group("size")), init)
            continue
        f = _FUNC_RE.match(line)
        if f:
            if fn is not None:
                raise IRParseError(lineno, "nested function")
            fn = Function(f.group("name"))
            params = _parse_operand_list(f.group("params"))
            for p in params:
                reg = parse_reg(p)
                if not isinstance(reg, Temp):
                    raise IRParseError(lineno, f"parameter {p!r} is not a temporary")
                fn.params.append(reg)
            block = None
            continue
        if line == "}":
            if fn is None:
                raise IRParseError(lineno, "stray '}'")
            fn.note_temp_ids()
            module.add_function(fn)
            fn = None
            continue
        lab = _LABEL_RE.match(line)
        if lab:
            if fn is None:
                raise IRParseError(lineno, "label outside a function")
            block = BasicBlock(lab.group("label"))
            fn.add_block(block)
            continue
        if block is None:
            raise IRParseError(lineno, f"instruction outside a block: {line!r}")
        block.append(_parse_instr(line, lineno))
    if fn is not None:
        raise IRParseError(0, f"unterminated function {fn.name!r}")
    return module
