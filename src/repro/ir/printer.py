"""Textual form of the IR.

The format round-trips through :mod:`repro.ir.parser` and is designed to
read like assembly.  Operand order in the text is always *defs first*,
then uses, then the immediate, then targets — e.g. ``ld t5, t6, 8`` loads
into ``t5`` from address ``t6 + 8``.  Allocator-inserted instructions are
suffixed with their spill phase (``!evict``/``!resolve``/``!prologue``)
so dumps show exactly what each phase added.
"""

from __future__ import annotations

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instr import Instr, Op
from repro.ir.module import Module
from repro.ir.temp import Reg, StackSlot
from repro.ir.types import RegClass


def print_reg(reg: Reg) -> str:
    """Render a temporary or physical register."""
    return str(reg)


def print_slot(slot: StackSlot) -> str:
    """Render a stack slot with its class tag, e.g. ``[s3.g]``."""
    tag = "g" if slot.regclass is RegClass.GPR else "f"
    return f"[s{slot.index}.{tag}]"


def print_instr(instr: Instr) -> str:
    """Render one instruction (without indentation or newline)."""
    parts: list[str] = []
    if instr.op is Op.CALL:
        args = ", ".join(print_reg(r) for r in instr.uses)
        text = f"call @{instr.callee}({args})"
        if instr.defs:
            text += " -> " + ", ".join(print_reg(r) for r in instr.defs)
        parts.append(text)
    else:
        operands: list[str] = [print_reg(r) for r in instr.defs]
        operands.extend(print_reg(r) for r in instr.uses)
        if instr.slot is not None:
            operands.append(print_slot(instr.slot))
        if instr.imm is not None:
            if isinstance(instr.imm, float):
                operands.append(repr(instr.imm))
            else:
                operands.append(str(instr.imm))
        operands.extend(instr.targets)
        if operands:
            parts.append(f"{instr.op.value} " + ", ".join(operands))
        else:
            parts.append(instr.op.value)
    if instr.spill_phase is not None:
        parts.append(f"!{instr.spill_phase.value}")
    return " ".join(parts)


def print_block(block: BasicBlock) -> str:
    """Render a labelled block."""
    lines = [f"{block.label}:"]
    lines.extend(f"  {print_instr(i)}" for i in block.instrs)
    return "\n".join(lines)


def print_function(fn: Function) -> str:
    """Render a whole function."""
    params = ", ".join(print_reg(p) for p in fn.params)
    lines = [f"func {fn.name}({params}) {{"]
    lines.extend(print_block(b) for b in fn.blocks)
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render a module: globals first, then functions."""
    lines: list[str] = []
    for g in module.globals.values():
        tag = "gpr" if g.regclass is RegClass.GPR else "fpr"
        decl = f"global {g.name}: {tag}[{g.size}]"
        if g.init:
            decl += " = {" + ", ".join(repr(v) if isinstance(v, float) else str(v)
                                       for v in g.init) + "}"
        lines.append(decl)
    if lines:
        lines.append("")
    lines.extend(print_function(fn) + "\n" for fn in module.functions.values())
    return "\n".join(lines)
