"""Intermediate representation for the register-allocation testbed.

The IR is a low-level, load/store, virtual-register program representation
modelled on the Machine SUIF code that the paper's allocators consumed:

* values live in *temporaries* (:class:`~repro.ir.temp.Temp`), unbounded in
  number, each belonging to one of two register classes (integer ``GPR`` or
  floating-point ``FPR``), mirroring the Alpha's split register files;
* instructions (:class:`~repro.ir.instr.Instr`) follow a load/store
  discipline — arithmetic happens register-to-register, memory is reached
  only through explicit loads and stores;
* physical registers (:class:`~repro.ir.temp.PhysReg`) may appear directly
  in pre-allocation code for calling-convention moves (parameter and return
  registers), exactly the "precolored" references both allocators must
  honour;
* a function (:class:`~repro.ir.function.Function`) is a list of basic
  blocks whose order *is* the linear order the binpacking allocator scans.

Everything downstream — liveness, lifetimes and holes, both allocators, and
the machine simulator — is defined purely in terms of this package.
"""

from repro.ir.types import RegClass
from repro.ir.temp import PhysReg, StackSlot, Temp
from repro.ir.instr import Instr, Op, SpillKind, SpillPhase
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.module import GlobalArray, Module
from repro.ir.builder import FunctionBuilder
from repro.ir.printer import print_function, print_instr, print_module
from repro.ir.parser import parse_function, parse_module
from repro.ir.validate import IRValidationError, validate_function, validate_module

__all__ = [
    "BasicBlock",
    "Function",
    "FunctionBuilder",
    "GlobalArray",
    "IRValidationError",
    "Instr",
    "Module",
    "Op",
    "PhysReg",
    "RegClass",
    "SpillKind",
    "SpillPhase",
    "StackSlot",
    "Temp",
    "parse_function",
    "parse_module",
    "print_function",
    "print_instr",
    "print_module",
    "validate_function",
    "validate_module",
]
