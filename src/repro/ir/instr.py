"""Instructions of the load/store IR.

Each opcode has a fixed *signature* — how many register operands it defines
and uses, of which classes, and whether it carries an immediate, branch
targets, a callee name, or a stack slot.  Register allocators rewrite the
``defs``/``uses`` lists in place, replacing :class:`~repro.ir.temp.Temp`
entries with :class:`~repro.ir.temp.PhysReg` entries; the signatures never
change.

Spill bookkeeping
-----------------

Instructions inserted by an allocator carry a ``spill_phase`` tag so the
evaluation can reproduce Figure 3 of the paper, which splits spill code
into *eviction* code (inserted during the linear scan, or by coloring's
spill phase) and *resolution* code (inserted while reconciling allocation
assumptions across CFG edges).  Callee-saved save/restore code is tagged
``PROLOGUE`` and excluded from the spill statistics, matching the paper's
"allocation candidates only" accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.temp import PhysReg, Reg, StackSlot, Temp
from repro.ir.types import RegClass

G = RegClass.GPR
F = RegClass.FPR


class Op(enum.Enum):
    """Opcode of an IR instruction."""

    # Immediates.
    LI = "li"  # def gpr <- int imm
    FLI = "fli"  # def fpr <- float imm
    # Register moves.
    MOV = "mov"  # def gpr <- use gpr
    FMOV = "fmov"  # def fpr <- use fpr
    # Integer arithmetic / logic.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"  # truncating signed division
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    ADDI = "addi"  # def gpr <- use gpr + imm
    NEG = "neg"
    NOT = "not"
    # Integer comparisons (produce 0/1 in a GPR).
    SLT = "slt"
    SLE = "sle"
    SEQ = "seq"
    SNE = "sne"
    # Floating-point arithmetic.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    # Floating-point comparisons (produce 0/1 in a GPR).
    FSLT = "fslt"
    FSLE = "fsle"
    FSEQ = "fseq"
    FSNE = "fsne"
    # Conversions between the files.
    ITOF = "itof"
    FTOI = "ftoi"
    # Heap memory (base register + immediate offset, Alpha-style).
    LD = "ld"  # def gpr <- mem[use gpr + imm]
    ST = "st"  # mem[use gpr(base) + imm] <- use gpr(src)
    FLD = "fld"
    FST = "fst"
    # Stack-frame slots (spills and callee saves; inserted by allocators).
    LDS = "lds"  # def <- slot
    STS = "sts"  # slot <- use
    # Control flow.
    JMP = "jmp"
    BR = "br"  # use gpr cond; targets [then, else]
    RET = "ret"  # optional single use: the returned value
    CALL = "call"  # callee; uses = argument registers, defs = return register
    # Observable output (the test oracle) and filler.
    PRINT = "print"  # one use, either class
    NOP = "nop"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Op.{self.name}"


class SpillPhase(enum.Enum):
    """Which allocator phase inserted a spill/bookkeeping instruction."""

    EVICT = "evict"  # inserted during the linear scan / coloring spill phase
    RESOLVE = "resolve"  # inserted during binpacking's resolution pass
    PROLOGUE = "prologue"  # callee-saved save/restore (not candidate spill)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpillPhase.{self.name}"


class SpillKind(enum.Enum):
    """The flavour of a spill instruction, for Figure 3's categories."""

    LOAD = "load"
    STORE = "store"
    MOVE = "move"
    REMAT = "remat"  # constant re-issued in place of a reload from memory


@dataclass(frozen=True)
class OpInfo:
    """Static signature of an opcode.

    ``def_classes``/``use_classes`` give the register class of each operand
    slot; ``None`` in a slot means "either class" (``LDS``/``STS``/``PRINT``
    and ``RET``, whose class follows the operand), and variadic opcodes
    (``CALL``, ``RET``) validate their operands dynamically.
    """

    def_classes: tuple[RegClass | None, ...]
    use_classes: tuple[RegClass | None, ...]
    has_imm: bool = False
    imm_float: bool = False
    n_targets: int = 0
    has_callee: bool = False
    has_slot: bool = False
    variadic: bool = False
    terminator: bool = False
    commutative: bool = False


_BINOP_G = OpInfo((G,), (G, G))
_BINOP_G_COMM = OpInfo((G,), (G, G), commutative=True)
_BINOP_F = OpInfo((F,), (F, F))
_BINOP_F_COMM = OpInfo((F,), (F, F), commutative=True)
_FCMP = OpInfo((G,), (F, F))

OP_INFO: dict[Op, OpInfo] = {
    Op.LI: OpInfo((G,), (), has_imm=True),
    Op.FLI: OpInfo((F,), (), has_imm=True, imm_float=True),
    Op.MOV: OpInfo((G,), (G,)),
    Op.FMOV: OpInfo((F,), (F,)),
    Op.ADD: _BINOP_G_COMM,
    Op.SUB: _BINOP_G,
    Op.MUL: _BINOP_G_COMM,
    Op.DIV: _BINOP_G,
    Op.REM: _BINOP_G,
    Op.AND: _BINOP_G_COMM,
    Op.OR: _BINOP_G_COMM,
    Op.XOR: _BINOP_G_COMM,
    Op.SHL: _BINOP_G,
    Op.SHR: _BINOP_G,
    Op.ADDI: OpInfo((G,), (G,), has_imm=True),
    Op.NEG: OpInfo((G,), (G,)),
    Op.NOT: OpInfo((G,), (G,)),
    Op.SLT: _BINOP_G,
    Op.SLE: _BINOP_G,
    Op.SEQ: _BINOP_G_COMM,
    Op.SNE: _BINOP_G_COMM,
    Op.FADD: _BINOP_F_COMM,
    Op.FSUB: _BINOP_F,
    Op.FMUL: _BINOP_F_COMM,
    Op.FDIV: _BINOP_F,
    Op.FNEG: OpInfo((F,), (F,)),
    Op.FSLT: _FCMP,
    Op.FSLE: _FCMP,
    Op.FSEQ: _FCMP,
    Op.FSNE: _FCMP,
    Op.ITOF: OpInfo((F,), (G,)),
    Op.FTOI: OpInfo((G,), (F,)),
    Op.LD: OpInfo((G,), (G,), has_imm=True),
    Op.ST: OpInfo((), (G, G), has_imm=True),
    Op.FLD: OpInfo((F,), (G,), has_imm=True),
    Op.FST: OpInfo((), (F, G), has_imm=True),
    Op.LDS: OpInfo((None,), (), has_slot=True),
    Op.STS: OpInfo((), (None,), has_slot=True),
    Op.JMP: OpInfo((), (), n_targets=1, terminator=True),
    Op.BR: OpInfo((), (G,), n_targets=2, terminator=True),
    Op.RET: OpInfo((), (), variadic=True, terminator=True),
    Op.CALL: OpInfo((), (), has_callee=True, variadic=True),
    Op.PRINT: OpInfo((), (None,)),
    Op.NOP: OpInfo((), ()),
}

#: Opcodes that write register 0 of their ``defs`` with a copy of ``uses[0]``.
MOVE_OPS = frozenset({Op.MOV, Op.FMOV})


@dataclass(eq=False)
class Instr:
    """One IR instruction.

    Instructions compare and hash by *identity*: the same textual
    instruction may appear many times in a function, and the analyses key
    tables by the instruction object (e.g. linear-order numbering).

    ``defs`` and ``uses`` are *mutable* lists of registers; allocators
    rewrite them in place.  All other fields are set at construction.

    Attributes:
        op: The opcode.
        defs: Registers written (order matches the opcode signature).
        uses: Registers read.
        imm: Immediate constant for opcodes that take one.
        targets: Branch target labels (``JMP``: 1, ``BR``: 2 = then/else).
        callee: Called function's name for ``CALL``.
        slot: Stack slot for ``LDS``/``STS``.
        spill_phase: Set on allocator-inserted instructions (see module
            docstring); ``None`` on original program code.
        remat_for: For a rematerialization (an allocator-inserted
            ``LI``/``FLI`` standing in for a reload), the spilled
            temporary whose value is being recomputed.  Lets the
            dataflow verifier treat the constant as a fresh definition
            of that temporary rather than an unexpected spill opcode.
    """

    op: Op
    defs: list[Reg] = field(default_factory=list)
    uses: list[Reg] = field(default_factory=list)
    imm: int | float | None = None
    targets: list[str] = field(default_factory=list)
    callee: str | None = None
    slot: StackSlot | None = None
    spill_phase: SpillPhase | None = None
    remat_for: Temp | None = None

    @property
    def info(self) -> OpInfo:
        """The opcode's static signature."""
        return OP_INFO[self.op]

    @property
    def is_terminator(self) -> bool:
        """True for instructions that must end a basic block."""
        return self.info.terminator

    @property
    def is_call(self) -> bool:
        """True for ``CALL`` — the only instruction that clobbers registers."""
        return self.op is Op.CALL

    @property
    def is_move(self) -> bool:
        """True for plain register-to-register copies."""
        return self.op in MOVE_OPS

    def spill_kind(self) -> SpillKind | None:
        """Figure 3 category of an allocator-inserted instruction.

        Returns ``None`` for original program instructions.
        """
        if self.spill_phase is None:
            return None
        if self.op is Op.LDS:
            return SpillKind.LOAD
        if self.op is Op.STS:
            return SpillKind.STORE
        if self.op in MOVE_OPS:
            return SpillKind.MOVE
        if self.op in (Op.LI, Op.FLI) and self.remat_for is not None:
            return SpillKind.REMAT
        raise ValueError(f"unexpected spill-tagged opcode {self.op}")

    def regs(self) -> list[Reg]:
        """All register operands (defs then uses)."""
        return [*self.defs, *self.uses]

    def temps(self) -> list[Temp]:
        """All operands that are still temporaries."""
        return [r for r in self.regs() if isinstance(r, Temp)]

    def replace_reg(self, old: Reg, new: Reg) -> int:
        """Replace every occurrence of ``old`` in defs and uses with ``new``.

        Returns the number of operand slots rewritten.
        """
        count = 0
        for operands in (self.defs, self.uses):
            for i, r in enumerate(operands):
                if r == old:
                    operands[i] = new
                    count += 1
        return count

    def copy(self) -> "Instr":
        """A deep-enough copy: fresh operand/target lists, shared atoms."""
        return Instr(
            op=self.op,
            defs=list(self.defs),
            uses=list(self.uses),
            imm=self.imm,
            targets=list(self.targets),
            callee=self.callee,
            slot=self.slot,
            spill_phase=self.spill_phase,
            remat_for=self.remat_for,
        )

    def __str__(self) -> str:
        from repro.ir.printer import print_instr

        return print_instr(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instr<{self}>"


def make(op: Op, *, defs: list[Reg] | None = None, uses: list[Reg] | None = None,
         imm: int | float | None = None, targets: list[str] | None = None,
         callee: str | None = None, slot: StackSlot | None = None,
         spill_phase: SpillPhase | None = None) -> Instr:
    """Construct and shallowly sanity-check an instruction.

    This is the checked constructor used by the builder and the frontend;
    tests that deliberately build malformed instructions use
    :class:`Instr` directly and rely on :func:`repro.ir.validate`.
    """
    instr = Instr(op, defs or [], uses or [], imm, targets or [],
                  callee, slot, spill_phase)
    info = instr.info
    if not info.variadic:
        if len(instr.defs) != len(info.def_classes):
            raise ValueError(f"{op.value}: expected {len(info.def_classes)} defs, "
                             f"got {len(instr.defs)}")
        if len(instr.uses) != len(info.use_classes):
            raise ValueError(f"{op.value}: expected {len(info.use_classes)} uses, "
                             f"got {len(instr.uses)}")
    if info.has_imm and imm is None:
        raise ValueError(f"{op.value}: missing immediate")
    if info.n_targets != len(instr.targets):
        raise ValueError(f"{op.value}: expected {info.n_targets} targets")
    if info.has_callee and callee is None:
        raise ValueError(f"{op.value}: missing callee")
    if info.has_slot and slot is None:
        raise ValueError(f"{op.value}: missing stack slot")
    return instr
