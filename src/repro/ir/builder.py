"""A convenience builder for constructing IR functions.

The builder keeps a *current block* and offers one method per opcode that
allocates result temporaries, so straight-line code reads like assembly:

    fn = Function("f")
    b = FunctionBuilder(fn)
    b.new_block("entry")
    x = b.li(40)
    y = b.li(2)
    b.ret(b.add(x, y))

The frontend's lowering pass (:mod:`repro.lang.lower`) and most tests are
written against this interface.
"""

from __future__ import annotations

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, make
from repro.ir.temp import PhysReg, Reg, StackSlot, Temp
from repro.ir.types import RegClass

G = RegClass.GPR
F = RegClass.FPR


class FunctionBuilder:
    """Incrementally builds the blocks of one :class:`Function`."""

    def __init__(self, fn: Function):
        self.fn = fn
        self.current: BasicBlock | None = None

    # ------------------------------------------------------------------
    # Blocks.
    # ------------------------------------------------------------------
    def new_block(self, label: str | None = None) -> BasicBlock:
        """Start (and switch to) a new block appended in layout order."""
        block = BasicBlock(label or self.fn.new_label())
        self.fn.add_block(block)
        self.current = block
        return block

    def switch_to(self, block: BasicBlock) -> None:
        """Make ``block`` the emission target."""
        self.current = block

    def emit(self, instr: Instr) -> Instr:
        """Append a prebuilt instruction to the current block."""
        if self.current is None:
            raise ValueError("no current block; call new_block() first")
        self.current.append(instr)
        return instr

    def temp(self, regclass: RegClass = G, name: str | None = None) -> Temp:
        """Mint a fresh temporary."""
        return self.fn.new_temp(regclass, name)

    # ------------------------------------------------------------------
    # Shared emission helpers.
    # ------------------------------------------------------------------
    def _unop(self, op: Op, src: Reg, dst: Reg | None, dst_class: RegClass) -> Reg:
        dst = dst if dst is not None else self.temp(dst_class)
        self.emit(make(op, defs=[dst], uses=[src]))
        return dst

    def _binop(self, op: Op, a: Reg, b: Reg, dst: Reg | None,
               dst_class: RegClass) -> Reg:
        dst = dst if dst is not None else self.temp(dst_class)
        self.emit(make(op, defs=[dst], uses=[a, b]))
        return dst

    # ------------------------------------------------------------------
    # Immediates and moves.
    # ------------------------------------------------------------------
    def li(self, value: int, dst: Reg | None = None) -> Reg:
        dst = dst if dst is not None else self.temp(G)
        self.emit(make(Op.LI, defs=[dst], imm=int(value)))
        return dst

    def fli(self, value: float, dst: Reg | None = None) -> Reg:
        dst = dst if dst is not None else self.temp(F)
        self.emit(make(Op.FLI, defs=[dst], imm=float(value)))
        return dst

    def mov(self, src: Reg, dst: Reg | None = None) -> Reg:
        return self._unop(Op.MOV, src, dst, G)

    def fmov(self, src: Reg, dst: Reg | None = None) -> Reg:
        return self._unop(Op.FMOV, src, dst, F)

    # ------------------------------------------------------------------
    # Integer arithmetic, logic, comparisons.
    # ------------------------------------------------------------------
    def add(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.ADD, a, b, dst, G)

    def sub(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.SUB, a, b, dst, G)

    def mul(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.MUL, a, b, dst, G)

    def div(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.DIV, a, b, dst, G)

    def rem(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.REM, a, b, dst, G)

    def and_(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.AND, a, b, dst, G)

    def or_(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.OR, a, b, dst, G)

    def xor(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.XOR, a, b, dst, G)

    def shl(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.SHL, a, b, dst, G)

    def shr(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.SHR, a, b, dst, G)

    def slt(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.SLT, a, b, dst, G)

    def sle(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.SLE, a, b, dst, G)

    def seq(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.SEQ, a, b, dst, G)

    def sne(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.SNE, a, b, dst, G)

    def addi(self, src: Reg, imm: int, dst: Reg | None = None) -> Reg:
        dst = dst if dst is not None else self.temp(G)
        self.emit(make(Op.ADDI, defs=[dst], uses=[src], imm=int(imm)))
        return dst

    def neg(self, src: Reg, dst: Reg | None = None) -> Reg:
        return self._unop(Op.NEG, src, dst, G)

    def not_(self, src: Reg, dst: Reg | None = None) -> Reg:
        return self._unop(Op.NOT, src, dst, G)

    # ------------------------------------------------------------------
    # Floating-point arithmetic and comparisons.
    # ------------------------------------------------------------------
    def fadd(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.FADD, a, b, dst, F)

    def fsub(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.FSUB, a, b, dst, F)

    def fmul(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.FMUL, a, b, dst, F)

    def fdiv(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.FDIV, a, b, dst, F)

    def fneg(self, src: Reg, dst: Reg | None = None) -> Reg:
        return self._unop(Op.FNEG, src, dst, F)

    def fslt(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.FSLT, a, b, dst, G)

    def fsle(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.FSLE, a, b, dst, G)

    def fseq(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.FSEQ, a, b, dst, G)

    def fsne(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.FSNE, a, b, dst, G)

    def itof(self, src: Reg, dst: Reg | None = None) -> Reg:
        return self._unop(Op.ITOF, src, dst, F)

    def ftoi(self, src: Reg, dst: Reg | None = None) -> Reg:
        return self._unop(Op.FTOI, src, dst, G)

    # ------------------------------------------------------------------
    # Memory.
    # ------------------------------------------------------------------
    def ld(self, base: Reg, offset: int = 0, dst: Reg | None = None) -> Reg:
        dst = dst if dst is not None else self.temp(G)
        self.emit(make(Op.LD, defs=[dst], uses=[base], imm=int(offset)))
        return dst

    def st(self, src: Reg, base: Reg, offset: int = 0) -> None:
        self.emit(make(Op.ST, uses=[src, base], imm=int(offset)))

    def fld(self, base: Reg, offset: int = 0, dst: Reg | None = None) -> Reg:
        dst = dst if dst is not None else self.temp(F)
        self.emit(make(Op.FLD, defs=[dst], uses=[base], imm=int(offset)))
        return dst

    def fst(self, src: Reg, base: Reg, offset: int = 0) -> None:
        self.emit(make(Op.FST, uses=[src, base], imm=int(offset)))

    def lds(self, slot: StackSlot, dst: Reg) -> Reg:
        self.emit(make(Op.LDS, defs=[dst], slot=slot))
        return dst

    def sts(self, src: Reg, slot: StackSlot) -> None:
        self.emit(make(Op.STS, uses=[src], slot=slot))

    # ------------------------------------------------------------------
    # Control flow and I/O.
    # ------------------------------------------------------------------
    def jmp(self, target: str) -> None:
        self.emit(make(Op.JMP, targets=[target]))

    def br(self, cond: Reg, then_label: str, else_label: str) -> None:
        self.emit(make(Op.BR, uses=[cond], targets=[then_label, else_label]))

    def ret(self, value: Reg | None = None) -> None:
        uses = [value] if value is not None else []
        self.emit(Instr(Op.RET, uses=uses))

    def call(self, callee: str, arg_regs: list[PhysReg] | None = None,
             ret_reg: PhysReg | None = None) -> None:
        """Emit a call; ``arg_regs``/``ret_reg`` are convention registers.

        The builder does not marshal arguments — lowering emits the
        parameter-register moves around the call explicitly, exactly as the
        paper's Alpha code generator did (Section 2.5).
        """
        defs: list[Reg] = [ret_reg] if ret_reg is not None else []
        self.emit(Instr(Op.CALL, defs=defs, uses=list(arg_regs or []),
                        callee=callee))

    def print_(self, value: Reg) -> None:
        self.emit(make(Op.PRINT, uses=[value]))

    def nop(self) -> None:
        self.emit(make(Op.NOP))
