"""Registers of the IR: temporaries, physical registers, and stack slots.

The paper calls every allocation candidate a *temporary* ("we shall refer
to all allocation candidates generically as temporaries", Section 2.1);
program variables and compiler-generated values are treated uniformly.
Physical registers appear in pre-allocation code only where the calling
convention pins a value (parameter/return registers); after allocation,
*only* physical registers and stack slots remain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.types import RegClass


@dataclass(frozen=True, order=True)
class Temp:
    """An allocation candidate: a virtual register of one register class.

    Temporaries are interned per :class:`~repro.ir.function.Function` (the
    function's ``new_temp`` factory hands out unique ids), and compare by
    ``(regclass, id)`` so they sort deterministically in worklists.

    Attributes:
        regclass: The register file this temporary competes for.
        id: Unique (per function) non-negative integer.
        name: Optional source-level name, used only for printing.
    """

    regclass: RegClass
    id: int
    name: str | None = field(default=None, compare=False)

    def __str__(self) -> str:
        base = f"{self.regclass.prefix}{self.id}"
        if self.name:
            return f"{base}.{self.name}"
        return base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Temp({self})"


@dataclass(frozen=True, order=True)
class PhysReg:
    """A machine register.

    Attributes:
        regclass: The register file the register belongs to.
        index: Hardware index within the file (``r3`` has index 3).
    """

    regclass: RegClass
    index: int

    def __str__(self) -> str:
        prefix = "r" if self.regclass is RegClass.GPR else "f"
        return f"{prefix}{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhysReg({self})"


@dataclass(frozen=True, order=True)
class StackSlot:
    """An abstract stack-frame slot used for spills and callee-saves.

    Slots are allocated by the register allocators (one *memory home* per
    spilled temporary, plus one per saved callee-saved register) and become
    frame offsets in the simulator.  They are class-tagged so the simulator
    can type-check stores against loads.
    """

    index: int
    regclass: RegClass

    def __str__(self) -> str:
        return f"[s{self.index}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StackSlot({self.index}, {self.regclass.name})"


#: Union of the two kinds of register operand an instruction slot may hold.
Reg = Temp | PhysReg


def is_temp(reg: Reg) -> bool:
    """True when ``reg`` is an (unallocated) temporary."""
    return isinstance(reg, Temp)


def is_phys(reg: Reg) -> bool:
    """True when ``reg`` is a physical machine register."""
    return isinstance(reg, PhysReg)
