"""Structural validation of IR.

``validate_function`` checks the invariants every pass relies on: blocks
are non-empty and end in exactly one terminator, branch targets resolve,
operand counts and register classes match each opcode's signature, and
stack-slot classes agree with the operand moved through them.  With
``physical=True`` it additionally enforces the post-allocation contract:
no temporaries remain anywhere in the code.

Passes call this between phases in tests; it is cheap (one sweep) and has
caught most allocator bugs at the point of introduction rather than at
simulation time.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instr import Instr, Op
from repro.ir.module import Module
from repro.ir.temp import PhysReg, Temp


class IRValidationError(ValueError):
    """Raised when an IR structural invariant does not hold."""


def _fail(fn: Function, where: str, message: str) -> None:
    raise IRValidationError(f"{fn.name}/{where}: {message}")


def _check_instr(fn: Function, where: str, instr: Instr, labels: set[str]) -> None:
    info = instr.info
    if info.variadic:
        if instr.op is Op.RET and len(instr.uses) > 1:
            _fail(fn, where, f"ret with {len(instr.uses)} operands")
        if instr.op is Op.CALL:
            for reg in instr.regs():
                if not isinstance(reg, (Temp, PhysReg)):
                    _fail(fn, where, f"call operand {reg!r} is not a register")
    else:
        if len(instr.defs) != len(info.def_classes):
            _fail(fn, where, f"{instr.op.value}: bad def count {len(instr.defs)}")
        if len(instr.uses) != len(info.use_classes):
            _fail(fn, where, f"{instr.op.value}: bad use count {len(instr.uses)}")
        for reg, cls in zip(instr.defs, info.def_classes):
            if cls is not None and reg.regclass is not cls:
                _fail(fn, where, f"{instr.op.value}: def {reg} is not {cls.name}")
        for reg, cls in zip(instr.uses, info.use_classes):
            if cls is not None and reg.regclass is not cls:
                _fail(fn, where, f"{instr.op.value}: use {reg} is not {cls.name}")
    if info.has_imm:
        if instr.imm is None:
            _fail(fn, where, f"{instr.op.value}: missing immediate")
        want = float if info.imm_float else int
        if not isinstance(instr.imm, want):
            _fail(fn, where, f"{instr.op.value}: immediate {instr.imm!r} is not {want.__name__}")
    if info.has_slot:
        if instr.slot is None:
            _fail(fn, where, f"{instr.op.value}: missing stack slot")
        moved = instr.defs[0] if instr.defs else instr.uses[0]
        if instr.slot.regclass is not moved.regclass:
            _fail(fn, where,
                  f"{instr.op.value}: slot class {instr.slot.regclass.name} "
                  f"vs operand class {moved.regclass.name}")
    if info.has_callee and not instr.callee:
        _fail(fn, where, "call without callee")
    for target in instr.targets:
        if target not in labels:
            _fail(fn, where, f"branch to unknown label {target!r}")


def validate_function(fn: Function, *, physical: bool = False) -> None:
    """Check structural invariants; raise :class:`IRValidationError` if broken.

    Args:
        fn: The function to check.
        physical: When true, also require that no temporaries remain
            (the post-register-allocation contract).
    """
    if not fn.blocks:
        _fail(fn, "-", "function has no blocks")
    labels: set[str] = set()
    for b in fn.blocks:
        if b.label in labels:
            _fail(fn, b.label, "duplicate block label")
        labels.add(b.label)
    for b in fn.blocks:
        if not b.instrs:
            _fail(fn, b.label, "empty block")
        for i, instr in enumerate(b.instrs):
            where = f"{b.label}[{i}]"
            last = i == len(b.instrs) - 1
            if instr.is_terminator and not last:
                _fail(fn, where, "terminator in the middle of a block")
            if last and not instr.is_terminator:
                _fail(fn, where, "block does not end in a terminator")
            _check_instr(fn, where, instr, labels)
            if physical:
                for reg in instr.temps():
                    _fail(fn, where, f"temporary {reg} survived allocation")
    for p in fn.params:
        if not isinstance(p, Temp):
            _fail(fn, "-", f"parameter {p!r} is not a temporary")


def validate_module(module: Module, *, physical: bool = False) -> None:
    """Validate every function plus cross-function call targets."""
    for fn in module.functions.values():
        validate_function(fn, physical=physical)
        for instr in fn.instructions():
            if instr.op is Op.CALL and instr.callee not in module.functions:
                raise IRValidationError(
                    f"{fn.name}: call to unknown function {instr.callee!r}")
