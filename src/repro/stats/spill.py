"""Spill-code accounting in the paper's categories.

Figure 3 splits allocator-inserted instructions six ways:
``{evict, resolve} x {loads, stores, moves}`` — eviction code inserted
during the linear scan (or by coloring's spill phase, which has no
resolution category), and resolution code inserted while reconciling CFG
edges.  Callee-saved prologue traffic is excluded ("load, store, and move
instructions inserted for allocation candidates only", Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instr import SpillKind, SpillPhase
from repro.sim.machine import SimOutcome

#: Figure 3's bar segments, in its legend order.
FIGURE3_CATEGORIES: list[tuple[SpillPhase, SpillKind]] = [
    (SpillPhase.EVICT, SpillKind.LOAD),
    (SpillPhase.EVICT, SpillKind.STORE),
    (SpillPhase.EVICT, SpillKind.MOVE),
    (SpillPhase.RESOLVE, SpillKind.LOAD),
    (SpillPhase.RESOLVE, SpillKind.STORE),
    (SpillPhase.RESOLVE, SpillKind.MOVE),
]

#: Rematerialization re-issues.  Not part of the paper's six-way legend
#: (the 1998 allocators never rematerialize) — tracked additively so
#: Figure 3 renders unchanged with remat off, and the ablation can show
#: the load -> remat shift with it on.
REMAT_CATEGORIES: list[tuple[SpillPhase, SpillKind]] = [
    (SpillPhase.EVICT, SpillKind.REMAT),
    (SpillPhase.RESOLVE, SpillKind.REMAT),
]


@dataclass(frozen=True)
class SpillBreakdown:
    """Dynamic spill-instruction counts for one run, by category."""

    counts: tuple[int, ...]  # parallel to FIGURE3_CATEGORIES
    total_dynamic: int
    remat_counts: tuple[int, ...] = (0, 0)  # parallel to REMAT_CATEGORIES

    @property
    def remat(self) -> int:
        """Dynamic rematerializations (all phases)."""
        return sum(self.remat_counts)

    @property
    def total_spill(self) -> int:
        """All candidate spill instructions (evict + resolve + remat)."""
        return sum(self.counts) + self.remat

    def fraction(self) -> float:
        """Table 2's percentage (as a fraction of all dynamic instrs)."""
        if not self.total_dynamic:
            return 0.0
        return self.total_spill / self.total_dynamic

    def category(self, phase: SpillPhase, kind: SpillKind) -> int:
        """One category's dynamic count."""
        if kind is SpillKind.REMAT:
            return self.remat_counts[REMAT_CATEGORIES.index((phase, kind))]
        return self.counts[FIGURE3_CATEGORIES.index((phase, kind))]

    def normalized_to(self, baseline: "SpillBreakdown") -> list[float] | None:
        """Figure 3's normalization: each category divided by the
        *baseline allocator's* total spill count.

        Returns ``None`` when the baseline inserted no spill code at all:
        there is nothing to normalize against, and the old silent
        ``or 1`` fallback let ablation tables print ratios that looked
        meaningful but were raw counts in disguise.  Callers must render
        the zero-baseline case explicitly (e.g. as ``n/a``).
        """
        base = baseline.total_spill
        if not base:
            return None
        return [c / base for c in self.counts]


def spill_breakdown(outcome: SimOutcome) -> SpillBreakdown:
    """Extract the Figure 3 categories from a simulation outcome."""
    counts = tuple(outcome.spill_counts.get((phase, kind), 0)
                   for phase, kind in FIGURE3_CATEGORIES)
    remat = tuple(outcome.spill_counts.get((phase, kind), 0)
                  for phase, kind in REMAT_CATEGORIES)
    return SpillBreakdown(counts, outcome.dynamic_instructions, remat)
