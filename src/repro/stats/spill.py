"""Spill-code accounting in the paper's categories.

Figure 3 splits allocator-inserted instructions six ways:
``{evict, resolve} x {loads, stores, moves}`` — eviction code inserted
during the linear scan (or by coloring's spill phase, which has no
resolution category), and resolution code inserted while reconciling CFG
edges.  Callee-saved prologue traffic is excluded ("load, store, and move
instructions inserted for allocation candidates only", Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instr import SpillKind, SpillPhase
from repro.sim.machine import SimOutcome

#: Figure 3's bar segments, in its legend order.
FIGURE3_CATEGORIES: list[tuple[SpillPhase, SpillKind]] = [
    (SpillPhase.EVICT, SpillKind.LOAD),
    (SpillPhase.EVICT, SpillKind.STORE),
    (SpillPhase.EVICT, SpillKind.MOVE),
    (SpillPhase.RESOLVE, SpillKind.LOAD),
    (SpillPhase.RESOLVE, SpillKind.STORE),
    (SpillPhase.RESOLVE, SpillKind.MOVE),
]


@dataclass(frozen=True)
class SpillBreakdown:
    """Dynamic spill-instruction counts for one run, by category."""

    counts: tuple[int, ...]  # parallel to FIGURE3_CATEGORIES
    total_dynamic: int

    @property
    def total_spill(self) -> int:
        """All candidate spill instructions (evict + resolve)."""
        return sum(self.counts)

    def fraction(self) -> float:
        """Table 2's percentage (as a fraction of all dynamic instrs)."""
        if not self.total_dynamic:
            return 0.0
        return self.total_spill / self.total_dynamic

    def category(self, phase: SpillPhase, kind: SpillKind) -> int:
        """One category's dynamic count."""
        return self.counts[FIGURE3_CATEGORIES.index((phase, kind))]

    def normalized_to(self, baseline: "SpillBreakdown") -> list[float]:
        """Figure 3's normalization: each category divided by the
        *baseline allocator's* total spill count."""
        base = baseline.total_spill or 1
        return [c / base for c in self.counts]


def spill_breakdown(outcome: SimOutcome) -> SpillBreakdown:
    """Extract the Figure 3 categories from a simulation outcome."""
    counts = tuple(outcome.spill_counts.get((phase, kind), 0)
                   for phase, kind in FIGURE3_CATEGORIES)
    return SpillBreakdown(counts, outcome.dynamic_instructions)
