"""Plain-text table rendering for the benchmark harness.

The benchmark suite prints each reproduced table in roughly the paper's
layout; this keeps the formatting in one place.
"""

from __future__ import annotations


def _is_numeric_text(text: str) -> bool:
    """Whether a rendered cell reads as a number: int/float literals,
    optionally with thousands separators or a trailing ``%``/unit suffix
    like ``ms``/``s`` (the harness prints ``12.3%`` and ``4.5 ms``)."""
    stripped = text.strip().replace(",", "")
    for suffix in ("%", "ms", "s", "x"):
        if stripped.endswith(suffix):
            stripped = stripped[:-len(suffix)].strip()
            break
    if not stripped:
        return False
    try:
        float(stripped)
        return True
    except ValueError:
        return False


def format_table(headers: list[str], rows: list[list[object]],
                 title: str | None = None) -> str:
    """Render an aligned plain-text table.

    Numbers are right-aligned; floats are shown with sensible precision
    (3 decimals for ratios < 10, otherwise 1).  A column counts as
    numeric when *every* non-empty cell in it is numeric (int/float, or
    text that parses as a number, ``%``/unit suffixes allowed) — not
    when cells merely start with a digit, so names like ``2nd-chance``
    left-align while mixed empty/number columns still right-align.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}" if abs(cell) < 10 else f"{cell:,.1f}"
        if isinstance(cell, int):
            return f"{cell:,}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
              else len(headers[i]) for i in range(len(headers))]

    def column_numeric(i: int) -> bool:
        non_empty = [r[i] for r in rendered if r[i].strip()]
        return bool(non_empty) and all(_is_numeric_text(c) for c in non_empty)

    numeric_cols = [column_numeric(i) for i in range(len(headers))]

    def line(cells: list[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric_cols[i]
                         else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in rendered)
    return "\n".join(out)
