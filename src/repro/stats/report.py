"""Plain-text table rendering for the benchmark harness.

The benchmark suite prints each reproduced table in roughly the paper's
layout; this keeps the formatting in one place.
"""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list[object]],
                 title: str | None = None) -> str:
    """Render an aligned plain-text table.

    Numbers are right-aligned; floats are shown with sensible precision
    (3 decimals for ratios < 10, otherwise 1).
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}" if abs(cell) < 10 else f"{cell:,.1f}"
        if isinstance(cell, int):
            return f"{cell:,}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
              else len(headers[i]) for i in range(len(headers))]

    def line(cells: list[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            numeric = rendered and all(
                r[i] and (r[i][0].isdigit() or r[i][0] in "-+.")
                for r in rendered)
            parts.append(cell.rjust(widths[i]) if numeric else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in rendered)
    return "\n".join(out)
