"""Evaluation statistics: spill-code accounting and table rendering."""

from repro.stats.spill import FIGURE3_CATEGORIES, SpillBreakdown, spill_breakdown
from repro.stats.report import format_table

__all__ = ["FIGURE3_CATEGORIES", "SpillBreakdown", "format_table",
           "spill_breakdown"]
