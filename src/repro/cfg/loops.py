"""Natural-loop detection and per-block loop depth.

Loop depth is the weight both allocators use: the binpacking spill
heuristic weights next-reference distance by loop depth (Section 2.3),
and the coloring allocator weights occurrence counts the same way
(Section 3: "loop depth is used in the same way to weight occurrence
counts in both allocators").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.cfg import CFG
from repro.cfg.dominators import DominatorTree


@dataclass(frozen=True)
class NaturalLoop:
    """A natural loop: its header and full body (including the header)."""

    header: str
    body: frozenset[str]

    def __contains__(self, label: str) -> bool:
        return label in self.body


@dataclass(eq=False)
class LoopInfo:
    """All natural loops of a CFG plus the derived per-block nesting depth.

    Blocks outside every loop have depth 0.  Irreducible cycles (possible
    in randomly generated IR, never in frontend output) contribute no
    natural loop and therefore depth 0 — a conservative weight.
    """

    loops: list[NaturalLoop]
    depth: dict[str, int]

    @classmethod
    def build(cls, cfg: CFG) -> "LoopInfo":
        """Find back edges (edge ``t -> h`` where ``h`` dominates ``t``)
        and flood each loop body backward from the latch."""
        dom = DominatorTree.build(cfg)
        reachable = cfg.reachable()
        bodies: dict[str, set[str]] = {}
        for tail, head in cfg.edges():
            if tail not in reachable or head not in reachable:
                continue
            if not dom.dominates(head, tail):
                continue
            body = bodies.setdefault(head, {head})
            stack = [tail]
            while stack:
                node = stack.pop()
                if node in body:
                    continue
                body.add(node)
                stack.extend(cfg.preds[node])
            bodies[head] = body

        loops = [NaturalLoop(header, frozenset(body))
                 for header, body in sorted(bodies.items())]
        depth = {b.label: 0 for b in cfg.fn.blocks}
        for loop in loops:
            for label in loop.body:
                depth[label] += 1
        return cls(loops, depth)

    def depth_of(self, label: str) -> int:
        """Loop-nesting depth of a block (0 outside all loops)."""
        return self.depth.get(label, 0)
