"""The control-flow graph over a function's basic blocks.

The CFG is a thin, label-keyed adjacency view derived from block
terminators.  It deliberately does not copy instructions: passes mutate
the function and rebuild the CFG, which is a single linear sweep.

``split_edge`` implements the critical-edge splitting rule the paper's
resolution phase relies on (Section 2.4, footnote 1): resolution code goes
at the top of the successor if the edge is its only in-edge, at the bottom
of the predecessor if the edge is its only out-edge, and onto a fresh
block spliced into the edge otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instr import Instr, Op


@dataclass(eq=False)
class CFG:
    """Successor/predecessor maps over a function's blocks.

    Parallel edges (a conditional branch whose arms share a target) are
    collapsed: edge identity is the ``(pred_label, succ_label)`` pair.
    """

    fn: Function
    succs: dict[str, list[str]] = field(default_factory=dict)
    preds: dict[str, list[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, fn: Function) -> "CFG":
        """Construct the CFG for ``fn`` from its block terminators."""
        cfg = cls(fn)
        for block in fn.blocks:
            cfg.succs[block.label] = []
            cfg.preds.setdefault(block.label, [])
        for block in fn.blocks:
            seen: set[str] = set()
            for target in block.successors():
                if target in seen:
                    continue
                seen.add(target)
                cfg.succs[block.label].append(target)
                cfg.preds.setdefault(target, []).append(block.label)
        return cfg

    @property
    def entry(self) -> str:
        """Label of the entry block."""
        return self.fn.entry.label

    def edges(self) -> list[tuple[str, str]]:
        """All CFG edges, in layout order of the predecessor."""
        return [(p, s) for p in (b.label for b in self.fn.blocks)
                for s in self.succs[p]]

    def out_degree(self, label: str) -> int:
        """Number of distinct successors."""
        return len(self.succs[label])

    def in_degree(self, label: str) -> int:
        """Number of distinct predecessors."""
        return len(self.preds[label])

    def is_critical(self, pred: str, succ: str) -> bool:
        """True when the edge has a multi-successor tail *and* multi-
        predecessor head, so code placed on it must get its own block."""
        return self.out_degree(pred) > 1 and self.in_degree(succ) > 1

    def reachable(self) -> set[str]:
        """Labels reachable from the entry block."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for s in self.succs[stack.pop()]:
                if s not in seen:
                    seen.add(s)
                    stack.append(s)
        return seen

    def postorder(self) -> list[str]:
        """Depth-first postorder over reachable blocks (entry last)."""
        seen: set[str] = set()
        order: list[str] = []

        # Iterative DFS with an explicit successor cursor per frame so the
        # postorder matches the recursive definition.
        stack: list[tuple[str, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            label, cursor = stack[-1]
            succs = self.succs[label]
            if cursor < len(succs):
                stack[-1] = (label, cursor + 1)
                nxt = succs[cursor]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(label)
        return order

    def reverse_postorder(self) -> list[str]:
        """Reverse postorder (a topological order on reducible forward edges)."""
        return list(reversed(self.postorder()))


def split_edge(fn: Function, cfg: CFG, pred: str, succ: str) -> BasicBlock:
    """Split the CFG edge ``pred -> succ`` with a fresh empty-ish block.

    The new block holds only a jump to ``succ`` and is appended at the end
    of layout order (it is reached only through its explicit jump, so its
    layout position carries no linear-scan meaning — allocation has already
    happened when resolution splits edges).  The caller is responsible for
    rebuilding any CFG it keeps; this function updates ``cfg`` in place.
    """
    pred_block = fn.block(pred)
    new_block = BasicBlock(fn.new_label(hint=f"split.{pred}.{succ}."))
    new_block.append(Instr(Op.JMP, targets=[succ]))
    fn.add_block(new_block)
    term = pred_block.terminator
    for i, target in enumerate(term.targets):
        if target == succ:
            term.targets[i] = new_block.label
    # Update the adjacency maps in place.
    cfg.succs[pred] = [new_block.label if s == succ else s for s in cfg.succs[pred]]
    cfg.preds[succ] = [new_block.label if p == pred else p for p in cfg.preds[succ]]
    cfg.succs[new_block.label] = [succ]
    cfg.preds[new_block.label] = [pred]
    return new_block
