"""Linear block orderings.

The linear-scan family is defined over "the static linear order of the
code" (Section 1) — in this repo, the order of ``Function.blocks``.  The
frontend emits blocks in source order, which is the natural layout a
compiler like SUIF would produce.  ``reorder_reverse_postorder`` offers an
alternative ordering as an ablation knob: linear-scan quality is sensitive
to the block order, and the benchmark suite measures how much.
"""

from __future__ import annotations

from repro.cfg.cfg import CFG
from repro.ir.block import BasicBlock
from repro.ir.function import Function


def layout_order(fn: Function) -> list[BasicBlock]:
    """The function's current linear order (identity helper, for clarity)."""
    return list(fn.blocks)


def reorder_reverse_postorder(fn: Function) -> None:
    """Reorder ``fn.blocks`` into reverse postorder, unreachables last.

    Keeps the entry block first by construction.  Mutates the function;
    analyses computed before the reorder are invalidated.
    """
    cfg = CFG.build(fn)
    rpo = cfg.reverse_postorder()
    position = {label: i for i, label in enumerate(rpo)}
    unreachable = [b for b in fn.blocks if b.label not in position]
    ordered = sorted((b for b in fn.blocks if b.label in position),
                     key=lambda b: position[b.label])
    fn.blocks[:] = ordered + unreachable
