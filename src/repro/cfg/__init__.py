"""Control-flow graph construction and analyses.

These are the "shared libraries" of the paper's fair-comparison setup
(Section 3): CFG construction, loop-depth analysis, and (in
:mod:`repro.dataflow`) liveness are computed once, before register
allocation, and both allocators consume the same results.
"""

from repro.cfg.cfg import CFG, split_edge
from repro.cfg.dominators import DominatorTree
from repro.cfg.loops import LoopInfo, NaturalLoop
from repro.cfg.order import layout_order, reorder_reverse_postorder

__all__ = [
    "CFG",
    "DominatorTree",
    "LoopInfo",
    "NaturalLoop",
    "layout_order",
    "reorder_reverse_postorder",
    "split_edge",
]
