"""Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

Used only to find loops (back edges target dominators); the allocators
themselves never consult dominance, matching the paper's pipeline where
loop-depth analysis happens before allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.cfg import CFG


@dataclass(eq=False)
class DominatorTree:
    """Immediate-dominator map over the reachable blocks of a CFG."""

    idom: dict[str, str]
    entry: str
    _rpo_index: dict[str, int]

    @classmethod
    def build(cls, cfg: CFG) -> "DominatorTree":
        """Compute immediate dominators ("A Simple, Fast Dominance
        Algorithm", Cooper, Harvey & Kennedy)."""
        rpo = cfg.reverse_postorder()
        index = {label: i for i, label in enumerate(rpo)}
        entry = cfg.entry
        idom: dict[str, str] = {entry: entry}

        def intersect(a: str, b: str) -> str:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for label in rpo:
                if label == entry:
                    continue
                preds = [p for p in cfg.preds[label] if p in idom]
                if not preds:
                    continue
                new_idom = preds[0]
                for p in preds[1:]:
                    new_idom = intersect(new_idom, p)
                if idom.get(label) != new_idom:
                    idom[label] = new_idom
                    changed = True
        return cls(idom, entry, index)

    def dominates(self, a: str, b: str) -> bool:
        """True when ``a`` dominates ``b`` (reflexively)."""
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom.get(node)
            if parent is None or parent == node:
                return node == a
            node = parent

    def dominators_of(self, label: str) -> list[str]:
        """The dominators of ``label``, from itself up to the entry."""
        chain = [label]
        node = label
        while self.idom.get(node, node) != node:
            node = self.idom[node]
            chain.append(node)
        return chain
