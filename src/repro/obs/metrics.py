"""A flat counters/metrics registry shared across the pipeline.

Every layer publishes into one :class:`MetricsRegistry` under dotted,
namespaced keys — ``binpack.evict.store``, ``coloring.rounds``,
``pipeline.dce.removed``, ``sim.dynamic.instructions`` — so one object
answers "what did this compilation do", across allocator, pipeline
passes, and simulator, without each layer growing bespoke stat fields.

``snapshot()`` / ``diff()`` support before/after attribution: snapshot,
run a phase, and diff to see exactly which counters that phase moved.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.stats.report import format_table

Number = int | float


class MetricsRegistry:
    """Insertion-ordered named counters (ints or floats)."""

    def __init__(self) -> None:
        self._values: dict[str, Number] = {}

    # ------------------------------------------------------------------
    # Publishing.
    # ------------------------------------------------------------------
    def bump(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        self._values[name] = self._values.get(name, 0) + value

    @contextmanager
    def timed(self, name: str):
        """Accumulate the wall-clock seconds of the ``with`` body into
        counter ``name`` (and bump ``name + ".calls"``).  The lightweight
        sibling of :class:`~repro.obs.profile.PhaseProfiler` for code
        that wants latency *totals* in the same registry as its other
        counters — the serving layer's per-request phases use this."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.bump(name, time.perf_counter() - t0)
            self.bump(name + ".calls")

    def set(self, name: str, value: Number) -> None:
        """Overwrite gauge ``name`` with ``value``."""
        self._values[name] = value

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's counters into this one (summing)."""
        for name, value in other._values.items():
            self.bump(name, value)

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def get(self, name: str, default: Number = 0) -> Number:
        return self._values.get(name, default)

    def items(self) -> list[tuple[str, Number]]:
        return list(self._values.items())

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def snapshot(self) -> dict[str, Number]:
        """An immutable-by-copy view of every counter right now."""
        return dict(self._values)

    def restore(self, snapshot: dict[str, Number]) -> "MetricsRegistry":
        """Replace every counter with ``snapshot`` (the inverse of
        :meth:`snapshot`).  This is how batch workers ship their counters
        across process boundaries: a worker returns plain
        ``metrics.snapshot()`` data in its payload and the parent
        rebuilds a registry with ``MetricsRegistry().restore(...)`` —
        no global registry, no leaks between cells.  Returns ``self``
        so the rebuild is a one-liner."""
        self._values = dict(snapshot)
        return self

    def diff(self, before: dict[str, Number]) -> dict[str, Number]:
        """Counters that moved since ``before`` (a :meth:`snapshot`),
        mapped to their delta.  Unchanged counters are omitted."""
        out: dict[str, Number] = {}
        for name, value in self._values.items():
            delta = value - before.get(name, 0)
            if delta:
                out[name] = delta
        return out

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def render(self, title: str | None = None, prefix: str = "") -> str:
        """A two-column table of every counter, optionally filtered to
        names starting with ``prefix``."""
        rows = [[name, value] for name, value in self._values.items()
                if name.startswith(prefix)]
        return format_table(["metric", "value"], rows, title=title)
