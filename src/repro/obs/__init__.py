"""Observability for the allocation pipeline: tracing, profiling, metrics.

Three independent layers, all cheap enough to leave compiled in:

* :mod:`repro.obs.trace` — typed per-decision allocation events
  (``assign``, ``evict``, ``second_chance_reload`` ...) with pluggable
  sinks.  The default :data:`~repro.obs.trace.NULL_TRACER` is disabled
  and adds one attribute read per instrumented site.
* :mod:`repro.obs.profile` — nestable wall-clock phase timers
  (``perf_counter_ns``) covering every pipeline phase; the allocator
  core's ``alloc_seconds`` is measured through this profiler.
* :mod:`repro.obs.metrics` — a flat counters registry every allocator,
  the pipeline, and the simulator publish into, with ``snapshot()`` /
  ``diff()`` for before/after comparisons.

See ``docs/OBSERVABILITY.md`` for the event taxonomy and examples.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler
from repro.obs.trace import (
    NULL_TRACER,
    EventKind,
    JsonlSink,
    RingBufferSink,
    TextSink,
    TraceEvent,
    Tracer,
    read_jsonl_trace,
)

__all__ = [
    "EventKind",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "PhaseProfiler",
    "RingBufferSink",
    "TextSink",
    "TraceEvent",
    "Tracer",
    "read_jsonl_trace",
]
