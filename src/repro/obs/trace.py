"""The event-tracing core: typed allocation events and pluggable sinks.

Every consequential allocator decision emits one :class:`TraceEvent`
naming the function, block, linear point, temporary, and register it
concerns.  The taxonomy (:class:`EventKind`) follows the paper's own
vocabulary — second chances, postponed/elided spill stores, lifetime-hole
packing, and edge resolution — so a trace reads as a narration of
Section 2 applied to one compilation.

Tracing is off by default: the shared :data:`NULL_TRACER` has
``enabled = False`` and instrumented sites guard on that flag, so a
disabled build pays one attribute read per site.  An enabled
:class:`Tracer` fans every event out to its sinks:

* :class:`RingBufferSink` — the last *n* events, in memory;
* :class:`TextSink` — one human-readable line per event;
* :class:`JsonlSink` — one JSON object per line, the machine-readable
  interchange format (:func:`read_jsonl_trace` parses it back).
"""

from __future__ import annotations

import enum
import json
from collections import Counter, deque
from dataclasses import dataclass
from typing import IO, Iterable, Iterator


class EventKind(enum.Enum):
    """The allocation-event taxonomy (see docs/OBSERVABILITY.md)."""

    #: A temporary was given a register (any allocator).
    ASSIGN = "assign"
    #: A live temporary lost its register (scan eviction or coloring spill).
    EVICT = "evict"
    #: A spilled temporary was reloaded into a (possibly different)
    #: register at a later use — the paper's "second chance".
    SECOND_CHANCE_RELOAD = "second_chance_reload"
    #: A defined value's store back to its memory home was postponed
    #: until eviction (Section 2.3's lazy spill store).
    SPILL_STORE_POSTPONED = "spill_store_postponed"
    #: A postponed spill store was actually emitted.
    SPILL_STORE_EMITTED = "spill_store_emitted"
    #: An eviction store was elided because register and memory were
    #: known consistent (``ARE_CONSISTENT``, Section 2.3).
    STORE_ELIDED_CONSISTENT = "store_elided_consistent"
    #: A temporary was packed into another temporary's lifetime hole
    #: (Figure 1's ``T3`` inside ``T1``).
    HOLE_REUSE = "hole_reuse"
    #: Resolution repaired a location mismatch on a CFG edge
    #: (Section 2.4); ``detail`` holds ``store``/``move``/``load``.
    RESOLUTION_EDGE_FIX = "resolution_edge_fix"
    #: A move's destination was placed in its source's register so the
    #: peephole can delete the move (Section 2.5).
    MOVE_ELIMINATED = "move_eliminated"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventKind.{self.name}"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One allocation decision.

    Attributes:
        kind: What happened.
        fn: Function being allocated.
        block: Basic-block label (``None`` for whole-function events).
        point: Linear program point (``None`` when not point-specific);
            an *edge* event stores the edge as ``block -> detail_block``
            inside ``block`` instead.
        temp: The temporary concerned, as printed (e.g. ``"t3"``).
        reg: The register concerned, as printed (e.g. ``"r7"``).
        detail: Free-form qualifier (e.g. ``"store"`` / ``"move"`` /
            ``"load"`` on resolution fixes, ``"dead"`` on free evictions).
    """

    kind: EventKind
    fn: str
    block: str | None = None
    point: int | None = None
    temp: str | None = None
    reg: str | None = None
    detail: str | None = None

    def to_json(self) -> dict:
        """The JSONL wire form (stable field order, nulls included)."""
        return {
            "kind": self.kind.value,
            "fn": self.fn,
            "block": self.block,
            "point": self.point,
            "temp": self.temp,
            "reg": self.reg,
            "detail": self.detail,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "TraceEvent":
        """Inverse of :meth:`to_json` (raises on unknown kinds)."""
        return cls(kind=EventKind(obj["kind"]), fn=obj["fn"],
                   block=obj.get("block"), point=obj.get("point"),
                   temp=obj.get("temp"), reg=obj.get("reg"),
                   detail=obj.get("detail"))

    def format(self) -> str:
        """One human-readable line (the :class:`TextSink` rendering)."""
        where = self.fn
        if self.block is not None:
            where += f"/{self.block}"
        if self.point is not None:
            where += f"@{self.point}"
        parts = [f"{where:30s} {self.kind.value}"]
        if self.temp is not None:
            parts.append(self.temp)
        if self.reg is not None:
            parts.append(f"-> {self.reg}")
        if self.detail is not None:
            parts.append(f"[{self.detail}]")
        return " ".join(parts)


class TraceSink:
    """Receives every event of one tracer.  Subclass and override."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; called by :meth:`Tracer.close`."""


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        self._buffer.append(event)

    def events(self) -> list[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._buffer)


class TextSink(TraceSink):
    """Writes one :meth:`TraceEvent.format` line per event."""

    def __init__(self, stream: IO[str]):
        self._stream = stream

    def emit(self, event: TraceEvent) -> None:
        self._stream.write(event.format() + "\n")


class JsonlSink(TraceSink):
    """Writes one JSON object per line (the interchange format)."""

    def __init__(self, stream: IO[str]):
        self._stream = stream

    def emit(self, event: TraceEvent) -> None:
        self._stream.write(json.dumps(event.to_json()) + "\n")

    def close(self) -> None:
        self._stream.flush()


def read_jsonl_trace(lines: Iterable[str]) -> Iterator[TraceEvent]:
    """Parse a JSONL trace back into events (blank lines skipped)."""
    for line in lines:
        line = line.strip()
        if line:
            yield TraceEvent.from_json(json.loads(line))


class Tracer:
    """Fans allocation events out to sinks and counts them by kind.

    Instrumented sites share one idiom::

        tr = stats.trace
        if tr.enabled:
            tr.emit(EventKind.EVICT, temp=t, reg=r, point=p)

    so a disabled tracer costs one attribute read.  The current function
    and block are *ambient* (set once per block via :meth:`set_location`)
    rather than passed at every site, which keeps the allocators'
    signatures untouched.
    """

    def __init__(self, sinks: Iterable[TraceSink] = ()):
        self.sinks: list[TraceSink] = list(sinks)
        self.enabled: bool = bool(self.sinks)
        self.counts: Counter[EventKind] = Counter()
        self._fn: str = "?"
        self._block: str | None = None

    def set_location(self, fn: str | None = None,
                     block: str | None = None) -> None:
        """Set the ambient function/block stamped on subsequent events."""
        if fn is not None:
            self._fn = fn
            self._block = None
        if block is not None:
            self._block = block

    def emit(self, kind: EventKind, *, point: int | None = None,
             temp: object = None, reg: object = None,
             detail: str | None = None, block: str | None = None) -> None:
        """Record one event at the ambient location.

        ``temp``/``reg`` accept IR objects and stringify them here, so
        call sites stay terse.
        """
        if not self.enabled:
            return
        event = TraceEvent(
            kind=kind, fn=self._fn,
            block=self._block if block is None else block,
            point=point,
            temp=None if temp is None else str(temp),
            reg=None if reg is None else str(reg),
            detail=detail)
        self.counts[kind] += 1
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


#: The shared disabled tracer every un-instrumented run uses.
NULL_TRACER = Tracer()
