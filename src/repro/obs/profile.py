"""Nestable wall-clock phase timers for the whole pipeline.

One :class:`PhaseProfiler` accumulates, per named phase, the number of
entries, the *inclusive* time (children counted) and the *self* time
(children excluded), using ``time.perf_counter_ns``.  Phases nest::

    with profiler.phase("allocate"):
        with profiler.phase("allocate.scan"):
            ...
        with profiler.phase("allocate.resolve"):
            ...

Self time of a parent plus inclusive time of its children equals the
parent's inclusive time *by construction* (same clock reads), which is
what lets ``python -m repro profile`` print a per-phase table whose sum
reconciles exactly with ``AllocationStats.alloc_seconds`` — the stat is
itself measured through this profiler (:mod:`repro.allocators.base`).

Phase names are dotted paths by convention (``allocate.scan``); the
convention is for reading, nesting is tracked dynamically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.stats.report import format_table


@dataclass
class PhaseStat:
    """Accumulated timings of one named phase."""

    name: str
    calls: int = 0
    total_ns: int = 0  # inclusive of nested phases
    self_ns: int = 0  # exclusive of nested phases
    depth: int = 0  # nesting depth at first entry (display indent)
    parent: str | None = None  # enclosing phase at first entry

    @property
    def total_seconds(self) -> float:
        return self.total_ns / 1e9

    @property
    def self_seconds(self) -> float:
        return self.self_ns / 1e9


class _Span:
    """Context manager for one phase entry; ``seconds`` is readable after
    exit (this is how ``alloc_seconds`` reads its measurement back)."""

    __slots__ = ("_profiler", "_name", "_start", "_children_ns", "seconds")

    def __init__(self, profiler: "PhaseProfiler", name: str):
        self._profiler = profiler
        self._name = name
        self._children_ns = 0
        self.seconds = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter_ns()
        self._profiler._push(self)
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter_ns() - self._start
        self.seconds = elapsed / 1e9
        self._profiler._pop(self, elapsed)


class PhaseProfiler:
    """Accumulates nested phase timings; see the module docstring."""

    def __init__(self) -> None:
        self.phases: dict[str, PhaseStat] = {}  # insertion-ordered
        self._stack: list[_Span] = []

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def phase(self, name: str) -> _Span:
        """A context manager timing one entry of phase ``name``."""
        return _Span(self, name)

    def _push(self, span: _Span) -> None:
        self._stack.append(span)

    def _pop(self, span: _Span, elapsed_ns: int) -> None:
        self._stack.pop()
        stat = self.phases.get(span._name)
        if stat is None:
            stat = self.phases[span._name] = PhaseStat(
                span._name, depth=len(self._stack),
                parent=self._stack[-1]._name if self._stack else None)
        stat.calls += 1
        stat.total_ns += elapsed_ns
        stat.self_ns += elapsed_ns - span._children_ns
        if self._stack:
            self._stack[-1]._children_ns += elapsed_ns

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def seconds(self, name: str) -> float:
        """Inclusive seconds of ``name`` (0.0 if the phase never ran)."""
        stat = self.phases.get(name)
        return stat.total_seconds if stat else 0.0

    def self_seconds_total(self) -> float:
        """Sum of every phase's self time == total instrumented time."""
        return sum(stat.self_ns for stat in self.phases.values()) / 1e9

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's accumulations into this one."""
        for name, stat in other.phases.items():
            mine = self.phases.get(name)
            if mine is None:
                mine = self.phases[name] = PhaseStat(name, depth=stat.depth,
                                                     parent=stat.parent)
            mine.calls += stat.calls
            mine.total_ns += stat.total_ns
            mine.self_ns += stat.self_ns

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def _tree_order(self) -> list[PhaseStat]:
        """Phases in pre-order: parents before their children, siblings in
        first-entry order.  (Children are *recorded* before their parent —
        a child span pops first — so raw insertion order interleaves.)"""
        children: dict[str | None, list[PhaseStat]] = {}
        for stat in self.phases.values():
            parent = stat.parent if stat.parent in self.phases else None
            children.setdefault(parent, []).append(stat)
        out: list[PhaseStat] = []

        def walk(parent: str | None) -> None:
            for stat in children.get(parent, []):
                out.append(stat)
                walk(stat.name)

        walk(None)
        return out

    def render(self, title: str | None = None) -> str:
        """A per-phase table: calls, inclusive ms, self ms, self %."""
        grand_self = self.self_seconds_total() or 1e-12
        rows = []
        for stat in self._tree_order():
            rows.append(["  " * stat.depth + stat.name, stat.calls,
                         f"{stat.total_seconds * 1e3:.3f}",
                         f"{stat.self_seconds * 1e3:.3f}",
                         f"{100 * stat.self_seconds / grand_self:.1f}%"])
        return format_table(
            ["phase", "calls", "total ms", "self ms", "self %"], rows,
            title=title)
