"""Typed per-function analyses behind a memoizing manager.

The paper's methodology (Section 3) computes one set of setup analyses —
CFG, liveness, loop info, linear order, lifetime table — and feeds it to
every allocator, timing only the allocator cores.  Before this module the
repo *stated* that discipline but recomputed the analyses ad hoc in every
layer; the :class:`AnalysisManager` makes it structural:

* each analysis is a typed key (:class:`AnalysisKind`) with an explicit
  dependency list and a ``compute`` function;
* results are memoized per :class:`~repro.ir.function.Function` object
  (functions hash by identity);
* **invalidation is explicit**: whoever mutates a function must call
  :meth:`AnalysisManager.invalidate` (directly, or through the pass
  manager's preserved-analyses declarations in :mod:`repro.pm.passes`) —
  the cache never inspects code to guess staleness;
* analyses *transfer* onto structural clones: :meth:`Function.clone`
  records the old-to-new instruction map, and each kind knows how to
  rebind its result to the clone (label- and temp-keyed results are
  shared outright; instruction-keyed tables are remapped; the CFG gets
  fresh adjacency lists because binpacking's resolution mutates them).

Cache traffic is published into the manager's metrics registry
(``pm.analysis.computed[.<kind>]``, ``pm.analysis.hits``,
``pm.analysis.transfers``, ``pm.analysis.invalidated``) so the
analyze-once claim is observable, not asserted; computation is timed
under the familiar ``setup.<kind>`` profiler phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cfg.cfg import CFG
from repro.cfg.loops import LoopInfo
from repro.dataflow.liveness import LivenessInfo, compute_liveness
from repro.ir.function import Function
from repro.ir.instr import Instr
from repro.lifetimes.intervals import (LifetimeTable, LinearOrder,
                                       compute_lifetimes,
                                       compute_linear_order)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler
from repro.target.machine import MachineDescription

#: The old-instruction -> new-instruction correspondence a clone records.
InstrMap = dict[Instr, Instr]


@dataclass(frozen=True)
class AnalysisKind:
    """One typed analysis: a name, a compute function, and a transfer.

    Attributes:
        name: Stable key (also the metrics/profile suffix).
        compute: ``(manager, fn) -> result``; pulls dependencies through
            the manager so they are cached too.
        transfer: ``(result, clone_fn, instr_map) -> result`` rebinding a
            cached result onto a structural clone of the analysed
            function.  Must be equivalent to recomputing on the clone.
        requires: Kinds this one reads through the manager (documentation
            and invalidation-audit aid; ``compute`` does the actual
            pulling).
    """

    name: str
    compute: Callable[["AnalysisManager", Function], Any]
    transfer: Callable[[Any, Function, InstrMap], Any]
    requires: tuple[str, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AnalysisKind({self.name})"


def _share(value: Any, fn: Function, instr_map: InstrMap) -> Any:
    """Transfer for label-/temp-keyed results: valid for any clone as-is."""
    return value


def _transfer_cfg(value: CFG, fn: Function, instr_map: InstrMap) -> CFG:
    # Fresh adjacency lists: resolution's ``split_edge`` mutates them.
    return CFG(fn=fn,
               succs={label: list(s) for label, s in value.succs.items()},
               preds={label: list(p) for label, p in value.preds.items()})


def _transfer_order(value: LinearOrder, fn: Function,
                    instr_map: InstrMap) -> LinearOrder:
    return LinearOrder(
        linear=[instr_map[i] for i in value.linear],
        pos={instr_map[i]: p for i, p in value.pos.items()},
        block_span=dict(value.block_span))


def _transfer_lifetimes(value: LifetimeTable, fn: Function,
                        instr_map: InstrMap) -> LifetimeTable:
    # Lifetime/range data is keyed by temporaries and physical registers
    # (immutable values shared with the clone) and is read-only to the
    # allocators, so it is shared; only instruction-keyed structures are
    # remapped and the function reference rebound.
    return LifetimeTable(
        fn=fn,
        machine=value.machine,
        linear=[instr_map[i] for i in value.linear],
        pos={instr_map[i]: p for i, p in value.pos.items()},
        block_span=dict(value.block_span),
        temps=value.temps,
        reserved=value.reserved,
        ref_points=value.ref_points,
        ref_depths=value.ref_depths,
        liveness=value.liveness,
        loops=value.loops)


CFG_ANALYSIS = AnalysisKind(
    "cfg",
    compute=lambda am, fn: CFG.build(fn),
    transfer=_transfer_cfg)

LIVENESS_ANALYSIS = AnalysisKind(
    "liveness",
    compute=lambda am, fn: compute_liveness(fn, am.get(CFG_ANALYSIS, fn)),
    transfer=_share,
    requires=("cfg",))

LOOPS_ANALYSIS = AnalysisKind(
    "loops",
    compute=lambda am, fn: LoopInfo.build(am.get(CFG_ANALYSIS, fn)),
    transfer=_share,
    requires=("cfg",))

LINEAR_ORDER_ANALYSIS = AnalysisKind(
    "linear",
    compute=lambda am, fn: compute_linear_order(fn),
    transfer=_transfer_order)

LIFETIMES_ANALYSIS = AnalysisKind(
    "lifetimes",
    compute=lambda am, fn: compute_lifetimes(
        fn, am.machine,
        cfg=am.get(CFG_ANALYSIS, fn),
        liveness=am.get(LIVENESS_ANALYSIS, fn),
        loops=am.get(LOOPS_ANALYSIS, fn),
        order=am.get(LINEAR_ORDER_ANALYSIS, fn)),
    transfer=_transfer_lifetimes,
    requires=("cfg", "liveness", "loops", "linear"))

#: Every registered kind, by name (the pass manager's preserve sets are
#: validated against this).
ALL_ANALYSES: dict[str, AnalysisKind] = {
    kind.name: kind
    for kind in (CFG_ANALYSIS, LIVENESS_ANALYSIS, LOOPS_ANALYSIS,
                 LINEAR_ORDER_ANALYSIS, LIFETIMES_ANALYSIS)
}

#: Convenience preserve-set: the pass guarantees every cached analysis is
#: still valid when it returns (verifiers, and passes that maintain cache
#: coherence themselves).
PRESERVE_ALL = frozenset(ALL_ANALYSES)


@dataclass(eq=False)
class AnalysisManager:
    """Memoizes analyses per function, with explicit invalidation.

    The cache is keyed by :class:`Function` *object* (identity), so two
    clones of the same source function have independent entries.  A clone
    may be *linked* to the function it was copied from
    (:meth:`link_clone`); a query against a linked clone is answered by
    computing on the original — at most once per session — and
    transferring the result, which is how comparing four allocators
    shares one set of setup analyses.

    The invalidation contract (see docs/ARCHITECTURE.md): any code that
    mutates a function it did not just create must call
    :meth:`invalidate` before the next query, naming the analyses it
    provably preserved.  Mutation also severs the clone link — stale
    pre-mutation results must never arrive by transfer either.
    """

    machine: MachineDescription
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    profiler: PhaseProfiler | None = None
    _cache: dict[Function, dict[str, Any]] = field(default_factory=dict)
    _origins: dict[Function, tuple[Function, InstrMap]] = field(
        default_factory=dict)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def get(self, kind: AnalysisKind, fn: Function,
            profiler: PhaseProfiler | None = None) -> Any:
        """The ``kind`` analysis of ``fn`` — cached, transferred from the
        function's clone origin, or computed, in that order.

        ``profiler`` (defaulting to the manager's) times an actual
        computation under the ``setup.<kind>`` phase; hits and transfers
        are free and untimed.
        """
        per_fn = self._cache.get(fn)
        if per_fn is not None and kind.name in per_fn:
            self.metrics.bump("pm.analysis.hits")
            return per_fn[kind.name]
        origin = self._origins.get(fn)
        if origin is not None:
            base_fn, instr_map = origin
            value = kind.transfer(self.get(kind, base_fn, profiler),
                                  fn, instr_map)
            self.metrics.bump("pm.analysis.transfers")
        else:
            prof = profiler or self.profiler
            if prof is not None:
                with prof.phase(f"setup.{kind.name}"):
                    value = kind.compute(self, fn)
            else:
                value = kind.compute(self, fn)
            self.metrics.bump("pm.analysis.computed")
            self.metrics.bump(f"pm.analysis.computed.{kind.name}")
        self._cache.setdefault(fn, {})[kind.name] = value
        return value

    def cached(self, kind: AnalysisKind, fn: Function) -> Any | None:
        """The cached result, or ``None`` — never computes or transfers."""
        return self._cache.get(fn, {}).get(kind.name)

    # Named accessors so consumers (the passes) need no kind imports —
    # which also keeps them free of circular-import hazards.
    def cfg(self, fn: Function,
            profiler: PhaseProfiler | None = None) -> CFG:
        return self.get(CFG_ANALYSIS, fn, profiler)

    def liveness(self, fn: Function,
                 profiler: PhaseProfiler | None = None) -> LivenessInfo:
        return self.get(LIVENESS_ANALYSIS, fn, profiler)

    def loops(self, fn: Function,
              profiler: PhaseProfiler | None = None) -> LoopInfo:
        return self.get(LOOPS_ANALYSIS, fn, profiler)

    def linear(self, fn: Function,
               profiler: PhaseProfiler | None = None) -> LinearOrder:
        return self.get(LINEAR_ORDER_ANALYSIS, fn, profiler)

    def lifetimes(self, fn: Function,
                  profiler: PhaseProfiler | None = None) -> LifetimeTable:
        return self.get(LIFETIMES_ANALYSIS, fn, profiler)

    # ------------------------------------------------------------------
    # Clone links.
    # ------------------------------------------------------------------
    def link_clone(self, base: Function, clone: Function,
                   instr_map: InstrMap) -> None:
        """Declare ``clone`` a fresh structural copy of ``base`` so its
        analyses are answered by transfer instead of recomputation."""
        self._origins[clone] = (base, instr_map)

    # ------------------------------------------------------------------
    # Invalidation.
    # ------------------------------------------------------------------
    def invalidate(self, fn: Function,
                   preserve: frozenset[str] = frozenset()) -> None:
        """Drop every cached analysis of ``fn`` not named in ``preserve``,
        and sever its clone link (post-mutation transfers would be stale).
        """
        unknown = preserve - PRESERVE_ALL
        if unknown:
            raise ValueError(f"unknown analyses in preserve set: "
                             f"{sorted(unknown)}")
        self._origins.pop(fn, None)
        per_fn = self._cache.get(fn)
        if not per_fn:
            return
        dropped = [name for name in per_fn if name not in preserve]
        for name in dropped:
            del per_fn[name]
        if dropped:
            self.metrics.bump("pm.analysis.invalidated", len(dropped))

    def invalidate_module(self, functions,
                          preserve: frozenset[str] = frozenset()) -> None:
        """Invalidate every function in ``functions`` (an iterable)."""
        for fn in functions:
            self.invalidate(fn, preserve)
