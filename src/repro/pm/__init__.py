"""Pass-manager layer: cached analyses, sessions, passes, batch driver.

* :mod:`repro.pm.analysis` — typed per-function analyses behind a
  memoizing :class:`~repro.pm.analysis.AnalysisManager` with explicit
  invalidation and clone transfer.
* :mod:`repro.pm.session` — :class:`~repro.pm.session.CompilationSession`,
  the shared state for repeated allocator runs over one module.
* :mod:`repro.pm.passes` — :class:`~repro.pm.passes.PassManager` and the
  repo's passes wrapped with preserved-analyses declarations.
* :mod:`repro.pm.batch` — process-pool batch compilation for the
  comparison driver, fuzz harness and benchmarks.

See docs/ARCHITECTURE.md for the layer diagram and the invalidation
contract.
"""

from repro.pm.analysis import (ALL_ANALYSES, PRESERVE_ALL, AnalysisKind,
                               AnalysisManager)
from repro.pm.passes import (DCE_PASS, PEEPHOLE_PASS, SPILL_CLEANUP_PASS,
                             FunctionPass, PassManager)
from repro.pm.session import CompilationSession, PipelineResult

__all__ = [
    "ALL_ANALYSES",
    "PRESERVE_ALL",
    "AnalysisKind",
    "AnalysisManager",
    "CompilationSession",
    "DCE_PASS",
    "FunctionPass",
    "PEEPHOLE_PASS",
    "PassManager",
    "PipelineResult",
    "SPILL_CLEANUP_PASS",
]
