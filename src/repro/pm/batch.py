"""Batch compilation: fan allocator runs out over a process pool.

Two execution strategies, chosen by ``jobs``:

* **serial** (``jobs <= 1``): every run shares one
  :class:`~repro.pm.session.CompilationSession`, so the setup analyses
  are computed once per function and transferred to each run's clone —
  the cheapest total work.
* **parallel** (``jobs > 1``): runs are dispatched to worker processes
  via :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker
  opens its own session (analysis caches are per-process), trading
  repeated setup for wall-clock speedup on multi-function batches.

Both strategies produce *byte-identical* allocated modules: the
allocators are deterministic, sessions only change where analyses are
computed (never their values — the transfer contract), and
``Executor.map`` preserves submission order.  CI enforces this with
``tools/check_batch_determinism.py``.

Workers are top-level functions and payloads are plain picklable data
(modules, machine descriptions, allocator *names* — never allocator
objects or tracers), so the pool works under any start method; tracing
callers must stay serial, and :func:`compare_allocators` enforces that.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.allocators import ALLOCATOR_FACTORIES, make_allocator
from repro.ir.module import Module
from repro.ir.printer import print_module
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.pm.session import CompilationSession
from repro.sim import simulate
from repro.spill import AllocationContext
from repro.target.machine import MachineDescription


def run_batch(worker: Callable[[Any], Any], payloads: Sequence[Any], *,
              jobs: int = 1) -> list[Any]:
    """Apply ``worker`` to every payload; results in payload order.

    ``jobs <= 1`` (or a single payload) runs inline — no pool, no
    pickling, exceptions propagate directly.  Otherwise up to ``jobs``
    worker processes run concurrently; ``worker`` must be a module-level
    function and the payloads picklable.  A worker exception propagates
    to the caller (raised by ``Executor.map``), cancelling the batch.
    """
    payloads = list(payloads)
    if jobs <= 1 or len(payloads) <= 1:
        return [worker(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
        return list(pool.map(worker, payloads))


@dataclass
class CompareCell:
    """One allocator's row of the Table-1-style comparison — plain data,
    safe to ship back from a worker process.

    ``module_text`` is the printed allocated module: the determinism
    check compares these byte-for-byte between serial and parallel runs
    (timing fields obviously differ run to run, so they are excluded
    from any identity claim).
    """

    allocator: str
    dynamic_instructions: int
    cycles: int
    spill_fraction: float
    alloc_seconds: float
    output: list
    result: int | float | None
    module_text: str


def _cell(session: CompilationSession, name: str, spill_cleanup: bool,
          trace: Tracer | None = None,
          context: AllocationContext | None = None) -> CompareCell:
    result = session.run(make_allocator(name), spill_cleanup=spill_cleanup,
                         trace=trace, context=context)
    outcome = simulate(result.module, session.machine)
    return CompareCell(
        allocator=name,
        dynamic_instructions=outcome.dynamic_instructions,
        cycles=outcome.cycles,
        spill_fraction=outcome.spill_fraction(),
        alloc_seconds=result.stats.alloc_seconds,
        output=list(outcome.output),
        result=outcome.result,
        module_text=print_module(result.module))


def _compare_worker(payload) -> CompareCell:
    """Process-pool entry: one allocator on a private session."""
    module, machine, name, spill_cleanup, context = payload
    return _cell(CompilationSession(module, machine), name, spill_cleanup,
                 context=context)


def allocation_artifact(payload: dict) -> dict:
    """Process-pool worker: one allocation-service request → one plain
    artifact dict (the unit the serving cache persists).

    ``payload`` is JSON-shaped data — exactly what crossed the wire —
    with ``ir`` (printed IR text) *or* ``minic`` (source), plus
    ``machine`` (spec string), ``allocator``, ``context`` (canonical
    :meth:`~repro.spill.AllocationContext.describe` form), and
    ``spill_cleanup``.  The result carries the allocated module text,
    Figure-3 spill categories, dynamic counts, the metrics snapshot and
    the phase profile — everything :mod:`repro.serve` streams back.

    Failures are *returned*, not raised (``{"error": {"code",
    "message"}}``), so a bad request cannot poison the worker process
    or cancel a batch; the pool stays healthy for the next request.
    Pure: no store access, no global state — safe under any pool start
    method, and byte-deterministic for identical payloads.
    """
    from repro.ir.parser import parse_module
    from repro.lang import compile_minic
    from repro.obs.profile import PhaseProfiler
    from repro.results.suite import (_phase_summary, machine_from_spec)
    from repro.sim.machine import outputs_equal
    from repro.spill import AllocationContext
    from repro.stats.spill import (FIGURE3_CATEGORIES, REMAT_CATEGORIES,
                                   spill_breakdown)

    def failure(code: str, exc: BaseException) -> dict:
        return {"error": {"code": code,
                          "message": f"{type(exc).__name__}: {exc}"}}

    try:
        machine = machine_from_spec(payload.get("machine", "alpha"))
        context = AllocationContext.parse(payload.get("context", ""))
        allocator = make_allocator(payload.get("allocator", "second-chance"))
    except Exception as exc:
        return failure("bad-request", exc)
    try:
        if payload.get("ir"):
            module = parse_module(payload["ir"])
        else:
            module = compile_minic(payload.get("minic", ""), machine)
    except Exception as exc:
        return failure("parse-error", exc)
    try:
        runnable = "main" in module.functions
        reference = simulate(module, machine) if runnable else None
        session = CompilationSession(module, machine)
        metrics = MetricsRegistry()
        profiler = PhaseProfiler()
        result = session.run(allocator,
                             spill_cleanup=bool(payload.get("spill_cleanup")),
                             profiler=profiler, metrics=metrics,
                             context=context)
        outcome = None
        if runnable:
            # Publish the allocated run's dynamic counts (sim.decode.*,
            # sim.frames.*, sim.op.*) into the same registry, so the
            # artifact's metrics snapshot covers simulation too.
            outcome = simulate(result.module, machine, metrics=metrics)
            if not outputs_equal(outcome.output, reference.output):
                raise RuntimeError("allocation changed observable behaviour "
                                   "(differential oracle mismatch)")
        artifact = {
            "code": print_module(result.module),
            "allocator": payload.get("allocator", "second-chance"),
            "machine": payload.get("machine", "alpha"),
            "context": context.describe(),
            "spill_cleanup": bool(payload.get("spill_cleanup")),
            "alloc_seconds": round(result.stats.alloc_seconds, 6),
            "dce_removed": result.dce_removed,
            "moves_removed": result.moves_removed,
            "metrics": metrics.snapshot(),
            "profile": _phase_summary(profiler),
        }
        if runnable:
            breakdown = spill_breakdown(outcome)
            artifact.update({
                "dynamic_instructions": outcome.dynamic_instructions,
                "cycles": outcome.cycles,
                "result": outcome.result,
                "spill_categories": {
                    f"{phase.value}.{kind.value}":
                        breakdown.category(phase, kind)
                    for phase, kind in FIGURE3_CATEGORIES + REMAT_CATEGORIES},
                "total_spill": breakdown.total_spill,
            })
        return artifact
    except Exception as exc:
        return failure("alloc-error", exc)


def compare_allocators(module: Module, machine: MachineDescription, *,
                       names: Sequence[str] | None = None,
                       spill_cleanup: bool = False, jobs: int = 1,
                       trace: Tracer | None = None,
                       context: AllocationContext | None = None,
                       ) -> list[CompareCell]:
    """Run every named allocator over ``module``; one cell per allocator.

    The workhorse behind ``repro compare`` / ``repro bench``.  With
    ``jobs > 1`` and no tracer, allocators run in parallel worker
    processes; otherwise they share one serial session (a tracer pins the
    run serial — sinks hold open streams that cannot cross processes).
    Cells come back in ``names`` order under either strategy.
    """
    names = list(names if names is not None else ALLOCATOR_FACTORIES)
    if jobs > 1 and trace is None and len(names) > 1:
        payloads = [(module, machine, name, spill_cleanup, context)
                    for name in names]
        return run_batch(_compare_worker, payloads, jobs=jobs)
    session = CompilationSession(module, machine)
    return [_cell(session, name, spill_cleanup, trace, context)
            for name in names]
