"""Batch compilation: fan allocator runs out over a process pool.

Two execution strategies, chosen by ``jobs``:

* **serial** (``jobs <= 1``): every run shares one
  :class:`~repro.pm.session.CompilationSession`, so the setup analyses
  are computed once per function and transferred to each run's clone —
  the cheapest total work.
* **parallel** (``jobs > 1``): runs are dispatched to worker processes
  via :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker
  opens its own session (analysis caches are per-process), trading
  repeated setup for wall-clock speedup on multi-function batches.

Both strategies produce *byte-identical* allocated modules: the
allocators are deterministic, sessions only change where analyses are
computed (never their values — the transfer contract), and
``Executor.map`` preserves submission order.  CI enforces this with
``tools/check_batch_determinism.py``.

Workers are top-level functions and payloads are plain picklable data
(modules, machine descriptions, allocator *names* — never allocator
objects or tracers), so the pool works under any start method; tracing
callers must stay serial, and :func:`compare_allocators` enforces that.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.allocators import ALLOCATOR_FACTORIES, make_allocator
from repro.ir.module import Module
from repro.ir.printer import print_module
from repro.obs.trace import Tracer
from repro.pm.session import CompilationSession
from repro.sim import simulate
from repro.spill import AllocationContext
from repro.target.machine import MachineDescription


def run_batch(worker: Callable[[Any], Any], payloads: Sequence[Any], *,
              jobs: int = 1) -> list[Any]:
    """Apply ``worker`` to every payload; results in payload order.

    ``jobs <= 1`` (or a single payload) runs inline — no pool, no
    pickling, exceptions propagate directly.  Otherwise up to ``jobs``
    worker processes run concurrently; ``worker`` must be a module-level
    function and the payloads picklable.  A worker exception propagates
    to the caller (raised by ``Executor.map``), cancelling the batch.
    """
    payloads = list(payloads)
    if jobs <= 1 or len(payloads) <= 1:
        return [worker(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=min(jobs, len(payloads))) as pool:
        return list(pool.map(worker, payloads))


@dataclass
class CompareCell:
    """One allocator's row of the Table-1-style comparison — plain data,
    safe to ship back from a worker process.

    ``module_text`` is the printed allocated module: the determinism
    check compares these byte-for-byte between serial and parallel runs
    (timing fields obviously differ run to run, so they are excluded
    from any identity claim).
    """

    allocator: str
    dynamic_instructions: int
    cycles: int
    spill_fraction: float
    alloc_seconds: float
    output: list
    result: int | float | None
    module_text: str


def _cell(session: CompilationSession, name: str, spill_cleanup: bool,
          trace: Tracer | None = None,
          context: AllocationContext | None = None) -> CompareCell:
    result = session.run(make_allocator(name), spill_cleanup=spill_cleanup,
                         trace=trace, context=context)
    outcome = simulate(result.module, session.machine)
    return CompareCell(
        allocator=name,
        dynamic_instructions=outcome.dynamic_instructions,
        cycles=outcome.cycles,
        spill_fraction=outcome.spill_fraction(),
        alloc_seconds=result.stats.alloc_seconds,
        output=list(outcome.output),
        result=outcome.result,
        module_text=print_module(result.module))


def _compare_worker(payload) -> CompareCell:
    """Process-pool entry: one allocator on a private session."""
    module, machine, name, spill_cleanup, context = payload
    return _cell(CompilationSession(module, machine), name, spill_cleanup,
                 context=context)


def compare_allocators(module: Module, machine: MachineDescription, *,
                       names: Sequence[str] | None = None,
                       spill_cleanup: bool = False, jobs: int = 1,
                       trace: Tracer | None = None,
                       context: AllocationContext | None = None,
                       ) -> list[CompareCell]:
    """Run every named allocator over ``module``; one cell per allocator.

    The workhorse behind ``repro compare`` / ``repro bench``.  With
    ``jobs > 1`` and no tracer, allocators run in parallel worker
    processes; otherwise they share one serial session (a tracer pins the
    run serial — sinks hold open streams that cannot cross processes).
    Cells come back in ``names`` order under either strategy.
    """
    names = list(names if names is not None else ALLOCATOR_FACTORIES)
    if jobs > 1 and trace is None and len(names) > 1:
        payloads = [(module, machine, name, spill_cleanup, context)
                    for name in names]
        return run_batch(_compare_worker, payloads, jobs=jobs)
    session = CompilationSession(module, machine)
    return [_cell(session, name, spill_cleanup, trace, context)
            for name in names]
