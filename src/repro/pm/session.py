"""Compilation sessions: one pristine module, many cheap allocator runs.

A :class:`CompilationSession` owns everything the old ``run_allocator``
re-created per call: the pre-allocation module, the DCE'd form of it,
and every setup analysis.  Each :meth:`run` then costs one structural
:meth:`~repro.ir.module.Module.clone` (no ``copy.deepcopy``) plus the
allocator core — the shared analyses are computed at most once per
function per session and *transferred* onto each run's clone through the
clone's instruction map (see :mod:`repro.pm.analysis`).

This is the paper's Section 3.2 methodology made load-bearing: Table 3
times "only the core parts of the allocators ... after setup activities
common to both allocators", and the session is the object that makes the
setup activities actually common — the comparison driver, the fuzz
harness's ablation grid, and the benchmark harness all run every
allocator out of one session.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.allocators.base import (AllocationStats, RegisterAllocator,
                                   allocate_module)
from repro.ir.module import Module
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler
from repro.obs.trace import Tracer
from repro.passes.spillopt import SpillCleanupStats
from repro.passes.verify_alloc import snapshot_module
from repro.pm.analysis import AnalysisManager
from repro.pm.passes import (DCE_PASS, PEEPHOLE_PASS, SPILL_CLEANUP_PASS,
                             PassManager, sum_spill_stats, verify_dataflow_pass,
                             verify_pass)
from repro.spill import AllocationContext
from repro.target.machine import MachineDescription


@dataclass(eq=False)
class PipelineResult:
    """An allocated module plus everything the evaluation reports on it.

    The run's observability objects ride on ``stats``: ``stats.trace``
    (event tracer), ``stats.profiler`` (per-phase wall clock covering the
    whole pipeline, not just allocation), ``stats.metrics`` (the counters
    every layer published into).
    """

    module: Module
    stats: AllocationStats
    dce_removed: int
    moves_removed: int
    spill_cleanup: SpillCleanupStats | None = None


@dataclass(eq=False)
class CompilationSession:
    """Shared state for repeated allocator runs over one module.

    Attributes:
        module: The pristine pre-allocation module.  The session never
            mutates it; every run works on a clone.
        machine: The target description.
        metrics: Session-level registry the analysis cache reports into
            (``pm.analysis.*`` — hits, computes, transfers,
            invalidations).  Per-run counters land in each run's own
            registry, on its stats.
        analyses: The memoizing analysis manager (shared by every run).
        passes: The pass manager enforcing the invalidation contract.
    """

    module: Module
    machine: MachineDescription
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    analyses: AnalysisManager = field(init=False)
    passes: PassManager = field(init=False)
    # (module, dce_removed) per dce flag; built lazily, then reused by
    # every run of the session.
    _prepared: dict[bool, tuple[Module, int]] = field(init=False,
                                                      default_factory=dict)

    def __post_init__(self) -> None:
        self.analyses = AnalysisManager(self.machine, metrics=self.metrics)
        self.passes = PassManager(self.analyses)

    # ------------------------------------------------------------------
    # The shared pre-allocation form.
    # ------------------------------------------------------------------
    def prepared(self, dce: bool = True) -> tuple[Module, int]:
        """The session's pre-allocation base module and its DCE removals.

        With ``dce`` the base is a clone of the pristine module with
        dead-code elimination applied — computed on first request, reused
        by every later run (the old pipeline re-ran DCE per allocator).
        Without, the base is the pristine module itself.  Either way the
        base is never handed out for mutation: runs clone it.
        """
        hit = self._prepared.get(dce)
        if hit is not None:
            return hit
        if not dce:
            prepared = (self.module, 0)
        else:
            working = self.clone_base()
            removed = sum(self.passes.run(DCE_PASS, working))
            prepared = (working, removed)
        self._prepared[dce] = prepared
        return prepared

    def clone_base(self, base: Module | None = None) -> Module:
        """A structural clone of ``base`` (default: the pristine module)
        with every cloned function linked into the analysis cache, so
        analyses computed on the base transfer instead of recomputing.
        The one clone-and-link dance every run-shaped caller needs —
        :meth:`run`, :meth:`prepared`, and the suite's timing protocol
        all go through here."""
        if base is None:
            base = self.module
        instr_map: dict = {}
        working = base.clone(instr_map)
        for name, fn in working.functions.items():
            self.analyses.link_clone(base.functions[name], fn, instr_map)
        return working

    # ------------------------------------------------------------------
    # Allocator access to the cache.
    # ------------------------------------------------------------------
    def shared(self, fn, profiler: PhaseProfiler | None = None):
        """The :class:`~repro.allocators.base.SharedAnalyses` for ``fn``,
        served from the session cache (``allocate_module`` calls this in
        place of ``SharedAnalyses.build`` when given a session)."""
        from repro.allocators.base import SharedAnalyses

        return SharedAnalyses(
            cfg=self.analyses.cfg(fn, profiler),
            liveness=self.analyses.liveness(fn, profiler),
            loops=self.analyses.loops(fn, profiler),
            lifetimes=self.analyses.lifetimes(fn, profiler))

    # ------------------------------------------------------------------
    # One full pipeline run.
    # ------------------------------------------------------------------
    def run(self, allocator: RegisterAllocator, *, dce: bool = True,
            peephole: bool = True, spill_cleanup: bool = False,
            verify: bool = True, verify_dataflow: bool = False,
            trace: Tracer | None = None,
            profiler: PhaseProfiler | None = None,
            metrics: MetricsRegistry | None = None,
            context: "AllocationContext | None" = None) -> PipelineResult:
        """Clone the prepared module, allocate, clean up, verify, report.

        Same contract and flags as :func:`repro.pipeline.run_allocator`
        (which delegates here); ``trace``/``profiler``/``metrics`` are
        per-run observability objects, reachable afterwards through the
        returned ``stats``.  ``context`` configures rematerialization and
        the seeded stress modes (default: the inert
        :data:`~repro.spill.DEFAULT_CONTEXT`) — session analyses are
        context-independent, so runs under different contexts still share
        one cache.
        """
        prof = profiler or PhaseProfiler()
        with prof.phase("pipeline.dce"):
            # Cached after the session's first dce run; the phase stays in
            # every run's profile so per-run timings remain comparable —
            # on a cache hit it simply measures (almost) nothing.
            base, dce_removed = self.prepared(dce)
        working = self.clone_base(base)
        snapshots = snapshot_module(working) if verify_dataflow else None
        stats = allocate_module(working, allocator.fresh(), self.machine,
                                trace=trace, profiler=prof, metrics=metrics,
                                session=self, context=context)
        if snapshots is not None:
            self.passes.run(verify_dataflow_pass(self.machine, snapshots),
                            working, profiler=prof)
        if spill_cleanup:
            cleanup = sum_spill_stats(
                self.passes.run(SPILL_CLEANUP_PASS, working, profiler=prof))
        else:
            with prof.phase("pipeline.spill_cleanup"):
                cleanup = SpillCleanupStats()
        if peephole:
            moves_removed = sum(
                self.passes.run(PEEPHOLE_PASS, working, profiler=prof))
        else:
            with prof.phase("pipeline.peephole"):
                moves_removed = 0
        if verify:
            self.passes.run(verify_pass(self.machine), working, profiler=prof)
        stats.metrics.bump("pipeline.dce.removed", dce_removed)
        stats.metrics.bump("pipeline.peephole.moves_removed", moves_removed)
        if spill_cleanup:
            stats.metrics.bump("pipeline.spill_cleanup.stores_removed",
                               cleanup.stores_removed)
            stats.metrics.bump("pipeline.spill_cleanup.loads_forwarded",
                               cleanup.loads_forwarded)
        return PipelineResult(working, stats, dce_removed, moves_removed,
                              cleanup)
