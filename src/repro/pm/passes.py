"""The pass manager: passes that declare what they preserve.

A :class:`FunctionPass` wraps one of the repo's function-level rewrites
(DCE, the move peephole, spill cleanup, the verifiers) together with the
set of analyses it provably keeps valid.  The :class:`PassManager` runs a
pass over a module and performs the cache bookkeeping the invalidation
contract demands: after a pass changes a function, every cached analysis
*not* in the pass's preserve set is dropped (and the function's clone
link severed), so a stale result can never be served.

Preservation claims recorded here, with their justifications:

* **dce** preserves ``cfg``, ``loops``, ``liveness`` — it deletes only
  non-terminator instructions (labels and edges survive, hence the loop
  forest too), and it runs liveness rounds until a round removes
  nothing, so the *last* round's liveness — the one left in the cache —
  describes exactly the code the pass returns.
* **peephole** and **spill-cleanup** preserve ``cfg`` and ``loops`` —
  they rewrite or delete straight-line instructions only.  They run
  post-allocation, where temp liveness is moot, but declaring it
  preserved would still be wrong, so they don't.
* the verifiers preserve *everything*: they never mutate.

Nothing preserves ``linear`` or ``lifetimes`` across a change — both are
instruction-keyed, and all of these passes insert or delete
instructions.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable

from repro.ir.function import Function
from repro.ir.module import Module
from repro.obs.profile import PhaseProfiler
from repro.passes.dce import eliminate_dead_code
from repro.passes.peephole import remove_redundant_moves
from repro.passes.spillopt import SpillCleanupStats, cleanup_spill_code
from repro.passes.verify_alloc import (OperandSnapshot, verify_allocation,
                                       verify_dataflow)
from repro.pm.analysis import PRESERVE_ALL, AnalysisManager
from repro.target.machine import MachineDescription


@dataclass(frozen=True)
class FunctionPass:
    """One function-level transformation plus its cache contract.

    Attributes:
        name: Stable identifier (metrics key suffix).
        phase: Profiler phase the whole module sweep is timed under.
        run: ``(fn, analyses) -> result``; may query the analysis manager
            freely (queries are cached) and may manage mid-pass
            invalidation itself (DCE does, between rounds).
        preserves: Analyses still valid after ``run`` changed ``fn``.
        changed: Maps ``run``'s result to "did the function change?" —
            invalidation is skipped entirely for untouched functions, so
            a no-op pass costs no cache entries.
        mutates: ``False`` for verifiers; invalidation is never needed.
    """

    name: str
    phase: str
    run: Callable[[Function, AnalysisManager | None], Any]
    preserves: frozenset[str] = frozenset()
    changed: Callable[[Any], bool] = bool
    mutates: bool = True


@dataclass(eq=False)
class PassManager:
    """Runs passes over modules, enforcing the invalidation contract."""

    analyses: AnalysisManager
    profiler: PhaseProfiler | None = None

    def run(self, pass_: FunctionPass, module: Module,
            profiler: PhaseProfiler | None = None) -> list[Any]:
        """Run ``pass_`` over every function; returns per-function results.

        Timed under ``pass_.phase`` on ``profiler`` (or the manager's).
        After each function that the pass reports changed, the analysis
        cache is invalidated down to the pass's preserve set.
        """
        prof = profiler or self.profiler
        results: list[Any] = []
        changed_fns = 0
        with (prof.phase(pass_.phase) if prof is not None else nullcontext()):
            for fn in module.functions.values():
                result = pass_.run(fn, self.analyses)
                results.append(result)
                if pass_.mutates and pass_.changed(result):
                    changed_fns += 1
                    self.analyses.invalidate(fn, preserve=pass_.preserves)
        self.analyses.metrics.bump(f"pm.pass.{pass_.name}.runs")
        if changed_fns:
            self.analyses.metrics.bump(f"pm.pass.{pass_.name}.changed",
                                       changed_fns)
        return results


# ----------------------------------------------------------------------
# The repo's passes, wrapped.
# ----------------------------------------------------------------------
DCE_PASS = FunctionPass(
    name="dce",
    phase="pipeline.dce",
    run=lambda fn, am: eliminate_dead_code(fn, am),
    preserves=frozenset({"cfg", "loops", "liveness"}))

PEEPHOLE_PASS = FunctionPass(
    name="peephole",
    phase="pipeline.peephole",
    run=lambda fn, am: remove_redundant_moves(fn),
    preserves=frozenset({"cfg", "loops"}))

SPILL_CLEANUP_PASS = FunctionPass(
    name="spill_cleanup",
    phase="pipeline.spill_cleanup",
    run=lambda fn, am: cleanup_spill_code(fn, am),
    preserves=frozenset({"cfg", "loops"}),
    changed=lambda s: bool(s.loads_forwarded or s.stores_removed))


def verify_pass(machine: MachineDescription) -> FunctionPass:
    """The structural post-allocation verifier as a (read-only) pass."""
    return FunctionPass(
        name="verify",
        phase="pipeline.verify",
        run=lambda fn, am: verify_allocation(fn, machine),
        preserves=PRESERVE_ALL,
        mutates=False)


def verify_dataflow_pass(machine: MachineDescription,
                         snapshots: dict[str, OperandSnapshot]) -> FunctionPass:
    """The path-sensitive dataflow verifier as a (read-only) pass.

    Pulls each function's post-allocation CFG through the cache, where
    the spill-cleanup pass running next will hit it.
    """
    return FunctionPass(
        name="verify_dataflow",
        phase="pipeline.verify_dataflow",
        run=lambda fn, am: verify_dataflow(
            fn, machine, snapshots[fn.name],
            cfg=am.cfg(fn) if am is not None else None),
        preserves=PRESERVE_ALL,
        mutates=False)


def sum_spill_stats(results: list[SpillCleanupStats]) -> SpillCleanupStats:
    """Fold per-function spill-cleanup results into module totals."""
    total = SpillCleanupStats()
    for stats in results:
        total = total + stats
    return total
