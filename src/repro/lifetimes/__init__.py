"""Lifetime intervals and lifetime holes (Section 2.1 of the paper)."""

from repro.lifetimes.intervals import (
    Lifetime,
    LifetimeTable,
    LinearOrder,
    Range,
    RangeSet,
    compute_lifetimes,
    compute_linear_order,
)

__all__ = [
    "Lifetime",
    "LifetimeTable",
    "LinearOrder",
    "Range",
    "RangeSet",
    "compute_lifetimes",
    "compute_linear_order",
]
