"""Lifetime intervals and lifetime holes (Section 2.1 of the paper)."""

from repro.lifetimes.intervals import (
    Lifetime,
    LifetimeTable,
    Range,
    RangeSet,
    compute_lifetimes,
)

__all__ = ["Lifetime", "LifetimeTable", "Range", "RangeSet", "compute_lifetimes"]
