"""Lifetimes, lifetime holes, and the linear numbering they live on.

Linear numbering
----------------

Instructions are numbered ``0..N-1`` in the function's layout (linear)
order.  Instruction ``i`` *reads* its uses at point ``2i`` and *writes*
its defs at point ``2i + 1``; a block spans the half-open point range
``[2*first, 2*(last+1))``.  Splitting each instruction into a read point
and a write point lets a def reuse a register freed by a dying use of the
same instruction, and gives spill loads/stores the "point lifetimes" of
Section 2.2 a natural home.

Lifetimes
---------

A temporary's lifetime is the span from the first point it is live in
linear order to the last (Section 1); the maximal uncovered gaps inside
that span are its *lifetime holes* (Section 2.1, Figure 1).  We compute
all live ranges in a single reverse pass over the linear code, seeded at
each block bottom with the block's liveness (computed once, shared with
the coloring allocator).

Physical registers get the same treatment: explicit references (calling
convention moves, call argument/return registers) and call-site clobbers
of the caller-saved set produce *reserved* ranges; the complement of a
register's reserved set is its own sequence of lifetime holes, which is
exactly how Section 2.5 models usage conventions.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from repro.cfg.cfg import CFG
from repro.cfg.loops import LoopInfo
from repro.dataflow.liveness import LivenessInfo, compute_liveness
from repro.ir.function import Function
from repro.ir.instr import Instr
from repro.ir.temp import PhysReg, Temp
from repro.ir.types import RegClass
from repro.target.machine import MachineDescription


@dataclass(frozen=True, order=True)
class Range:
    """A half-open interval ``[start, end)`` of linear points."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise ValueError(f"empty range [{self.start}, {self.end})")

    def __contains__(self, point: int) -> bool:
        return self.start <= point < self.end

    def overlaps(self, other: "Range") -> bool:
        """True when the two ranges share at least one point."""
        return self.start < other.end and other.start < self.end

    def __str__(self) -> str:
        return f"[{self.start},{self.end})"


class RangeSet:
    """A normalized (sorted, disjoint, merged) set of ranges with queries.

    All allocator hole logic reduces to three queries: does the set cover
    a point, where does coverage next begin after a point, and does the
    set intersect a candidate interval.

    Internally the set is two parallel int lists (``_starts``/``_ends``)
    rather than a tuple of :class:`Range` objects — lifetime construction
    builds millions of these across a batch run, and flat lists keep both
    the build (no per-range object allocation) and the bisect queries (no
    attribute loads) cheap.  :class:`Range` objects appear only at the
    iteration boundary (``iter``/``ranges``/``holes``), built lazily.
    """

    __slots__ = ("_starts", "_ends", "_ranges", "_memo_point", "_memo_next")

    def __init__(self, raw: list[tuple[int, int]] | None = None):
        starts: list[int] = []
        ends: list[int] = []
        for start, end in sorted(raw or []):
            if start >= end:
                continue
            if ends and start <= ends[-1]:
                if end > ends[-1]:
                    ends[-1] = end
            else:
                starts.append(start)
                ends.append(end)
        self._starts = starts
        self._ends = ends
        self._ranges: tuple[Range, ...] | None = None
        self._memo_point: int | None = None
        self._memo_next: int | None = None

    @classmethod
    def _from_flat(cls, starts: list[int], ends: list[int]) -> "RangeSet":
        """Adopt already-normalized parallel lists (internal fast path)."""
        rs = cls.__new__(cls)
        rs._starts = starts
        rs._ends = ends
        rs._ranges = None
        rs._memo_point = None
        rs._memo_next = None
        return rs

    @classmethod
    def from_reverse_sweep(cls, raw: list[tuple[int, int]]) -> "RangeSet":
        """Normalize ranges recorded by a backward walk (non-increasing
        starts), merging in one reverse pass with no sort.

        This is how :func:`compute_lifetimes` emits every temporary's raw
        ranges; should the input turn out unsorted after all, it falls
        back to the generic sorting constructor rather than misbehave.
        """
        starts: list[int] = []
        ends: list[int] = []
        for i in range(len(raw) - 1, -1, -1):
            start, end = raw[i]
            if start >= end:
                continue
            if ends:
                if start < starts[-1]:
                    return cls(raw)
                if start <= ends[-1]:
                    if end > ends[-1]:
                        ends[-1] = end
                    continue
            starts.append(start)
            ends.append(end)
        return cls._from_flat(starts, ends)

    @property
    def ranges(self) -> tuple[Range, ...]:
        """The ranges as :class:`Range` objects (materialized lazily)."""
        ranges = self._ranges
        if ranges is None:
            ranges = self._ranges = tuple(
                Range(s, e) for s, e in zip(self._starts, self._ends))
        return ranges

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self):
        return iter(self.ranges)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, RangeSet) and self._starts == other._starts
                and self._ends == other._ends)

    def __hash__(self) -> int:
        return hash((tuple(self._starts), tuple(self._ends)))

    @property
    def start(self) -> int:
        """First covered point (raises on an empty set)."""
        return self._starts[0]

    @property
    def end(self) -> int:
        """One past the last covered point (raises on an empty set)."""
        return self._ends[-1]

    def covers(self, point: int) -> bool:
        """True when ``point`` lies inside some range."""
        i = bisect_right(self._starts, point) - 1
        return i >= 0 and point < self._ends[i]

    def next_covered_at_or_after(self, point: int) -> int | None:
        """The smallest covered point >= ``point``, or ``None``."""
        starts = self._starts
        i = bisect_right(starts, point)
        if i > 0 and point < self._ends[i - 1]:
            return point
        if i < len(starts):
            return starts[i]
        return None

    def next_covered_memo(self, point: int) -> int | None:
        """:meth:`next_covered_at_or_after` behind a one-entry memo.

        The binpacking scan queries every register's reserved set at the
        same non-decreasing allocation point several times per
        instruction window (hole search, reservation expiry, eviction
        victim scan), so a single remembered ``(point, answer)`` pair
        absorbs most of the bisect traffic.  ``covers(point)`` is the
        ``answer == point`` case, so callers needing both facts pay one
        lookup.  Pure memoization — never observable: the cached answer
        is exactly what the direct query returns (pinned by the parity
        test), and the sets are immutable after construction.
        """
        if point == self._memo_point:
            return self._memo_next
        nxt = self.next_covered_at_or_after(point)
        self._memo_point = point
        self._memo_next = nxt
        return nxt

    def overlaps_interval(self, start: int, end: int) -> bool:
        """True when the set intersects ``[start, end)``."""
        if start >= end:
            return False
        nxt = self.next_covered_at_or_after(start)
        return nxt is not None and nxt < end

    def overlaps_interval_memo(self, start: int, end: int) -> bool:
        """:meth:`overlaps_interval` through the one-entry memo."""
        if start >= end:
            return False
        nxt = self.next_covered_memo(start)
        return nxt is not None and nxt < end

    def overlaps(self, other: "RangeSet") -> bool:
        """True when the two sets share at least one point (merge walk)."""
        a_starts, a_ends = self._starts, self._ends
        b_starts, b_ends = other._starts, other._ends
        i = j = 0
        na, nb = len(a_starts), len(b_starts)
        while i < na and j < nb:
            if a_starts[i] < b_ends[j] and b_starts[j] < a_ends[i]:
                return True
            if a_ends[i] <= b_starts[j]:
                i += 1
            else:
                j += 1
        return False

    def clip(self, start: int) -> "RangeSet":
        """The subset of the ranges at or after ``start`` (a straddling
        range is trimmed to begin at ``start``)."""
        i = bisect_right(self._starts, start)
        starts = self._starts[i:]
        ends = self._ends[i:]
        if i > 0 and self._ends[i - 1] > start:
            starts.insert(0, start)
            ends.insert(0, self._ends[i - 1])
        return RangeSet._from_flat(starts, ends)

    def holes(self) -> list[Range]:
        """Maximal uncovered gaps strictly between the first and last range."""
        return [Range(end, start) for end, start
                in zip(self._ends, self._starts[1:])]

    def __str__(self) -> str:
        return " ".join(str(r) for r in self.ranges) or "(empty)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RangeSet({self})"


@dataclass(eq=False)
class Lifetime:
    """One temporary's (or one register's reserved) live ranges.

    Attributes:
        reg: The temporary (or physical register) described.
        live: The normalized range set of points where a useful value
            exists (for physical registers: where the register is
            reserved by the calling convention).
    """

    reg: Temp | PhysReg
    live: RangeSet

    @property
    def start(self) -> int:
        return self.live.start

    @property
    def end(self) -> int:
        return self.live.end

    def holes(self) -> list[Range]:
        """The lifetime holes (Section 2.1)."""
        return self.live.holes()

    def alive_at(self, point: int) -> bool:
        """True when the value is live at ``point``."""
        return self.live.covers(point)

    def in_hole(self, point: int) -> bool:
        """True when ``point`` falls in a lifetime hole (inside the span
        but not live)."""
        if not self.live:
            return False
        return self.start <= point < self.end and not self.live.covers(point)

    def next_live_at_or_after(self, point: int) -> int | None:
        """First live point >= ``point`` (``None`` once the lifetime ended)."""
        return self.live.next_covered_at_or_after(point)

    def remaining(self, point: int) -> RangeSet:
        """The live ranges at or after ``point``.

        This is what binpacking fits into register holes: a temporary
        whose remaining ranges avoid a register's reserved ranges can use
        it even when the *convex* remaining span could not (e.g. a value
        that is dead across every call fits a caller-saved register).
        Never empty: a dead def still occupies ``[point, point + 1)``.
        """
        clipped = self.live.clip(point)
        if not clipped:
            return RangeSet([(point, point + 1)])
        return clipped

    def __str__(self) -> str:
        return f"{self.reg}: {self.live}"


@dataclass(eq=False)
class LinearOrder:
    """The linear numbering of a function's instructions (Section 2.1).

    Computed once per function and shared: the lifetime table embeds it,
    and the analysis manager (:mod:`repro.pm`) caches and transfers it
    across module clones (``pos`` is keyed by instruction identity, so a
    clone needs the old-to-new instruction map to reuse it).

    Attributes:
        linear: Instructions in layout order.
        pos: Instruction -> linear index (``use point = 2*pos``,
            ``def point = 2*pos + 1``).
        block_span: Block label -> (start point, end point), half-open.
    """

    linear: list[Instr]
    pos: dict[Instr, int]
    block_span: dict[str, tuple[int, int]]


def compute_linear_order(fn: Function) -> LinearOrder:
    """Number every instruction of ``fn`` in layout order."""
    linear: list[Instr] = []
    pos: dict[Instr, int] = {}
    block_span: dict[str, tuple[int, int]] = {}
    for block in fn.blocks:
        first = len(linear)
        for instr in block.instrs:
            pos[instr] = len(linear)
            linear.append(instr)
        block_span[block.label] = (2 * first, 2 * len(linear))
    return LinearOrder(linear, pos, block_span)


@dataclass(eq=False)
class LifetimeTable:
    """Everything the linear-scan allocators need about one function.

    Attributes:
        fn: The analysed function.
        machine: The target (fixes the caller-saved clobber set).
        linear: Instructions in linear order.
        pos: Instruction -> linear index (``use point = 2*pos``,
            ``def point = 2*pos + 1``).
        block_span: Block label -> (start point, end point) half-open.
        temps: Lifetime per temporary (every temporary, including
            block-local ones).
        reserved: Reserved-range set per physical register (empty sets
            are omitted; query through :meth:`reserved_for`).
        ref_points: Per temp, the sorted reference points (uses at
            ``2i``, defs at ``2i+1``).
        ref_depths: Parallel loop depths for each reference point.
    """

    fn: Function
    machine: MachineDescription
    linear: list[Instr]
    pos: dict[Instr, int]
    block_span: dict[str, tuple[int, int]]
    temps: dict[Temp, Lifetime]
    reserved: dict[PhysReg, RangeSet]
    ref_points: dict[Temp, list[int]]
    ref_depths: dict[Temp, list[int]]
    liveness: LivenessInfo
    loops: LoopInfo

    _EMPTY = RangeSet()

    @property
    def max_point(self) -> int:
        """One past the last linear point of the function."""
        return 2 * len(self.linear)

    def use_point(self, instr: Instr) -> int:
        """The point at which ``instr`` reads its uses."""
        return 2 * self.pos[instr]

    def def_point(self, instr: Instr) -> int:
        """The point at which ``instr`` writes its defs."""
        return 2 * self.pos[instr] + 1

    def reserved_for(self, reg: PhysReg) -> RangeSet:
        """The convention-reserved ranges of ``reg`` (possibly empty)."""
        return self.reserved.get(reg, self._EMPTY)

    def lifetime(self, temp: Temp) -> Lifetime:
        """The lifetime of ``temp`` (raises for unreferenced temps)."""
        return self.temps[temp]

    def next_ref_at_or_after(self, temp: Temp, point: int) -> tuple[int, int] | None:
        """The next reference of ``temp`` at or after ``point``.

        Returns ``(ref_point, loop_depth)`` or ``None`` when no reference
        remains — the input to the spill-priority heuristic (Section 2.3).
        """
        points = self.ref_points.get(temp)
        if not points:
            return None
        i = bisect_left(points, point)
        if i == len(points):
            return None
        return points[i], self.ref_depths[temp][i]


def compute_lifetimes(fn: Function, machine: MachineDescription,
                      cfg: CFG | None = None,
                      liveness: LivenessInfo | None = None,
                      loops: LoopInfo | None = None,
                      order: LinearOrder | None = None) -> LifetimeTable:
    """Build the :class:`LifetimeTable` with one reverse pass (Section 2.1).

    ``cfg``/``liveness``/``loops``/``order`` may be passed in when already
    computed — the evaluation timings exclude these shared setup analyses,
    as the paper's Section 3.2 timings do, and the analysis manager
    (:mod:`repro.pm`) memoizes them per function.
    """
    cfg = cfg or CFG.build(fn)
    liveness = liveness or compute_liveness(fn, cfg)
    loops = loops or LoopInfo.build(cfg)
    order = order or compute_linear_order(fn)

    linear = order.linear
    pos = order.pos
    block_span = order.block_span
    depth_at: list[int] = []
    for block in fn.blocks:
        depth_at.extend([loops.depth_of(block.label)] * len(block.instrs))

    raw_temp: dict[Temp, list[tuple[int, int]]] = {}
    raw_phys: dict[PhysReg, list[tuple[int, int]]] = {}
    ref_points: dict[Temp, list[int]] = {}
    ref_depths: dict[Temp, list[int]] = {}

    caller_saved = (machine.caller_saved(RegClass.GPR)
                    + machine.caller_saved(RegClass.FPR))

    # Forward sweep: reference points (for the spill heuristic) and call
    # clobber reservations.
    for i, instr in enumerate(linear):
        for u in instr.uses:
            if isinstance(u, Temp):
                ref_points.setdefault(u, []).append(2 * i)
                ref_depths.setdefault(u, []).append(depth_at[i])
        for d in instr.defs:
            if isinstance(d, Temp):
                ref_points.setdefault(d, []).append(2 * i + 1)
                ref_depths.setdefault(d, []).append(depth_at[i])
        if instr.is_call:
            for reg in caller_saved:
                raw_phys.setdefault(reg, []).append((2 * i, 2 * i + 2))

    # Reverse sweep: live ranges.  ``active`` maps a register to the end
    # point of the range currently being grown backward.
    for block in reversed(fn.blocks):
        bstart, bend = block_span[block.label]
        active: dict[Temp | PhysReg, int] = {}
        for t in liveness.live_out_temps(block.label):
            active[t] = bend
        for i in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[i]
            point = 2 * (pos[instr])
            for d in instr.defs:
                end = active.pop(d, None)
                raw = raw_temp if isinstance(d, Temp) else raw_phys
                if end is None:
                    # Dead def: the value still occupies the register for
                    # one point.
                    raw.setdefault(d, []).append((point + 1, point + 2))
                else:
                    raw.setdefault(d, []).append((point + 1, end))
            for u in instr.uses:
                if u not in active:
                    active[u] = point + 1
        for reg, end in active.items():
            raw = raw_temp if isinstance(reg, Temp) else raw_phys
            raw.setdefault(reg, []).append((bstart, end))

    # Temp ranges come out of the reverse sweep with non-increasing
    # starts, so they normalize in one reverse pass with no sort; phys
    # ranges interleave forward-sweep call clobbers and keep the generic
    # sorting constructor.
    temps = {t: Lifetime(t, RangeSet.from_reverse_sweep(ranges))
             for t, ranges in raw_temp.items()}
    reserved = {r: RangeSet(ranges) for r, ranges in raw_phys.items()}
    return LifetimeTable(
        fn=fn,
        machine=machine,
        linear=linear,
        pos=pos,
        block_span=block_span,
        temps=temps,
        reserved=reserved,
        ref_points=ref_points,
        ref_depths=ref_depths,
        liveness=liveness,
        loops=loops,
    )
