"""Persistent result store, declarative suite runner, unified reporting.

The evaluation's observability backbone (see ``docs/REPORTING.md``):

* :mod:`repro.results.store` — content-addressed, append-only record
  store (JSONL segments + an index keyed by workload × configuration ×
  machine, validated by code hash);
* :mod:`repro.results.suite` — declarative workloads × configurations
  matrices executed cache-miss-only through the ``pm.batch`` pool;
* :mod:`repro.results.report` — every paper table/figure, perf
  trajectories, golden checks, and run-to-run diffs, rendered from the
  one store.

``python -m repro suite`` populates a store; ``python -m repro report``
renders from it.
"""

from repro.results.report import (MissingCells, check_against_goldens,
                                  diff_runs, render_all,
                                  render_perf_trajectory, render_runs,
                                  render_serve_soaks)
from repro.results.store import (CellKey, Record, ResultStore, content_hash,
                                 store_path)
from repro.results.suite import (SUITES, SuiteError, SuiteOutcome,
                                 run_suite, standard_suite)

__all__ = [
    "CellKey",
    "MissingCells",
    "Record",
    "ResultStore",
    "SUITES",
    "SuiteError",
    "SuiteOutcome",
    "check_against_goldens",
    "content_hash",
    "diff_runs",
    "render_all",
    "render_perf_trajectory",
    "render_runs",
    "render_serve_soaks",
    "run_suite",
    "standard_suite",
    "store_path",
]
