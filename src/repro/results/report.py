"""Render every reproduced table and figure from the result store.

One store, one renderer per artifact: Table 1 (quality), Table 2 (spill
percentage), Table 3 (allocation time vs problem size), Figure 3 (spill
composition), the design-choice ablations, the block-order study, and
Section 3.1's two-pass comparison — plus the perf trajectory (folding
the repo's ``BENCH_*.json`` documents and any perf records in the store)
and a run-to-run regression diff.

Every renderer is a pure function of store records, so ``repro report``
output is byte-identical across invocations over the same store — the
property the golden files under ``benchmarks/results/`` pin down.  The
benchmark pytest wrappers call the same functions, so the tests and the
CLI can never drift apart.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.results.store import CellKey, Record, ResultStore
from repro.results.suite import (ABLATION_CONFIGS, ABLATION_PROGRAMS,
                                 BLOCK_ORDER_PROGRAMS, FAST_SET,
                                 REMAT_ALLOCATORS, REMAT_MACHINE,
                                 REMAT_PROGRAMS, TABLE3_SIZES,
                                 TWOPASS_PROGRAMS)
from repro.stats.report import format_table

#: Figure 3's category order (mirrors ``FIGURE3_CATEGORIES`` without
#: importing enum machinery into the reporting layer).
FIGURE3_KEYS = ["evict.load", "evict.store", "evict.move",
                "resolve.load", "resolve.store", "resolve.move"]

#: The artifacts ``render_all`` produces, in report order.
REPORT_FILES = ["table1.txt", "table2.txt", "table3.txt", "figure3.txt",
                "ablations.txt", "block_order.txt", "section31_twopass.txt",
                "remat_ablation.txt"]


class MissingCells(LookupError):
    """A renderer needed cells the store does not (yet) contain."""

    def __init__(self, idents: list[str]):
        self.idents = idents
        preview = ", ".join(idents[:3]) + ("..." if len(idents) > 3 else "")
        super().__init__(f"{len(idents)} cell(s) missing from the store "
                         f"({preview}); run `python -m repro suite` first")


def _cells(store: ResultStore, keys: list[CellKey]) -> list[Record]:
    records, missing = [], []
    for key in keys:
        record = store.peek(key)
        if record is None:
            missing.append(key.ident())
        else:
            records.append(record)
    if missing:
        raise MissingCells(missing)
    return records


def _quality(store: ResultStore, name: str, allocator: str,
             order: str = "layout", machine: str = "alpha") -> dict:
    [record] = _cells(store, [CellKey(workload=f"analog:{name}",
                                      allocator=allocator, order=order,
                                      machine=machine)])
    return record.data


def _fraction(data: dict) -> float:
    if not data["dynamic_instructions"]:
        return 0.0
    return data["total_spill"] / data["dynamic_instructions"]


# ----------------------------------------------------------------------
# The paper's tables and figures.
# ----------------------------------------------------------------------
def table1_rows(store: ResultStore, names: list[str]) -> list[list]:
    rows = []
    for name in names:
        b = _quality(store, name, "second-chance")
        c = _quality(store, name, "coloring")
        rows.append([
            name,
            b["dynamic_instructions"], c["dynamic_instructions"],
            b["dynamic_instructions"] / c["dynamic_instructions"],
            b["cycles"], c["cycles"],
            b["cycles"] / c["cycles"],
        ])
    return rows


def render_table1(store: ResultStore, names: list[str]) -> str:
    return format_table(
        ["benchmark", "binpack instrs", "GC instrs", "ratio",
         "binpack cycles", "GC cycles", "ratio"],
        table1_rows(store, names),
        title=("Table 1: dynamic instruction counts and simulated run time "
               "(binpack = second-chance binpacking, GC = graph coloring)"))


def table2_rows(store: ResultStore, names: list[str]) -> list[list]:
    rows = []
    for name in names:
        b = _quality(store, name, "second-chance")
        c = _quality(store, name, "coloring")
        rows.append([name,
                     f"{100 * _fraction(b):.3f}%",
                     f"{100 * _fraction(c):.3f}%"])
    return rows


def render_table2(store: ResultStore, names: list[str]) -> str:
    return format_table(
        ["benchmark", "binpack spill", "GC spill"],
        table2_rows(store, names),
        title=("Table 2: percentage of total dynamic instructions due to "
               "spill code (allocation candidates only)"))


def figure3_rows(store: ResultStore, names: list[str]) -> list[list]:
    rows = []
    for name in names:
        b = _quality(store, name, "second-chance")
        c = _quality(store, name, "coloring")
        if b["total_spill"] == 0 and c["total_spill"] == 0:
            continue  # the figure covers benchmarks with spill code
        base = b["total_spill"]
        for tag, data in ((f"{name}-b", b), (f"{name}-c", c)):
            if base == 0:
                # Nothing to normalize against: a ratio here would be a
                # raw count in disguise (cf. SpillBreakdown.normalized_to).
                cells = ["n/a" for _ in FIGURE3_KEYS]
            else:
                cells = [f"{data['spill_categories'][key] / base:.3f}"
                         for key in FIGURE3_KEYS]
            rows.append([tag] + cells + [data["total_spill"]])
    return rows


def render_figure3(store: ResultStore, names: list[str]) -> str:
    headers = (["bar"] + [f"{key.split('.')[0][:7]}.{key.split('.')[1]}s"
                          for key in FIGURE3_KEYS] + ["dyn spill"])
    return format_table(
        headers, figure3_rows(store, names),
        title=("Figure 3: spill-code composition, normalized to the "
               "binpacking total per benchmark (-b = binpack, -c = GC)"))


def ablation_rows(store: ResultStore) -> list[list]:
    rows = []
    for name in ABLATION_PROGRAMS:
        counts = {}
        for config, (allocator, options, cleanup) in ABLATION_CONFIGS.items():
            [record] = _cells(store, [CellKey(
                workload=f"analog:{name}", allocator=allocator,
                options=options, spill_cleanup=cleanup)])
            counts[config] = record.data["dynamic_instructions"]
        full = counts["full"]
        rows.append([name] + [counts[config] / full
                              for config in ABLATION_CONFIGS])
    return rows


def render_ablations(store: ResultStore) -> str:
    return format_table(
        ["benchmark"] + list(ABLATION_CONFIGS), ablation_rows(store),
        title=("Ablations: dynamic instructions relative to full "
               "second-chance binpacking (1.000 = full configuration)"))


def block_order_rows(store: ResultStore) -> list[list]:
    rows = []
    for name in BLOCK_ORDER_PROGRAMS:
        def dyn(order: str, allocator: str) -> int:
            [record] = _cells(store, [CellKey(
                workload=f"analog:{name}", allocator=allocator, order=order)])
            return record.data["dynamic_instructions"]
        base_b = dyn("layout", "second-chance")
        base_c = dyn("layout", "coloring")
        rows.append([
            name,
            dyn("rpo", "second-chance") / base_b,
            dyn("scrambled", "second-chance") / base_b,
            dyn("rpo", "coloring") / base_c,
            dyn("scrambled", "coloring") / base_c,
        ])
    return rows


def render_block_order(store: ResultStore) -> str:
    return format_table(
        ["benchmark", "binpack rpo", "binpack scrambled",
         "GC rpo", "GC scrambled"],
        block_order_rows(store),
        title=("Block-order sensitivity: dynamic instructions relative to "
               "the frontend layout order (linear scan depends on the "
               "linear order; coloring is the control)"))


def section31_rows(store: ResultStore) -> list[list]:
    rows = []
    for name in TWOPASS_PROGRAMS:
        sc = _quality(store, name, "second-chance")
        tp = _quality(store, name, "two-pass")
        rows.append([name, sc["dynamic_instructions"],
                     tp["dynamic_instructions"],
                     tp["dynamic_instructions"] / sc["dynamic_instructions"],
                     tp["cycles"] / sc["cycles"]])
    return rows


def render_section31(store: ResultStore) -> str:
    return format_table(
        ["benchmark", "second-chance instrs", "two-pass instrs",
         "instr ratio", "cycle ratio"],
        section31_rows(store),
        title=("Section 3.1: two-pass binpacking vs second chance "
               "(paper: wc 1.38x, eqntott 1.0004x)"))


def remat_rows(store: ResultStore) -> list[list]:
    rows = []
    for name in REMAT_PROGRAMS:
        for allocator in REMAT_ALLOCATORS:
            def data(context: str) -> dict:
                [record] = _cells(store, [CellKey(
                    workload=f"analog:{name}", allocator=allocator,
                    machine=REMAT_MACHINE, context=context)])
                return record.data

            def loads(d: dict) -> int:
                cats = d["spill_categories"]
                return cats.get("evict.load", 0) + cats.get("resolve.load", 0)

            base, remat = data(""), data("remat")
            remats = (remat["spill_categories"].get("evict.remat", 0)
                      + remat["spill_categories"].get("resolve.remat", 0))
            rows.append([f"{name}/{allocator}",
                         loads(base), loads(remat), remats,
                         base["cycles"], remat["cycles"],
                         f"{remat['cycles'] / base['cycles']:.4f}"])
    return rows


def render_remat(store: ResultStore) -> str:
    return format_table(
        ["program/allocator", "loads off", "loads on", "remats",
         "cycles off", "cycles on", "cycle ratio"],
        remat_rows(store),
        title=(f"Rematerialization ablation on {REMAT_MACHINE}: dynamic "
               "spill loads and cycles with constant remat off/on "
               "(re-issued li/fli replaces reloads; ratio < 1 = faster)"))


def table3_rows(store: ResultStore, sizes: list[int] | None = None,
                reps: int | None = None) -> tuple[list[list], int]:
    """Rows plus the repetition count the title reports (the minimum
    across cells — every cell is timed at least that many times)."""
    rows, reps_seen = [], []
    for n in (sizes if sizes is not None else TABLE3_SIZES):
        cells = {}
        for allocator in ("second-chance", "coloring"):
            record = None
            if reps is not None:
                record = store.peek(CellKey(workload=f"synthetic:{n}",
                                            allocator=allocator,
                                            kind="timing", reps=reps))
            if record is None:
                # Whatever repetition count the store has for this size.
                candidates = [r for r in store.iter_latest()
                              if r.key.kind == "timing"
                              and r.key.workload == f"synthetic:{n}"
                              and r.key.allocator == allocator]
                record = max(candidates, key=lambda r: r.seq, default=None)
            if record is None:
                raise MissingCells([CellKey(workload=f"synthetic:{n}",
                                            allocator=allocator,
                                            kind="timing",
                                            reps=reps or 3).ident()])
            cells[allocator] = record.data
        b, c = cells["second-chance"], cells["coloring"]
        reps_seen += [b["repetitions"], c["repetitions"]]
        shared = max(b["shared_setup_seconds"], c["shared_setup_seconds"])
        per_run = max(b["setup_seconds"], c["setup_seconds"])
        rows.append([n, b["candidates"], c["edges"], c["rounds"],
                     round(shared, 3), round(per_run, 4),
                     round(c["core_seconds"], 3),
                     round(b["core_seconds"], 3),
                     c["core_seconds"] / max(b["core_seconds"], 1e-9)])
    return rows, min(reps_seen)


def render_table3(store: ResultStore, sizes: list[int] | None = None,
                  reps: int | None = None) -> str:
    rows, reps_reported = table3_rows(store, sizes, reps)
    return format_table(
        ["target candidates", "candidates", "if-graph edges",
         "color rounds", "shared setup (s)", "per-run setup (s)",
         "GC core (s)", "binpack core (s)", "GC/binpack"],
        rows,
        title=("Table 3: allocation-core time vs problem size "
               f"(median of {reps_reported} repetitions per cell; shared "
               "setup paid once per module, per-run setup is the cached-"
               "analysis rebind each repetition pays)"))


def render_all(store: ResultStore, names: list[str] | None = None,
               ) -> dict[str, str]:
    """Every checked-in artifact, keyed by its golden filename."""
    names = list(names if names is not None else FAST_SET)
    return {
        "table1.txt": render_table1(store, names),
        "table2.txt": render_table2(store, names),
        "table3.txt": render_table3(store),
        "figure3.txt": render_figure3(store, names),
        "ablations.txt": render_ablations(store),
        "block_order.txt": render_block_order(store),
        "section31_twopass.txt": render_section31(store),
        "remat_ablation.txt": render_remat(store),
    }


# ----------------------------------------------------------------------
# Golden comparison (the CI report-smoke gate).
# ----------------------------------------------------------------------
#: Artifacts whose cells are wall-clock measurements: compared
#: structurally (row keys and deterministic columns), not byte-for-byte,
#: because a CI runner cannot reproduce another machine's timings.
TIMING_FILES = {"table3.txt"}


def _table3_shape(text: str) -> list[tuple[str, ...]]:
    """The deterministic prefix of every table3 data row: target size,
    candidates, edges, color rounds."""
    rows = []
    for line in text.splitlines():
        fields = line.split()
        if fields and re.fullmatch(r"[\d,]+", fields[0]):
            rows.append(tuple(fields[:4]))
    return rows


def check_against_goldens(rendered: dict[str, str], golden_dir: Path,
                          ) -> list[str]:
    """Compare rendered artifacts with the checked-in goldens.

    Deterministic artifacts must match byte-for-byte; timing artifacts
    (``table3.txt``) must match on their deterministic columns.  Returns
    failure messages (empty = pass).
    """
    failures = []
    for filename, text in rendered.items():
        golden_path = Path(golden_dir) / filename
        if not golden_path.is_file():
            failures.append(f"{filename}: no golden at {golden_path}")
            continue
        golden = golden_path.read_text().rstrip("\n")
        current = text.rstrip("\n")
        if filename in TIMING_FILES:
            if _table3_shape(current) != _table3_shape(golden):
                failures.append(
                    f"{filename}: deterministic columns (size, candidates, "
                    f"edges, rounds) differ from the golden")
            continue
        if current != golden:
            for i, (a, b) in enumerate(zip(golden.splitlines(),
                                           current.splitlines())):
                if a != b:
                    failures.append(f"{filename}: first difference at line "
                                    f"{i + 1}:\n  golden:  {a}\n"
                                    f"  current: {b}")
                    break
            else:
                failures.append(f"{filename}: line count differs "
                                f"({len(golden.splitlines())} golden vs "
                                f"{len(current.splitlines())} current)")
    return failures


# ----------------------------------------------------------------------
# Perf trajectories: BENCH_*.json documents plus stored perf records.
# ----------------------------------------------------------------------
def _bench_documents(repo_root: Path) -> list[tuple[str, dict]]:
    points = []
    for path in sorted(Path(repo_root).glob("BENCH_*.json"),
                       key=lambda p: int(re.search(r"(\d+)", p.stem).group())):
        try:
            with open(path) as fh:
                points.append((path.name, json.load(fh)))
        except (OSError, json.JSONDecodeError):
            continue
    return points


def render_perf_trajectory(store: ResultStore | None = None,
                           repo_root: str | Path = ".") -> str:
    """The perf-bench trajectory: every ``BENCH_*.json`` point (before /
    after / speedup per kernel group) followed by any perf records the
    store accumulated through ``tools/perf_bench.py --store``."""
    groups: list[str] = []
    rows: list[list] = []

    def add_point(label: str, doc: dict) -> None:
        for phase in ("before", "after"):
            run = doc.get(phase)
            if not run:
                continue
            for group in run.get("groups", {}):
                if group not in groups:
                    groups.append(group)
            rows.append([label, phase, run.get("mode", "?")]
                        + [run["groups"].get(g) for g in groups])
        speedup = doc.get("speedup")
        if speedup:
            rows.append([label, "speedup", ""]
                        + [f"{speedup[g]:.2f}x" if g in speedup else ""
                           for g in groups])

    for name, doc in _bench_documents(Path(repo_root)):
        add_point(name, doc)
    if store is not None:
        for record in store.iter_latest():
            if record.key.kind != "perf":
                continue
            for past in store.history(record.key):
                add_point(f"store:{past.run}",
                          {"after": past.data})
    if not rows:
        return "perf trajectory: no BENCH_*.json documents or perf records"
    # Pad early rows that predate later-discovered groups.
    width = 3 + len(groups)
    for row in rows:
        row.extend([""] * (width - len(row)))
    headers = ["trajectory", "phase", "mode"] + [f"{g} (s)" for g in groups]
    out = format_table(headers, [
        [cell if cell is not None else "" for cell in row] for row in rows],
        title="Perf trajectory (group medians per recorded point)")
    detail = render_sim_trajectory(repo_root=repo_root)
    if detail:
        out += "\n\n" + detail
    detail = render_interference_trajectory(repo_root=repo_root)
    if detail:
        out += "\n\n" + detail
    soaks = render_serve_soaks(store, repo_root=repo_root)
    if soaks:
        out += "\n\n" + soaks
    return out


def _render_cell_trajectory(prefix: str, title: str,
                            repo_root: str | Path = ".") -> str:
    """Per-benchmark trajectory of the cells named ``{prefix}.*``.

    The group table above sums these cells; this one follows each cell
    individually across every ``BENCH_*.json`` point, with a per-cell
    speedup row wherever a point recorded both phases.  Points without
    any matching cell (e.g. a serve-soak point) are skipped.
    """
    dotted = prefix + "."
    names: list[str] = []
    rows: list[list[str]] = []
    for label, doc in _bench_documents(Path(repo_root)):
        phases = {p: doc[p] for p in ("before", "after") if doc.get(p)}
        if not any(name.startswith(dotted)
                   for run in phases.values()
                   for name in run.get("benchmarks", {})):
            continue
        for run in phases.values():
            for name in run.get("benchmarks", {}):
                if name.startswith(dotted) and name not in names:
                    names.append(name)

        def cell_ms(run: dict, name: str) -> float | None:
            cell = run.get("benchmarks", {}).get(name)
            return None if cell is None else cell["median_s"] * 1e3

        for phase, run in phases.items():
            rows.append([label, phase]
                        + [f"{ms:.1f}" if (ms := cell_ms(run, n)) is not None
                           else "" for n in names])
        if len(phases) == 2:
            speedups = []
            for n in names:
                old, new = (cell_ms(phases["before"], n),
                            cell_ms(phases["after"], n))
                speedups.append(f"{old / new:.2f}x" if old and new else "")
            rows.append([label, "speedup"] + speedups)
    if not names:
        return ""
    width = 2 + len(names)
    for row in rows:
        row.extend([""] * (width - len(row)))
    headers = ["trajectory", "phase"] + [f"{n} (ms)" for n in names]
    return format_table(headers, rows, title=title)


def render_sim_trajectory(repo_root: str | Path = ".") -> str:
    """Per-benchmark trajectory of the ``sim.*`` cells across every
    ``BENCH_*.json`` point (the PR 5 pre-decode rewrite, the PR 10
    dense-state rewrite, ...)."""
    return _render_cell_trajectory(
        "sim", "Simulator trajectory (per-cell medians)",
        repo_root=repo_root)


def render_interference_trajectory(repo_root: str | Path = ".") -> str:
    """Per-benchmark trajectory of the ``interference.*`` cells (the
    PR 5 mask-based build, the PR 7 interval sweep, ...)."""
    return _render_cell_trajectory(
        "interference", "Interference-build trajectory (per-cell medians)",
        repo_root=repo_root)


def render_serve_soaks(store: ResultStore | None = None,
                       repo_root: str | Path = ".") -> str:
    """The allocation service's soak points: cache hit/miss counters and
    latency percentiles per load pass, from every ``BENCH_*.json`` the
    soak driver wrote plus any ``kind="perf"`` store records carrying a
    ``serve`` payload (``repro serve --soak --record``)."""
    rows: list[list[str]] = []

    def add(label: str, pass_: dict) -> None:
        rows.append([
            label, pass_.get("label", "?"), pass_.get("requests", 0),
            pass_.get("hits", 0), pass_.get("misses", 0),
            pass_.get("errors", 0),
            f"{100 * pass_.get('hit_rate', 0.0):.1f}%",
            f"{1e3 * pass_.get('median_s', 0.0):.2f}",
            f"{1e3 * pass_.get('p90_s', 0.0):.2f}",
            f"{pass_.get('throughput_rps', 0.0):.1f}"])

    for name, doc in _bench_documents(Path(repo_root)):
        for phase in ("before", "after"):
            run = doc.get(phase) or {}
            if isinstance(run.get("serve"), dict):
                add(name, run["serve"])
    if store is not None:
        for record in store.iter_latest():
            if record.key.kind != "perf":
                continue
            for past in store.history(record.key):
                if isinstance(past.data.get("serve"), dict):
                    add(f"store:{past.run}", past.data["serve"])
    if not rows:
        return ""
    return format_table(
        ["trajectory", "pass", "requests", "hits", "misses", "errors",
         "hit rate", "median (ms)", "p90 (ms)", "req/s"],
        rows, title="Serve soak trajectory (cache effectiveness per pass)")


# ----------------------------------------------------------------------
# Run-to-run regression diff.
# ----------------------------------------------------------------------
#: Record fields compared by ``--diff``, per cell kind.
_DIFF_FIELDS = {
    "quality": ["dynamic_instructions", "cycles", "total_spill",
                "allocated_sha"],
    "timing": ["candidates", "edges", "rounds", "core_seconds"],
    "perf": [],
}


def diff_runs(store: ResultStore, run_a: str, run_b: str) -> str:
    """A regression report between two suite runs.

    Compares the records each run's manifest points at, cell by cell:
    quality cells on their observable counts (and the allocated-module
    hash, which catches "same counts, different code"), timing cells on
    their deterministic size columns plus the core-seconds ratio.
    """
    a, b = store.manifest(run_a), store.manifest(run_b)
    missing = [run for run, doc in ((run_a, a), (run_b, b)) if doc is None]
    if missing:
        known = ", ".join(doc["run"] for doc in store.runs()) or "(none)"
        raise LookupError(f"unknown run(s) {', '.join(missing)}; "
                          f"store has: {known}")
    cells_a, cells_b = a["cells"], b["cells"]
    shared = [i for i in cells_a if i in cells_b]
    only_a = [i for i in cells_a if i not in cells_b]
    only_b = [i for i in cells_b if i not in cells_a]
    rows, identical = [], 0
    for ident in shared:
        ra, rb = store.record(cells_a[ident]), store.record(cells_b[ident])
        if ra is None or rb is None:
            continue
        if ra.seq == rb.seq:
            identical += 1
            continue
        changed = False
        for fname in _DIFF_FIELDS.get(ra.key.kind, []):
            va, vb = ra.data.get(fname), rb.data.get(fname)
            if va == vb:
                continue
            changed = True
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)) \
                    and va:
                shown_a, shown_b, ratio = va, vb, f"{vb / va:.3f}"
            else:
                shown_a = str(va)[:12]
                shown_b = str(vb)[:12]
                ratio = ""
            rows.append([ident, fname, shown_a, shown_b, ratio])
        if not changed:
            identical += 1
    lines = [f"diff {run_a} -> {run_b}: {len(shared)} shared cell(s), "
             f"{identical} identical, {len(rows)} changed value(s)"]
    if only_a:
        lines.append(f"only in {run_a}: {len(only_a)} cell(s)")
    if only_b:
        lines.append(f"only in {run_b}: {len(only_b)} cell(s)")
    if rows:
        lines.append(format_table(
            ["cell", "field", run_a, run_b, "ratio"], rows))
    return "\n".join(lines)


def render_runs(store: ResultStore) -> str:
    """The store's run manifests as a table."""
    rows = [[doc["run"], doc.get("label") or "-",
             doc["stats"].get("cells", len(doc["cells"])),
             doc["stats"].get("computed", "?"),
             doc["stats"].get("hits", "?"),
             doc["stats"].get("invalidated", "?")]
            for doc in store.runs()]
    return format_table(
        ["run", "label", "cells", "computed", "hits", "invalidated"],
        rows, title=f"store runs ({store.root})")


__all__ = ["FIGURE3_KEYS", "MissingCells", "REPORT_FILES", "TIMING_FILES",
           "ablation_rows", "block_order_rows", "check_against_goldens",
           "diff_runs", "figure3_rows", "render_ablations", "render_all",
           "render_block_order", "render_figure3",
           "render_interference_trajectory", "render_perf_trajectory",
           "render_remat", "render_runs", "render_section31",
           "render_serve_soaks", "render_sim_trajectory", "render_table1",
           "render_table2", "render_table3", "remat_rows", "section31_rows",
           "table1_rows", "table2_rows", "table3_rows"]
