"""The declarative suite runner: workloads × configurations → the store.

A *suite* is a plain list of :class:`~repro.results.store.CellKey`
cells.  The definitions below expand the evaluation's whole matrix —
benchmark analogs, sized synthetics, and the deterministic fuzz corpus,
crossed with the four allocators, the ``BinpackOptions`` ablation grid,
block orders, and machines — and :func:`run_suite` executes only the
cells whose content hash misses the store, through the same
:func:`repro.pm.batch.run_batch` process pool the rest of the system
uses (``--jobs N``: parallel results are byte-identical to serial, the
workers are pure functions of their cell spec).

Two cell kinds exist:

* ``quality`` — allocate + simulate once; the record carries dynamic
  counts, the Figure 3 spill categories, the full metrics snapshot, and
  the phase-profiler breakdown, so quality, compile-time, and
  cache-behaviour counters are joinable per cell.
* ``timing`` — Table 3's protocol: one warm session per cell, the
  allocator core re-run ``reps`` times, medians recorded (with the
  shared-setup versus per-run-setup versus allocator-core split).

Workload specs are strings so every cell is picklable and greppable:
``analog:<name>``, ``synthetic:<candidates>``, ``fuzz:<seed>``.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler
from repro.results.store import CellKey, Record, ResultStore, content_hash

#: The quality-table analog subsets (mirrors ``REPRO_BENCH_SET``).
FAST_SET = ["doduc", "fpppp", "compress", "m88ksim", "sort"]

#: The fixed workload lists of the non-quality studies.
ABLATION_PROGRAMS = ["doduc", "fpppp", "compress", "sort"]
BLOCK_ORDER_PROGRAMS = ["doduc", "fpppp", "sort", "m88ksim"]
BLOCK_ORDERS = ["layout", "rpo", "scrambled"]
TWOPASS_PROGRAMS = ["wc", "eqntott"]
TABLE3_SIZES = [245, 6218, 6697]

#: The rematerialization ablation: the two constant-heavy spill programs
#: (the paper's own two-pass pair) on a register file small enough that
#: single-definition constants actually spill — picked empirically;
#: larger files leave eqntott spill-free and the ablation vacuous.
REMAT_PROGRAMS = ["wc", "eqntott"]
REMAT_MACHINE = "tiny:4x4"
REMAT_ALLOCATORS = ("second-chance", "two-pass", "coloring", "poletto")

#: The ablation grid: study column -> (allocator, BinpackOptions
#: deviations, spill_cleanup).  Order is the report's column order.
ABLATION_CONFIGS: dict[str, tuple[str, tuple[tuple[str, bool], ...], bool]] = {
    "full": ("second-chance", (), False),
    "no-holes": ("second-chance", (("use_holes", False),), False),
    "no-esc": ("second-chance", (("early_second_chance", False),), False),
    "no-move-elim": ("second-chance", (("move_elimination", False),), False),
    "no-consistency": ("second-chance",
                       (("avoid_consistent_stores", False),), False),
    "conservative": ("second-chance",
                     (("conservative_consistency", True),), False),
    "poletto": ("poletto", (), False),
    "+cleanup": ("second-chance", (), True),
}


class SuiteError(RuntimeError):
    """A cell failed to execute (oracle mismatch, unknown spec, ...)."""


# ----------------------------------------------------------------------
# Workload construction (pure functions of the spec strings).
# ----------------------------------------------------------------------
def machine_from_spec(spec: str):
    from repro.target import alpha, tiny

    if spec == "alpha":
        return alpha()
    if spec.startswith("tiny:"):
        gpr, _, fpr = spec[len("tiny:"):].partition("x")
        return tiny(int(gpr), int(fpr))
    raise SuiteError(f"unknown machine spec {spec!r} "
                     "(alpha, tiny:<G>x<F>, or auto for fuzz workloads)")


def build_workload(workload: str, machine_spec: str, order: str):
    """Build ``(module, machine)`` for one cell, block order applied.

    Deterministic: the same spec always yields the same printed module,
    which is what makes content hashing meaningful.
    """
    kind, _, arg = workload.partition(":")
    if kind == "fuzz":
        if machine_spec != "auto":
            raise SuiteError("fuzz workloads derive their machine from the "
                             "seed; use machine='auto'")
        from repro.fuzz.generate import program_for_seed

        program = program_for_seed(int(arg))
        module, machine = program.module, program.machine
    else:
        machine = machine_from_spec(machine_spec)
        if kind == "analog":
            from repro.workloads.programs import build_program

            module = build_program(arg, machine)
        elif kind == "synthetic":
            from repro.workloads.synthetic import scaled_module

            module = scaled_module(int(arg))
        else:
            raise SuiteError(f"unknown workload spec {workload!r} "
                             "(analog:<name>, synthetic:<n>, fuzz:<seed>)")
    _apply_order(module, order)
    return module, machine


def _apply_order(module, order: str) -> None:
    """Reorder every function's blocks in place (the block-order study).

    ``scrambled`` reproduces the historical harness exactly: entry block
    pinned, the rest shuffled by a fresh seeded RNG per function.
    """
    import random

    from repro.cfg.order import reorder_reverse_postorder

    if order == "layout":
        return
    for fn in module.functions.values():
        if order == "rpo":
            reorder_reverse_postorder(fn)
        elif order == "scrambled":
            rng = random.Random(0xC0FFEE)
            rest = fn.blocks[1:]
            rng.shuffle(rest)
            fn.blocks[:] = [fn.blocks[0]] + rest
        else:
            raise SuiteError(f"unknown block order {order!r}")


def machine_signature(machine) -> str:
    """The part of the machine that affects allocation, as stable text."""
    return (f"{machine.name}/gpr={machine.n_gpr}/fpr={machine.n_fpr}")


def cell_code_hash(module_text: str, machine) -> str:
    """The content hash a record is keyed under: the workload's printed
    IR plus the machine signature (the cell key itself carries the
    configuration, so it does not need hashing in)."""
    return content_hash(module_text, machine_signature(machine))


def _allocator_for(key: CellKey):
    from repro.allocators import make_allocator
    from repro.allocators.binpack.allocator import (BinpackOptions,
                                                    SecondChanceBinpacking)

    if key.options and key.allocator != "second-chance":
        raise SuiteError(f"{key.ident()}: BinpackOptions apply only to the "
                         "second-chance allocator")
    if key.options:
        return SecondChanceBinpacking(BinpackOptions(**dict(key.options)))
    return make_allocator(key.allocator)


# ----------------------------------------------------------------------
# Cell execution (module-level, picklable: process-pool workers).
# ----------------------------------------------------------------------
def _phase_summary(profiler: PhaseProfiler) -> dict:
    """The three-way split every record embeds (plus the raw table)."""
    phases = {name: {"calls": stat.calls,
                     "total_s": round(stat.total_seconds, 6),
                     "self_s": round(stat.self_seconds, 6)}
              for name, stat in profiler.phases.items()}
    def total(prefix: str) -> float:
        return round(sum(stat.total_seconds
                         for name, stat in profiler.phases.items()
                         if name == prefix
                         or name.startswith(prefix + ".")), 6)
    return {"phases": phases,
            "setup_s": total("setup"),
            "allocate_s": total("allocate"),
            "resolve_s": total("allocate.resolve"),
            "pipeline_s": total("pipeline")}


def execute_cell(payload: tuple) -> dict:
    """Process-pool worker: compute one cell's record payload.

    The payload is ``(key-as-json, code_hash)``; the returned dict is the
    record's ``data``.  Pure: no store access, no global state — worker
    metrics come back via ``MetricsRegistry.snapshot()`` and are restored
    by the parent (see :meth:`MetricsRegistry.restore`).
    """
    key_doc, code_hash = payload
    key = CellKey.from_json(key_doc)
    module, machine = build_workload(key.workload, key.machine, key.order)
    if key.kind == "timing":
        return _execute_timing(key, module, machine)
    return _execute_quality(key, module, machine)


def _execute_quality(key: CellKey, module, machine) -> dict:
    from repro.ir.printer import print_module
    from repro.pm.session import CompilationSession
    from repro.sim import simulate
    from repro.sim.machine import outputs_equal
    from repro.spill import AllocationContext
    from repro.stats.spill import (FIGURE3_CATEGORIES, REMAT_CATEGORIES,
                                   spill_breakdown)

    reference = simulate(module, machine)
    session = CompilationSession(module, machine)
    metrics = MetricsRegistry()
    profiler = PhaseProfiler()
    result = session.run(_allocator_for(key),
                         spill_cleanup=key.spill_cleanup,
                         profiler=profiler, metrics=metrics,
                         context=AllocationContext.parse(key.context))
    outcome = simulate(result.module, machine)
    if not outputs_equal(outcome.output, reference.output):
        raise SuiteError(f"{key.ident()}: allocation changed observable "
                         "behaviour")
    breakdown = spill_breakdown(outcome)
    stats = result.stats
    return {
        "dynamic_instructions": outcome.dynamic_instructions,
        "cycles": outcome.cycles,
        "result": outcome.result,
        "spill_categories": {
            f"{phase.value}.{kind.value}": breakdown.category(phase, kind)
            for phase, kind in FIGURE3_CATEGORIES + REMAT_CATEGORIES},
        "total_spill": breakdown.total_spill,
        "allocated_sha": content_hash(print_module(result.module)),
        "alloc": {
            "alloc_seconds": round(stats.alloc_seconds, 6),
            "candidates": stats.total_candidates(),
            "spilled_temps": sum(stats.spilled_temps.values()),
            "moves_eliminated": stats.moves_eliminated,
            "interference_edges": sum(stats.interference_edges.values()),
            "coloring_rounds": sum(stats.coloring_iterations.values()),
            "dataflow_iterations": sum(stats.dataflow_iterations.values()),
            "dce_removed": result.dce_removed,
            "moves_removed": result.moves_removed,
        },
        "metrics": stats.metrics.snapshot(),
        "profile": _phase_summary(profiler),
    }


def _execute_timing(key: CellKey, module, machine) -> dict:
    """Table 3's protocol: warm session, ``reps`` timed core runs."""
    from repro.allocators.base import allocate_module
    from repro.pm.session import CompilationSession

    session = CompilationSession(module, machine)
    cold = PhaseProfiler()
    with cold.phase("setup"):
        for fn in session.module.functions.values():
            session.shared(fn, profiler=cold)
    samples, setup_samples = [], []
    for _ in range(max(1, key.reps)):
        working = session.clone_base()
        profiler = PhaseProfiler()
        stats = allocate_module(working, _allocator_for(key), machine,
                                profiler=profiler, session=session)
        samples.append(stats)
        setup_samples.append(profiler.seconds("setup"))
    stats = samples[-1]
    return {
        "core_seconds": round(statistics.median(
            s.alloc_seconds for s in samples), 6),
        "setup_seconds": round(statistics.median(setup_samples), 6),
        "shared_setup_seconds": round(cold.seconds("setup"), 6),
        "repetitions": len(samples),
        "candidates": stats.total_candidates(),
        "edges": sum(stats.interference_edges.values()),
        "rounds": sum(stats.coloring_iterations.values()),
        "metrics": stats.metrics.snapshot(),
    }


# ----------------------------------------------------------------------
# Suite definitions.
# ----------------------------------------------------------------------
def quality_specs(names: list[str], *, machine: str = "alpha",
                  allocators: tuple[str, ...] = ("second-chance", "coloring"),
                  ) -> list[CellKey]:
    return [CellKey(workload=f"analog:{name}", allocator=allocator,
                    machine=machine)
            for name in names for allocator in allocators]


def ablation_specs() -> list[CellKey]:
    return [CellKey(workload=f"analog:{name}", allocator=allocator,
                    options=options, spill_cleanup=cleanup)
            for name in ABLATION_PROGRAMS
            for allocator, options, cleanup in ABLATION_CONFIGS.values()]


def block_order_specs() -> list[CellKey]:
    return [CellKey(workload=f"analog:{name}", allocator=allocator,
                    order=order)
            for name in BLOCK_ORDER_PROGRAMS
            for order in BLOCK_ORDERS
            for allocator in ("second-chance", "coloring")]


def twopass_specs() -> list[CellKey]:
    return [CellKey(workload=f"analog:{name}", allocator=allocator)
            for name in TWOPASS_PROGRAMS
            for allocator in ("second-chance", "two-pass")]


def remat_specs() -> list[CellKey]:
    """The rematerialization ablation: every allocator on the remat pair,
    once with the default context and once with remat on."""
    return [CellKey(workload=f"analog:{name}", allocator=allocator,
                    machine=REMAT_MACHINE, context=context)
            for name in REMAT_PROGRAMS
            for allocator in REMAT_ALLOCATORS
            for context in ("", "remat")]


def table3_specs(reps: int = 3, sizes: list[int] | None = None,
                 ) -> list[CellKey]:
    return [CellKey(workload=f"synthetic:{n}", allocator=allocator,
                    kind="timing", reps=max(3, reps))
            for n in (sizes if sizes is not None else TABLE3_SIZES)
            for allocator in ("second-chance", "coloring")]


def fuzz_specs(seeds: range | list[int],
               allocators: tuple[str, ...] = ("second-chance", "two-pass",
                                              "coloring", "poletto"),
               ) -> list[CellKey]:
    return [CellKey(workload=f"fuzz:{seed}", allocator=allocator,
                    machine="auto")
            for seed in seeds for allocator in allocators]


def standard_suite(bench_set: str = "fast", *, reps: int = 3,
                   fuzz_seeds: int = 0) -> list[CellKey]:
    """Every cell the checked-in reports need, deduplicated.

    ``bench_set``: ``fast`` (the golden subset) or ``full`` (all eleven
    analogs plus a tiny-machine sweep and, with ``fuzz_seeds``, the
    deterministic fuzz corpus).
    """
    names = list(FAST_SET)
    specs: list[CellKey] = []
    if bench_set == "full":
        from repro.workloads.programs import PROGRAM_NAMES

        names = list(PROGRAM_NAMES)
    specs += quality_specs(names)
    specs += ablation_specs()
    specs += block_order_specs()
    specs += twopass_specs()
    specs += remat_specs()
    specs += table3_specs(reps)
    if bench_set == "full":
        specs += quality_specs(["wc", "compress"], machine="tiny:8x8",
                               allocators=("second-chance", "two-pass",
                                           "coloring", "poletto"))
    if fuzz_seeds:
        specs += fuzz_specs(range(fuzz_seeds))
    return dedup_specs(specs)


def dedup_specs(specs: list[CellKey]) -> list[CellKey]:
    """Drop duplicate cells, preserving first-seen order (the quality
    and block-order studies share their ``layout`` cells, for example)."""
    seen: set[str] = set()
    out: list[CellKey] = []
    for spec in specs:
        ident = spec.ident()
        if ident not in seen:
            seen.add(ident)
            out.append(spec)
    return out


#: Named suites for the CLI (``repro suite quick``).
SUITES = {
    "quick": lambda reps=3: standard_suite("fast", reps=reps),
    "full": lambda reps=3: standard_suite("full", reps=reps, fuzz_seeds=12),
}


# ----------------------------------------------------------------------
# The runner.
# ----------------------------------------------------------------------
@dataclass
class SuiteOutcome:
    """What one :func:`run_suite` invocation did."""

    run_id: str
    cells: int = 0
    computed: int = 0
    hits: int = 0
    invalidated: int = 0
    records: dict[str, Record] = field(default_factory=dict, repr=False)

    def summary(self) -> str:
        return (f"suite run {self.run_id}: {self.cells} cells, "
                f"{self.computed} computed, {self.hits} cached, "
                f"{self.invalidated} invalidated")


def run_suite(specs: list[CellKey], store: ResultStore, *, jobs: int = 1,
              label: str = "", progress=None) -> SuiteOutcome:
    """Execute ``specs`` against ``store``, computing only cache misses.

    Hashing pass first (builds every workload once, in the parent), then
    the misses fan out through :func:`repro.pm.batch.run_batch` — with
    ``jobs > 1`` that is the process pool, and the resulting store
    contents are byte-identical to a serial run (workers are pure and
    results are committed in spec order).
    """
    from repro.ir.printer import print_module
    from repro.pm.batch import run_batch

    say = progress or (lambda msg: None)
    specs = dedup_specs(specs)
    hashes: dict[str, str] = {}
    module_hash_cache: dict[tuple[str, str, str], str] = {}
    for spec in specs:
        wkey = (spec.workload, spec.machine, spec.order)
        cached = module_hash_cache.get(wkey)
        if cached is None:
            module, machine = build_workload(*wkey)
            cached = cell_code_hash(print_module(module), machine)
            module_hash_cache[wkey] = cached
        hashes[spec.ident()] = cached

    run_id = store.begin_run(label)
    outcome = SuiteOutcome(run_id=run_id, cells=len(specs))
    before = store.metrics.snapshot()
    try:
        misses: list[CellKey] = []
        for spec in specs:
            record = store.lookup(spec, hashes[spec.ident()])
            if record is None:
                misses.append(spec)
            else:
                store.note_hit(spec, record)
                outcome.records[spec.ident()] = record
        say(f"{len(specs)} cells: {len(specs) - len(misses)} cached, "
            f"{len(misses)} to compute (jobs={max(1, jobs)})")
        payloads = [(spec.to_json(), hashes[spec.ident()])
                    for spec in misses]
        datas = run_batch(execute_cell, payloads, jobs=jobs)
        for spec, data in zip(misses, datas):
            record = store.put(spec, hashes[spec.ident()], data)
            outcome.records[spec.ident()] = record
            say(f"  computed {spec.ident()}")
    finally:
        moved = store.metrics.diff(before)
        outcome.computed = int(moved.get("results.cells.computed", 0))
        outcome.hits = int(moved.get("results.cells.hits", 0))
        outcome.invalidated = int(
            moved.get("results.cells.invalidated", 0))
        store.finish_run({"cells": outcome.cells,
                          "computed": outcome.computed,
                          "hits": outcome.hits,
                          "invalidated": outcome.invalidated,
                          "label": label})
    return outcome


__all__ = ["ABLATION_CONFIGS", "ABLATION_PROGRAMS", "BLOCK_ORDERS",
           "BLOCK_ORDER_PROGRAMS", "FAST_SET", "REMAT_ALLOCATORS",
           "REMAT_MACHINE", "REMAT_PROGRAMS", "SUITES", "SuiteError",
           "SuiteOutcome", "TABLE3_SIZES", "TWOPASS_PROGRAMS",
           "block_order_specs", "build_workload", "cell_code_hash",
           "dedup_specs", "execute_cell", "fuzz_specs", "quality_specs",
           "remat_specs", "run_suite", "standard_suite", "table3_specs",
           "twopass_specs"]
