"""The persistent result store: content-addressed, append-only run records.

Every observable the evaluation reports — a Table 1 quality cell, a
Table 3 timing cell, a perf-bench run — is one *record* in this store.
Records live in append-only JSONL segment files (one segment per suite
invocation), and an index maps each logical *cell* to its newest record:

* **cell key** (:class:`CellKey`) — the coordinates of one measurement:
  workload (``analog:doduc``, ``synthetic:6218``, ``fuzz:7``), block
  order, machine, allocator, :class:`BinpackOptions` deviations from the
  defaults, pipeline flags, and the record kind (``quality`` /
  ``timing`` / ``perf``).  The key is pure data and its :meth:`ident`
  string is stable across processes and ``PYTHONHASHSEED`` values.
* **code hash** — a SHA-256 over the workload's printed IR and the
  machine signature.  A record only *hits* when its stored code hash
  matches the current one; a mismatch (the generator changed, an analog
  was edited, ``BinpackOptions`` semantics moved the printed module)
  counts as an invalidation and forces a recompute.  This is what makes
  re-runs touch only what changed.

Store layout (all plain JSON, ``sort_keys=True`` everywhere so the files
are byte-stable)::

    <root>/segments/seg-r0001.jsonl   one record per line, append-only
    <root>/runs.jsonl                 one manifest per suite invocation
    <root>/index.json                 ident -> newest record seq (a cache;
                                      rebuilt from the segments on open)
    <root>/.lock                      advisory flock for cross-process runs

Durability contract (what a ``kill -9`` can and cannot lose):

* **Commit point = ``finish_run``** — the segment and ``runs.jsonl``
  are flushed *and* ``fsync``'d there, and ``index.json`` is replaced
  atomically (tempfile + ``os.replace``), so a crash never leaves a
  half-written index and a finished run is never lost.
* A crash *mid-append* can leave a torn final JSONL line; loading
  skips it with a warning (``results.load.torn_lines``) instead of
  raising, and appends re-align on a fresh line.  ``index.json`` is
  only ever a convenience snapshot — a corrupt one is rebuilt from the
  segments on the next open, never trusted.
* Concurrent writers (a server and a CLI sharing one cache directory)
  are serialized by an advisory ``fcntl.flock`` held from
  :meth:`begin_run` to :meth:`finish_run`; ``begin_run`` re-reads the
  store under the lock, so run ids and record seqs stay unique across
  processes.

Store behaviour is metered through :mod:`repro.obs.metrics` as
``results.cells.computed`` / ``.hits`` / ``.invalidated`` (plus
``results.load.torn_lines`` / ``results.index.rebuilt`` for the
crash-recovery paths).

See ``docs/REPORTING.md`` for the record schema and a cookbook.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

try:                                    # POSIX only; the store degrades to
    import fcntl                        # lockless on other platforms.
except ImportError:                     # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro.obs.metrics import MetricsRegistry

#: Bumped when the record layout changes incompatibly; old records then
#: simply never hit and are recomputed into new segments.
SCHEMA_VERSION = 1

#: Environment override for the default store location.
STORE_ENV = "REPRO_RESULT_STORE"

#: The default store root, relative to the working directory (the repo
#: root in every documented workflow).
DEFAULT_STORE = Path("benchmarks") / "results" / "store"


def store_path(root: str | os.PathLike | None = None) -> Path:
    """Resolve the store root: explicit arg, ``$REPRO_RESULT_STORE``,
    then the checked-in default under ``benchmarks/results/store``."""
    if root is not None:
        return Path(root)
    env = os.environ.get(STORE_ENV)
    if env:
        return Path(env)
    return DEFAULT_STORE


def _fsync(handle) -> None:
    """Flush ``handle`` down to the disk (a commit-point barrier)."""
    handle.flush()
    os.fsync(handle.fileno())


def _fsync_dir(path: Path) -> None:
    """Fsync a directory so a just-renamed/created entry survives a
    crash (no-op where directories cannot be opened, e.g. Windows)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def read_jsonl(path: Path, *, metrics: MetricsRegistry | None = None,
               ) -> Iterator[dict]:
    """Yield the JSON documents of one JSONL file, tolerating a torn
    tail.

    A process killed mid-append (crash, ``kill -9``, full disk) leaves a
    partial final line; that line was never committed, so it is skipped
    with a :class:`UserWarning` (and metered as
    ``results.load.torn_lines``) instead of poisoning every later load
    with ``json.JSONDecodeError``.  Garbage on *interior* lines gets the
    same treatment — recovery over refusal — but is equally warned
    about, so silent corruption never goes unnoticed.
    """
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                doc = json.loads(stripped)
            except json.JSONDecodeError:
                warnings.warn(
                    f"{path}:{lineno}: skipping torn/garbage JSONL line "
                    f"({len(line)} bytes)", stacklevel=2)
                if metrics is not None:
                    metrics.bump("results.load.torn_lines")
                continue
            if not isinstance(doc, dict):
                warnings.warn(f"{path}:{lineno}: skipping non-object "
                              f"JSONL line", stacklevel=2)
                if metrics is not None:
                    metrics.bump("results.load.torn_lines")
                continue
            yield doc


def atomic_write_json(path: Path, doc: Any) -> None:
    """Write ``doc`` as JSON to ``path`` atomically: tempfile in the
    same directory, fsync, then ``os.replace``.  Readers see either the
    old complete file or the new complete file, never a torn one."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(prefix=path.name + ".",
                                    suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
            _fsync(fh)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


class StoreLock:
    """A re-entrant advisory lock over one store root.

    ``flock`` serializes *processes*; the depth counter makes nested
    acquisitions within one store object free (``finish_run`` writes the
    index while still holding the run's lock).  On platforms without
    ``fcntl`` the lock degrades to a no-op — single-process use stays
    correct, and every documented multi-writer workflow runs on POSIX.
    """

    def __init__(self, root: Path):
        self._path = Path(root) / ".lock"
        self._handle = None
        self._depth = 0

    def __enter__(self) -> "StoreLock":
        if self._depth == 0 and fcntl is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self._path, "a+")
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        self._depth += 1
        return self

    def __exit__(self, *exc) -> None:
        self._depth -= 1
        if self._depth == 0 and self._handle is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None


def content_hash(*parts: str) -> str:
    """SHA-256 over ``parts`` (joined with NUL so boundaries matter)."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()


@dataclass(frozen=True)
class CellKey:
    """The coordinates of one measurement cell.

    ``options`` holds only the :class:`BinpackOptions` fields that
    *differ* from the defaults, as a sorted tuple of ``(name, value)``
    pairs, so semantically identical configurations always produce the
    same key no matter how they were spelled.
    """

    workload: str              # "analog:doduc" | "synthetic:6218" | "fuzz:7"
    allocator: str             # allocator registry name ("second-chance", ...)
    machine: str = "alpha"     # "alpha" | "tiny:8x8" | "auto" (fuzz-derived)
    options: tuple[tuple[str, Any], ...] = ()
    spill_cleanup: bool = False
    order: str = "layout"      # block order: layout | rpo | scrambled
    kind: str = "quality"      # quality | timing | perf
    reps: int = 0              # timing cells: repetitions the medians cover
    #: The allocation context as its canonical compact string
    #: (``AllocationContext.describe()`` — e.g. ``"remat"`` or
    #: ``"stress=shuffle,seed=7"``); empty for the paper's default.
    context: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "options",
                           tuple(sorted((str(k), v) for k, v in self.options)))

    def ident(self) -> str:
        """The stable index string for this cell (no hashing involved,
        so it is also human-greppable in the segment files).  The
        context suffix appears only for non-default contexts, so every
        pre-existing record keeps its ident — and its cache hits."""
        opts = ",".join(f"{k}={v}" for k, v in self.options) or "-"
        ctx = f"|ctx={self.context}" if self.context else ""
        return (f"{self.kind}|{self.workload}|{self.order}|{self.machine}"
                f"|{self.allocator}|{opts}"
                f"|cleanup={int(self.spill_cleanup)}|reps={self.reps}{ctx}")

    def to_json(self) -> dict:
        doc = {
            "workload": self.workload,
            "allocator": self.allocator,
            "machine": self.machine,
            "options": [[k, v] for k, v in self.options],
            "spill_cleanup": self.spill_cleanup,
            "order": self.order,
            "kind": self.kind,
            "reps": self.reps,
        }
        if self.context:
            doc["context"] = self.context
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "CellKey":
        return cls(workload=doc["workload"], allocator=doc["allocator"],
                   machine=doc["machine"],
                   options=tuple((k, v) for k, v in doc["options"]),
                   spill_cleanup=doc["spill_cleanup"], order=doc["order"],
                   kind=doc["kind"], reps=doc["reps"],
                   context=doc.get("context", ""))


@dataclass
class Record:
    """One stored measurement: a key, the code hash it was computed
    against, and the measurement payload."""

    seq: int
    run: str
    ident: str
    code_hash: str
    key: CellKey
    data: dict[str, Any]
    schema: int = SCHEMA_VERSION

    def to_json(self) -> dict:
        return {"seq": self.seq, "run": self.run, "ident": self.ident,
                "code_hash": self.code_hash, "key": self.key.to_json(),
                "data": self.data, "schema": self.schema}

    @classmethod
    def from_json(cls, doc: dict) -> "Record":
        return cls(seq=doc["seq"], run=doc["run"], ident=doc["ident"],
                   code_hash=doc["code_hash"],
                   key=CellKey.from_json(doc["key"]), data=doc["data"],
                   schema=doc.get("schema", 0))


class ResultStore:
    """Append-only store of measurement records under one root directory.

    Opening a store scans its segment files (newest record per cell
    wins) and rewrites nothing; every mutation is an append.  The
    ``index.json`` written after each run is a convenience snapshot for
    humans and external tools — correctness never depends on it.
    """

    def __init__(self, root: str | os.PathLike | None = None, *,
                 metrics: MetricsRegistry | None = None):
        self.root = store_path(root)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._records: dict[int, Record] = {}       # seq -> record
        self._latest: dict[str, int] = {}           # ident -> newest seq
        self._runs: list[dict] = []                 # manifests, oldest first
        self._next_seq = 1
        self._open_segment = None                   # (run_id, file handle)
        self._lock = StoreLock(self.root)
        self._load()
        self._heal_index()

    # ------------------------------------------------------------------
    # Loading.
    # ------------------------------------------------------------------
    @property
    def segments_dir(self) -> Path:
        return self.root / "segments"

    def _load(self) -> None:
        """(Re)build the in-memory state from the segment files.

        Fresh dicts are built first and swapped in at the end, so a
        concurrent reader on another thread never observes a
        half-loaded store.  ``index.json`` is deliberately never read —
        the segments are the single source of truth, so a corrupt or
        stale index can only ever cost a rebuild, never correctness.
        """
        records: dict[int, Record] = {}
        latest: dict[str, int] = {}
        runs: list[dict] = []
        next_seq = 1
        if self.segments_dir.is_dir():
            for segment in sorted(self.segments_dir.glob("seg-*.jsonl")):
                for doc in read_jsonl(segment, metrics=self.metrics):
                    record = Record.from_json(doc)
                    if record.schema != SCHEMA_VERSION:
                        continue
                    records[record.seq] = record
                    if latest.get(record.ident, 0) <= record.seq:
                        latest[record.ident] = record.seq
                    next_seq = max(next_seq, record.seq + 1)
        runs_file = self.root / "runs.jsonl"
        if runs_file.is_file():
            runs = list(read_jsonl(runs_file, metrics=self.metrics))
        self._records, self._latest = records, latest
        self._runs, self._next_seq = runs, next_seq

    def _heal_index(self) -> None:
        """Rebuild ``index.json`` from the segments when it is missing
        segments' data, truncated, or outright garbage (a crash mid-write
        predating atomic replacement, a manual edit...).  Runs once per
        open; correctness never depends on it, but external tools read
        the file, so a poisoned snapshot should not outlive one open."""
        index_file = self.root / "index.json"
        if not index_file.is_file():
            return
        try:
            with open(index_file) as fh:
                doc = json.load(fh)
            stale = (not isinstance(doc, dict)
                     or len(doc.get("cells", ())) != len(self._latest))
        except (json.JSONDecodeError, OSError):
            stale = True
        if stale:
            warnings.warn(f"{index_file}: corrupt or stale index snapshot; "
                          f"rebuilding from segments", stacklevel=2)
            self.metrics.bump("results.index.rebuilt")
            with self._lock:
                self._write_index()

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._latest)

    def lookup(self, key: CellKey, code_hash: str) -> Record | None:
        """The newest record for ``key`` if its code hash still matches.

        A match is a *hit* (``results.cells.hits``); a stale hash is an
        *invalidation* (``results.cells.invalidated``) and returns
        ``None`` so the caller recomputes.  An absent cell is silent —
        the suite runner counts the compute itself.
        """
        seq = self._latest.get(key.ident())
        if seq is None:
            return None
        record = self._records[seq]
        if record.code_hash != code_hash:
            self.metrics.bump("results.cells.invalidated")
            return None
        self.metrics.bump("results.cells.hits")
        return record

    def peek(self, key: CellKey) -> Record | None:
        """The newest record for ``key`` regardless of code hash
        (reporting reads the store as-is; only *execution* revalidates)."""
        seq = self._latest.get(key.ident())
        return self._records[seq] if seq is not None else None

    def record(self, seq: int) -> Record | None:
        return self._records.get(seq)

    def history(self, key: CellKey) -> list[Record]:
        """Every stored record for ``key``, oldest first (the append-only
        log is the trajectory; perf records use this)."""
        ident = key.ident()
        return sorted((r for r in self._records.values()
                       if r.ident == ident), key=lambda r: r.seq)

    def iter_latest(self) -> Iterator[Record]:
        """Newest record of every cell, in first-seen order."""
        for seq in self._latest.values():
            yield self._records[seq]

    def runs(self) -> list[dict]:
        """Run manifests, oldest first."""
        return list(self._runs)

    def manifest(self, run_id: str) -> dict | None:
        for doc in self._runs:
            if doc["run"] == run_id:
                return doc
        return None

    # ------------------------------------------------------------------
    # Writing (append-only).
    # ------------------------------------------------------------------
    def next_run_id(self) -> str:
        """The first run id not yet claimed by a manifest *or* a segment
        file (a crashed run may have left a segment with no manifest)."""
        taken = {doc["run"] for doc in self._runs}
        if self.segments_dir.is_dir():
            taken |= {p.stem[len("seg-"):]
                      for p in self.segments_dir.glob("seg-*.jsonl")}
        n = len(self._runs) + 1
        while f"r{n:04d}" in taken:
            n += 1
        return f"r{n:04d}"

    def begin_run(self, label: str = "") -> str:
        """Open a new segment for one suite invocation's records.

        Takes the store's exclusive advisory lock (held until
        :meth:`finish_run` / :meth:`abort_run`), then re-reads the
        segments, so records committed by other processes since our
        open become visible and the new run's id and seq numbers are
        globally unique.  Concurrent writers therefore serialize per
        run, never interleave within a segment.
        """
        if self._open_segment is not None:
            raise RuntimeError("a run is already open on this store")
        self._lock.__enter__()
        try:
            self._load()
            run_id = self.next_run_id()
            self.segments_dir.mkdir(parents=True, exist_ok=True)
            handle = open(self.segments_dir / f"seg-{run_id}.jsonl", "a")
        except BaseException:
            self._lock.__exit__(None, None, None)
            raise
        self._open_segment = (run_id, handle, label, {})
        return run_id

    def put(self, key: CellKey, code_hash: str, data: dict) -> Record:
        """Append one computed record to the open run's segment."""
        if self._open_segment is None:
            raise RuntimeError("begin_run() before put()")
        run_id, handle, _label, cells = self._open_segment
        record = Record(seq=self._next_seq, run=run_id, ident=key.ident(),
                        code_hash=code_hash, key=key, data=data)
        handle.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
        handle.flush()
        self._records[record.seq] = record
        self._latest[record.ident] = record.seq
        self._next_seq += 1
        cells[record.ident] = record.seq
        self.metrics.bump("results.cells.computed")
        return record

    def note_hit(self, key: CellKey, record: Record) -> None:
        """Register a cache hit in the open run's manifest, so ``--diff``
        can compare complete runs even when nothing was recomputed."""
        if self._open_segment is None:
            return
        self._open_segment[3][key.ident()] = record.seq

    def finish_run(self, stats: dict | None = None) -> dict:
        """Close the open segment and append the run manifest.

        This is the store's *commit point*: the segment is fsync'd
        before closing, the manifest append is fsync'd, and the index
        snapshot is replaced atomically — after ``finish_run`` returns,
        no crash (including ``kill -9``) can lose this run's records.
        """
        if self._open_segment is None:
            raise RuntimeError("no open run to finish")
        run_id, handle, label, cells = self._open_segment
        try:
            _fsync(handle)
            handle.close()
            self._open_segment = None
            manifest = {"run": run_id, "label": label,
                        "cells": dict(sorted(cells.items())),
                        "stats": stats or {}}
            self.root.mkdir(parents=True, exist_ok=True)
            self._append_aligned(self.root / "runs.jsonl",
                                 json.dumps(manifest, sort_keys=True))
            self._runs.append(manifest)
            self._write_index()
            _fsync_dir(self.segments_dir)
        finally:
            self._lock.__exit__(None, None, None)
        return manifest

    def abort_run(self) -> None:
        """Close the open segment *without* writing a manifest (error
        paths).  Records already appended stay on disk — they were real
        measurements — but the run never becomes a committed manifest,
        and the store lock is released either way."""
        if self._open_segment is None:
            return
        _run_id, handle, _label, _cells = self._open_segment
        self._open_segment = None
        try:
            handle.close()
        finally:
            self._lock.__exit__(None, None, None)

    @staticmethod
    def _append_aligned(path: Path, line: str) -> None:
        """Append ``line`` to a JSONL file, fsync'd, re-aligning first
        if a crashed writer left the file without a trailing newline
        (otherwise the new record would fuse onto the torn tail and
        both lines would be lost to every later load)."""
        with open(path, "a+") as fh:
            fh.seek(0, os.SEEK_END)
            if fh.tell() > 0:
                fh.seek(fh.tell() - 1)
                if fh.read(1) != "\n":
                    fh.write("\n")
            fh.write(line + "\n")
            _fsync(fh)

    def _write_index(self) -> None:
        """Snapshot the ident -> seq map (with code hashes) for humans
        and external tools; :meth:`_load` never trusts it.  Written via
        tempfile + ``os.replace`` so a crash mid-write can never leave
        a torn ``index.json`` behind."""
        index = {ident: {"seq": seq,
                         "code_hash": self._records[seq].code_hash,
                         "run": self._records[seq].run}
                 for ident, seq in sorted(self._latest.items())}
        doc = {"schema": SCHEMA_VERSION, "records": len(self._records),
               "runs": len(self._runs), "cells": index}
        atomic_write_json(self.root / "index.json", doc)


__all__ = ["CellKey", "Record", "ResultStore", "SCHEMA_VERSION",
           "STORE_ENV", "DEFAULT_STORE", "StoreLock", "atomic_write_json",
           "content_hash", "read_jsonl", "store_path"]
