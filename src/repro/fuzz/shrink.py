"""Delta-debugging (ddmin) minimization of failing fuzz modules.

Given a module on which some allocator configuration misbehaves, the
shrinker searches for a small sub-program that still fails the same way,
so the report shows a handful of instructions instead of a 200-line
random program.  The unit of deletion is the instruction (terminators
are never deleted, so the CFG shape survives); a post-pass drops helper
functions that lost all their call sites.

A candidate deletion is *valid* only when the reference (unallocated)
module still makes sense as an oracle:

* no temporary is live into any function's entry block — the generator's
  "defined before any use on every path" guarantee, restated as a
  liveness fact (the backward may-analysis over-approximates, so an
  empty entry live-in set implies the guarantee);
* every physical-register use is preceded by a def of that register in
  the same block (parameter registers count as defined at the top of the
  entry block).  Lowered code only ever uses physregs in tight
  marshalling idioms (``mov r1, t; call``, ``mov r0, t; ret``); deleting
  the feeding move leaves a register live across a region the allocators
  are entitled to clobber, which the simulator tolerates (registers
  start zeroed) but which is outside the allocators' input contract —
  such a candidate would report phantom divergences;
* the reference simulation still terminates without faulting.

Candidates are accepted when they are valid *and* the caller's failure
predicate still fires — classic ddmin, with a budget on predicate
evaluations so shrinking always finishes quickly.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.cfg.cfg import CFG
from repro.dataflow.liveness import compute_liveness
from repro.ir.instr import Op
from repro.ir.module import Module
from repro.ir.temp import PhysReg
from repro.ir.types import RegClass
from repro.sim import SimulationError, simulate
from repro.target.machine import MachineDescription

#: A coordinate of one deletable instruction: (function, block, index).
_Coord = tuple[str, str, int]


def _deletable(module: Module) -> list[_Coord]:
    """Every instruction that may be removed (everything but terminators)."""
    coords: list[_Coord] = []
    for fname, fn in module.functions.items():
        for block in fn.blocks:
            for i in range(len(block.instrs) - 1):
                coords.append((fname, block.label, i))
    return coords


def _without(module: Module, removed: set[_Coord]) -> Module:
    """A structural copy of ``module`` minus the instructions at
    ``removed`` (ddmin generates hundreds of candidates, so the cheap
    :meth:`Module.clone` matters here)."""
    out = module.clone()
    for fname, fn in out.functions.items():
        for block in fn.blocks:
            block.instrs = [instr for i, instr in enumerate(block.instrs)
                            if (fname, block.label, i) not in removed]
    return out


def _drop_dead_helpers(module: Module) -> Module:
    """Remove functions unreachable from ``main`` through remaining calls."""
    out = module.clone()
    reachable: set[str] = set()
    stack = ["main"]
    while stack:
        name = stack.pop()
        if name in reachable or name not in out.functions:
            continue
        reachable.add(name)
        for instr in out.functions[name].instructions():
            if instr.op is Op.CALL and instr.callee:
                stack.append(instr.callee)
    for name in list(out.functions):
        if name not in reachable:
            del out.functions[name]
    return out


def physreg_uses_are_block_local(module: Module,
                                 machine: MachineDescription) -> bool:
    """True when every physical-register use has an in-block feeding def.

    This is the allocators' input contract for precolored operands: the
    marshalling idioms the lowering emits (``mov r1, t`` before a call,
    ``mov r0, t`` before a ret, reads of parameter/return registers right
    after entry or a call) never stretch a physreg live range past code
    the allocator may clobber.  Parameter registers count as defined at
    the top of the entry block.
    """
    params = {reg for cls in (RegClass.GPR, RegClass.FPR)
              for reg in machine.param_regs(cls)}
    for fn in module.functions.values():
        for block in fn.blocks:
            defined = set(params) if block is fn.entry else set()
            for instr in block.instrs:
                for use in instr.uses:
                    if isinstance(use, PhysReg) and use not in defined:
                        return False
                defined.update(reg for reg in instr.defs
                               if isinstance(reg, PhysReg))
    return True


def reference_outcome(module: Module, machine: MachineDescription, *,
                      max_steps: int = 2_000_000, session=None):
    """The oracle run for ``module``, or ``None`` if it is not a valid
    reference (a temporary live into some entry block, a physreg used
    without a local def, a simulator fault, or a blown step budget).

    ``session`` (a :class:`repro.pm.session.CompilationSession` over this
    same module) routes the validity liveness check through the session's
    analysis cache, where the allocator runs that follow will find the
    CFG and liveness again instead of rebuilding them — previously this
    function recomputed both from scratch inside the ddmin loop.
    """
    for fn in module.functions.values():
        if not fn.blocks:
            return None
        if session is not None:
            liveness = session.analyses.liveness(fn)
        else:
            liveness = compute_liveness(fn, CFG.build(fn))
        if liveness.live_in_temps(fn.entry.label):
            return None
    if not physreg_uses_are_block_local(module, machine):
        return None
    try:
        return simulate(module, machine, max_steps=max_steps)
    except (SimulationError, RecursionError):
        return None


def shrink_module(module: Module, still_fails: Callable[[Module], bool], *,
                  budget: int = 400) -> Module:
    """ddmin: the smallest found sub-module on which ``still_fails`` holds.

    ``still_fails`` receives a candidate module and reports whether the
    original failure is still present; it is also responsible for
    rejecting invalid candidates (callers do this by requiring
    :func:`reference_outcome` to succeed — with a step budget scaled to
    the original program, since deletions can make loops infinite).  At
    most ``budget`` candidates are evaluated; the best module found so
    far is returned when the budget runs out, so the result is always at
    least as small as the input.
    """
    spent = 0

    def test(candidate: Module) -> bool:
        nonlocal spent
        if spent >= budget:
            return False
        spent += 1
        return still_fails(candidate)

    coords = _deletable(module)
    kept = list(coords)
    n = 2
    while len(kept) >= 2 and spent < budget:
        chunk_size = max(1, len(kept) // n)
        reduced = False
        for start in range(0, len(kept), chunk_size):
            chunk = set(kept[start:start + chunk_size])
            survivor = [c for c in kept if c not in chunk]
            removed = set(coords) - set(survivor)
            if test(_without(module, removed)):
                kept = survivor
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(kept):
                break
            n = min(len(kept), n * 2)

    removed = set(coords) - set(kept)
    best = _without(module, removed)
    trimmed = _drop_dead_helpers(best)
    if len(trimmed.functions) < len(best.functions) and test(trimmed):
        best = trimmed
    return best
