"""Differential fuzzing of the register allocators.

The fuzzer closes the loop the paper leaves open: Section 2.3–2.4's
elided/postponed spill stores are correct only if the consistency
dataflow and edge resolution are *exactly* right, and hand-written tests
only cover the shapes their author thought of.  Here, random structured
programs (:mod:`repro.fuzz.generate`) run through every allocator × every
``BinpackOptions`` ablation point (:mod:`repro.fuzz.harness`), with the
simulator on the *unallocated* module as the oracle and the dataflow
verifier (:func:`repro.passes.verify_alloc.verify_dataflow`) catching
clobbers statically.  Failures are minimized by a delta-debugging
shrinker (:mod:`repro.fuzz.shrink`) before being reported.

Entry points: ``repro fuzz`` on the command line, or :func:`fuzz` /
:func:`run_seed` from Python.
"""

from repro.fuzz.generate import program_for_seed
from repro.fuzz.harness import (CONFIG_GRID, STRESS_GRID, Divergence,
                                FuzzConfig, FuzzReport, check_config, fuzz,
                                run_seed)
from repro.fuzz.shrink import shrink_module

__all__ = [
    "CONFIG_GRID",
    "STRESS_GRID",
    "Divergence",
    "FuzzConfig",
    "FuzzReport",
    "check_config",
    "fuzz",
    "program_for_seed",
    "run_seed",
    "shrink_module",
]
