"""The differential fuzz harness: configs × seeds → divergences.

One *check* runs one generated program through one allocator
configuration and compares against the oracle:

    reference = simulate(unallocated module)        # the oracle
    allocated = pipeline(module, config)            # DCE → allocate →
                                                    #   dataflow-verify →
                                                    #   peephole → verify
    simulate(allocated, trap_poison=True) must match the reference.

Five distinct failure kinds are reported (``crash``, ``verify``,
``dataflow``, ``sim-fault``, ``mismatch``) because they point at
different layers; :class:`repro.allocators.base.AllocationError` is a
*skip*, not a failure — a tiny machine may be legitimately too small for
a generated function's register demands.

The configuration grid covers all four allocators plus every
``BinpackOptions`` ablation point the paper's Section 2 calls out, since
the bugs the fuzzer exists to catch (consistency dataflow, edge
resolution, second-chance paths) hide behind specific knob combinations.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.allocators import (GraphColoring, PolettoLinearScan,
                              SecondChanceBinpacking, TwoPassBinpacking)
from repro.allocators.base import AllocationError, RegisterAllocator
from repro.allocators.binpack.allocator import BinpackOptions
from repro.fuzz.generate import GeneratedProgram, program_for_seed
from repro.fuzz.shrink import reference_outcome, shrink_module
from repro.ir.module import Module
from repro.ir.printer import print_module
from repro.passes.verify_alloc import AllocationVerifyError
from repro.pipeline import run_allocator
from repro.pm.batch import run_batch
from repro.pm.session import CompilationSession
from repro.sim import SimulationError, outputs_equal, simulate
from repro.spill import DEFAULT_CONTEXT, AllocationContext
from repro.target.machine import MachineDescription


@dataclass(frozen=True)
class FuzzConfig:
    """One point of the allocator × options × context grid."""

    name: str
    allocator: str  # "second-chance" | "two-pass" | "coloring" | "poletto"
    options: BinpackOptions | None = None
    context: AllocationContext = DEFAULT_CONTEXT

    def for_seed(self, seed: int) -> "FuzzConfig":
        """The config actually checked for one fuzz seed: stress configs
        derive their stress seed from the fuzz seed, so every seed
        exercises a different register-drop/shuffle/eviction pattern
        while staying fully replayable from the (seed, config) pair."""
        if not self.context.stressed:
            return self
        return dataclasses.replace(self,
                                   context=self.context.with_seed(seed))

    def make(self) -> RegisterAllocator:
        if self.allocator == "second-chance":
            return SecondChanceBinpacking(self.options or BinpackOptions())
        if self.allocator == "two-pass":
            return TwoPassBinpacking()
        if self.allocator == "coloring":
            return GraphColoring()
        if self.allocator == "poletto":
            return PolettoLinearScan()
        raise ValueError(f"unknown allocator {self.allocator!r}")


CONFIG_GRID: tuple[FuzzConfig, ...] = (
    FuzzConfig("sc-default", "second-chance"),
    FuzzConfig("sc-no-holes", "second-chance",
               BinpackOptions(use_holes=False)),
    FuzzConfig("sc-no-early2c", "second-chance",
               BinpackOptions(early_second_chance=False)),
    FuzzConfig("sc-no-moveelim", "second-chance",
               BinpackOptions(move_elimination=False)),
    FuzzConfig("sc-no-avoid-stores", "second-chance",
               BinpackOptions(avoid_consistent_stores=False)),
    FuzzConfig("sc-conservative", "second-chance",
               BinpackOptions(conservative_consistency=True)),
    FuzzConfig("sc-no-holes-conservative", "second-chance",
               BinpackOptions(use_holes=False, conservative_consistency=True)),
    FuzzConfig("sc-minimal", "second-chance",
               BinpackOptions(use_holes=False, early_second_chance=False,
                              move_elimination=False,
                              avoid_consistent_stores=False)),
    FuzzConfig("two-pass", "two-pass"),
    FuzzConfig("coloring", "coloring"),
    FuzzConfig("poletto", "poletto"),
)

#: The stress grid: every allocator under every seeded stress mode, plus
#: every allocator with rematerialization on.  Kept out of CONFIG_GRID so
#: the default fuzz run still measures exactly the paper's pipeline; CI's
#: stress-smoke leg and ``repro fuzz --stress`` run this one.  Each
#: config's stress seed is derived per fuzz seed (:meth:`FuzzConfig.for_seed`).
STRESS_GRID: tuple[FuzzConfig, ...] = tuple(
    FuzzConfig(f"{allocator}@{mode}", allocator,
               context=AllocationContext(stress=mode))
    for mode in ("reduced-regs", "forced-evict", "shuffle")
    for allocator in ("second-chance", "two-pass", "coloring", "poletto")
) + tuple(
    FuzzConfig(f"{allocator}+remat", allocator,
               context=AllocationContext(remat=True))
    for allocator in ("second-chance", "two-pass", "coloring", "poletto")
)


@dataclass
class Divergence:
    """One confirmed oracle divergence, with its (shrunken) witness."""

    seed: int
    config: str
    kind: str  # "crash" | "verify" | "dataflow" | "sim-fault" | "mismatch"
    message: str
    describe: str
    module_text: str  # IR text of the (shrunken) failing module
    shrunk_from: int  # instruction count before shrinking
    shrunk_to: int
    #: The resolved allocation context (``AllocationContext.describe()``,
    #: empty for the default) — together with the witness IR this is
    #: everything a one-command ``tools/shrink_ir.py`` replay needs.
    context: str = ""

    def format(self) -> str:
        ctx = f" context={self.context}" if self.context else ""
        return (f"[{self.kind}] config={self.config}{ctx} {self.describe}\n"
                f"  {self.message}\n"
                f"  witness shrunk {self.shrunk_from} -> {self.shrunk_to} "
                f"instructions:\n{self.module_text}")


def _result_matches(a: int | float | None, b: int | float | None) -> bool:
    return outputs_equal([] if a is None else [a], [] if b is None else [b])


def check_config(module: Module, machine: MachineDescription,
                 config: FuzzConfig, ref,
                 session: CompilationSession | None = None
                 ) -> tuple[str, str] | None:
    """Run one configuration; ``None`` when it matches the oracle.

    Returns ``("skip", reason)`` when the machine is legitimately too
    small, otherwise ``(kind, message)`` describing the divergence.
    ``ref`` is the oracle outcome for the unallocated ``module``.
    ``session`` lets all eleven grid configurations share one analysis
    cache and one DCE'd base module (see :mod:`repro.pm`).
    """
    try:
        result = run_allocator(module, config.make(), machine,
                               verify_dataflow=True, session=session,
                               context=config.context)
    except AllocationError as exc:
        return ("skip", str(exc))
    except AllocationVerifyError as exc:
        return ("dataflow" if "dataflow" in str(exc) else "verify", str(exc))
    except Exception as exc:  # noqa: BLE001 — any crash is a finding
        return ("crash", f"{type(exc).__name__}: {exc}")
    try:
        out = simulate(result.module, machine, trap_poison=True,
                       max_steps=ref.dynamic_instructions * 8 + 100_000)
    except SimulationError as exc:
        return ("sim-fault", str(exc))
    if not outputs_equal(ref.output, out.output):
        return ("mismatch",
                f"output {out.output!r} != reference {ref.output!r}")
    if not _result_matches(ref.result, out.result):
        return ("mismatch",
                f"result {out.result!r} != reference {ref.result!r}")
    return None


def _shrink_divergence(program: GeneratedProgram, config: FuzzConfig,
                       kind: str, budget: int) -> Module:
    """Minimize the failing module, preserving config and failure kind.

    Mutant simulations get a step budget scaled to the *original*
    program's run: deleting a loop decrement makes the loop infinite, and
    without the tight budget every such mutant would burn the full
    default step limit before being rejected."""
    base = reference_outcome(program.module, program.machine)
    step_cap = (base.dynamic_instructions * 4 + 10_000) if base else 100_000

    def still_fails(candidate: Module) -> bool:
        # One session per candidate: the oracle's validity liveness and
        # the pipeline's setup analyses are computed once and shared
        # (candidates are all distinct modules, so nothing caches across
        # ddmin iterations — but within one, nothing is computed twice).
        session = CompilationSession(candidate, program.machine)
        ref = reference_outcome(candidate, program.machine,
                                max_steps=step_cap, session=session)
        if ref is None:
            return False
        found = check_config(candidate, program.machine, config, ref,
                             session=session)
        return found is not None and found[0] == kind

    return shrink_module(program.module, still_fails, budget=budget)


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzz run."""

    seeds: int = 0
    checks: int = 0
    skips: int = 0
    invalid_seeds: int = 0
    shrinks: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def merge(self, other: "FuzzReport") -> None:
        """Fold another report (e.g. one worker's seeds) into this one."""
        self.seeds += other.seeds
        self.checks += other.checks
        self.skips += other.skips
        self.invalid_seeds += other.invalid_seeds
        self.shrinks += other.shrinks
        self.divergences.extend(other.divergences)

    def format(self) -> str:
        lines = [f"fuzz: {self.seeds} seed(s), {self.checks} check(s), "
                 f"{self.skips} skip(s), {self.invalid_seeds} invalid "
                 f"seed(s), {len(self.divergences)} divergence(s)"]
        for div in self.divergences:
            lines.append(div.format())
        return "\n".join(lines)


def run_seed(seed: int, *, configs: tuple[FuzzConfig, ...] = CONFIG_GRID,
             shrink: bool = True, shrink_budget: int = 400,
             max_shrinks: int = 3,
             report: FuzzReport | None = None) -> FuzzReport:
    """Fuzz one seed across ``configs``, appending into ``report``.

    At most ``max_shrinks`` divergences per report are minimized (a
    systematically broken allocator diverges on most seeds × configs, and
    shrinking each witness costs hundreds of pipeline runs); later ones
    are reported with the full module."""
    rep = report if report is not None else FuzzReport()
    rep.seeds += 1
    program = program_for_seed(seed)
    # One session serves the oracle check and all grid configurations:
    # the seed module's setup analyses and DCE'd base are computed once,
    # then transferred onto each configuration's clone.
    session = CompilationSession(program.module, program.machine)
    ref = reference_outcome(program.module, program.machine, session=session)
    if ref is None:
        # The generator promises terminating, fully-initialized programs;
        # an invalid seed is a generator bug worth counting, not hiding.
        rep.invalid_seeds += 1
        return rep
    size = sum(fn.instruction_count()
               for fn in program.module.functions.values())
    for config in configs:
        rep.checks += 1
        resolved = config.for_seed(seed)
        found = check_config(program.module, program.machine, resolved, ref,
                             session=session)
        if found is None:
            continue
        kind, message = found
        if kind == "skip":
            rep.skips += 1
            continue
        witness = program.module
        if shrink and rep.shrinks < max_shrinks:
            rep.shrinks += 1
            witness = _shrink_divergence(program, resolved, kind,
                                         shrink_budget)
        rep.divergences.append(Divergence(
            seed=seed, config=config.name, kind=kind, message=message,
            describe=program.describe, module_text=print_module(witness),
            shrunk_from=size,
            shrunk_to=sum(fn.instruction_count()
                          for fn in witness.functions.values()),
            context=resolved.context.describe()))
    return rep


def _seed_worker(payload) -> FuzzReport:
    """Process-pool entry: fuzz one seed into a fresh report."""
    seed, configs, shrink, shrink_budget, max_shrinks = payload
    return run_seed(seed, configs=configs, shrink=shrink,
                    shrink_budget=shrink_budget, max_shrinks=max_shrinks)


def fuzz(seeds: range | list[int], *,
         configs: tuple[FuzzConfig, ...] = CONFIG_GRID,
         shrink: bool = True, shrink_budget: int = 400,
         max_shrinks: int = 3, progress=None, jobs: int = 1) -> FuzzReport:
    """Fuzz every seed in ``seeds``; return the aggregate report.

    With ``jobs > 1``, seeds run in parallel worker processes
    (:func:`repro.pm.batch.run_batch`) and the per-seed reports are
    merged back in seed order, so the aggregate is deterministic.  One
    semantic difference from serial: ``max_shrinks`` caps minimizations
    *per seed* rather than across the whole run, since workers cannot
    see each other's shrink counts.
    """
    report = FuzzReport()
    if jobs > 1:
        payloads = [(seed, configs, shrink, shrink_budget, max_shrinks)
                    for seed in seeds]
        seed_reports = run_batch(_seed_worker, payloads, jobs=jobs)
        for seed, seed_report in zip(seeds, seed_reports):
            report.merge(seed_report)
            if progress is not None:
                progress(seed, report)
        return report
    for seed in seeds:
        run_seed(seed, configs=configs, shrink=shrink,
                 shrink_budget=shrink_budget, max_shrinks=max_shrinks,
                 report=report)
        if progress is not None:
            progress(seed, report)
    return report
