"""Per-seed program/machine derivation for the fuzzer.

Each seed deterministically picks a machine and generator parameters,
then builds a program with :func:`repro.workloads.synthetic.random_module`
(nested loops, diamonds, critical edges, calls, global-array traffic,
both register classes).  Machines cycle through small ``tiny`` files —
where register pressure forces spilling, eviction, and second chances on
nearly every block — up to the full ``alpha``, where most temporaries fit
and the interesting paths are the conventions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ir.module import Module
from repro.target import alpha, tiny
from repro.target.machine import MachineDescription
from repro.workloads.synthetic import random_module

#: The machine rotation: mostly tiny files (pressure), some full alpha.
_MACHINES: tuple[tuple[str, tuple[int, int] | None], ...] = (
    ("tiny(4,4)", (4, 4)),
    ("tiny(5,5)", (5, 5)),
    ("tiny(6,6)", (6, 6)),
    ("tiny(8,8)", (8, 8)),
    ("alpha", None),
)


@dataclass(frozen=True)
class GeneratedProgram:
    """One fuzz case: the module, its machine, and how it was made."""

    seed: int
    module: Module
    machine: MachineDescription
    describe: str


def program_for_seed(seed: int) -> GeneratedProgram:
    """Build the (module, machine) pair for one fuzz seed.

    Deterministic: the same seed always yields the same program text and
    machine, so any reported failure is reproducible from its seed alone.
    """
    rng = random.Random(seed ^ 0x5EED)
    mname, files = _MACHINES[seed % len(_MACHINES)]
    machine = alpha() if files is None else tiny(*files)
    size = rng.choice((15, 25, 35, 50))
    n_helpers = rng.choice((1, 1, 2))
    n_int_vars = rng.randint(3, 8)
    n_float_vars = rng.randint(1, 5)
    module = random_module(seed, machine, size=size, n_helpers=n_helpers,
                           n_int_vars=n_int_vars, n_float_vars=n_float_vars)
    describe = (f"seed={seed} machine={mname} size={size} "
                f"helpers={n_helpers} ivars={n_int_vars} fvars={n_float_vars}")
    return GeneratedProgram(seed, module, machine, describe)
