"""Bit-vector dataflow: the shared liveness analysis and a generic solver.

Python's arbitrary-precision integers *are* bit vectors (word-parallel
``&``/``|``/``~`` like the paper's implementation), so sets of temporaries
are represented as plain ``int`` masks over a :class:`TempIndex`.
Following Section 3, only temporaries live across basic-block boundaries
get bit positions; block-local temporaries are excluded, "which greatly
reduces bit vector sizes".
"""

from repro.dataflow.bitvector import TempIndex, bits_of, popcount, translate_mask
from repro.dataflow.framework import DataflowProblem, Direction, solve
from repro.dataflow.liveness import LivenessInfo, compute_liveness

__all__ = [
    "DataflowProblem",
    "Direction",
    "LivenessInfo",
    "TempIndex",
    "bits_of",
    "compute_liveness",
    "popcount",
    "solve",
    "translate_mask",
]
