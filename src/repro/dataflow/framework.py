"""A small generic iterative bit-vector dataflow solver.

Both block-level analyses in this repo are classic GEN/KILL union
problems — backward liveness, and the binpacking allocator's
``USED_CONSISTENCY`` propagation (Section 2.4):

    USED_C_out(b) = union over successors s of USED_C_in(s)
    USED_C_in(b)  = USED_CONSISTENCY(b) | (USED_C_out(b) & ~WROTE_TR(b))

The solver runs a worklist to a fixed point.  The paper observes that
"the standard method ... terminates in two or three iterations at most"
(Section 2.6); the benchmark suite verifies that observation holds here
by reporting iteration counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cfg.cfg import CFG


class Direction(enum.Enum):
    """Dataflow direction."""

    FORWARD = "forward"
    BACKWARD = "backward"


@dataclass(eq=False)
class DataflowProblem:
    """A union GEN/KILL problem over a CFG.

    For ``BACKWARD`` problems: ``out(b) = union of in(s) for successors``
    and ``in(b) = gen(b) | (out(b) & ~kill(b))``.  ``FORWARD`` problems
    are the mirror image over predecessors.
    """

    cfg: CFG
    direction: Direction
    gen: dict[str, int]
    kill: dict[str, int]
    boundary: int = 0  # the meet value for blocks with no successors/preds


@dataclass
class DataflowResult:
    """Fixed-point ``in``/``out`` masks plus solver statistics."""

    in_: dict[str, int]
    out: dict[str, int]
    iterations: int


def solve(problem: DataflowProblem) -> DataflowResult:
    """Iterate the problem's equations to a fixed point (worklist order:
    postorder for backward problems, reverse postorder for forward)."""
    cfg = problem.cfg
    labels = [b.label for b in cfg.fn.blocks]
    in_ = {label: 0 for label in labels}
    out = {label: 0 for label in labels}
    backward = problem.direction is Direction.BACKWARD
    order = cfg.postorder() if backward else cfg.reverse_postorder()
    # Include unreachable blocks so every label has a defined value.
    # (Hoisted out of the comprehension: rebuilding the set per label
    # made this scan quadratic in the block count.)
    reachable = set(order)
    tail = [label for label in labels if label not in reachable]
    order = order + tail

    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        for label in order:
            if backward:
                succs = cfg.succs[label]
                meet = problem.boundary if not succs else 0
                for s in succs:
                    meet |= in_[s]
                out[label] = meet
                new_in = problem.gen[label] | (meet & ~problem.kill[label])
                if new_in != in_[label]:
                    in_[label] = new_in
                    changed = True
            else:
                preds = cfg.preds[label]
                meet = problem.boundary if not preds else 0
                for p in preds:
                    meet |= out[p]
                in_[label] = meet
                new_out = problem.gen[label] | (meet & ~problem.kill[label])
                if new_out != out[label]:
                    out[label] = new_out
                    changed = True
    return DataflowResult(in_, out, iterations)
