"""Block-level liveness over the cross-block ("global") temporaries.

Per the paper's Section 3, "temporaries that are live only within a single
basic block are excluded from dataflow analysis".  A temporary is *global*
exactly when some block reads it without first writing it (it is upward
exposed somewhere); every other temporary's liveness is confined to single
blocks and is recovered later by the lifetime scan without any dataflow.

Liveness is computed once, before allocation, and shared by every
allocator — the paper's fair-comparison methodology.

The per-block GEN/KILL inputs are assembled without building any
per-temp Python sets: one forward pass over the function records each
block's upward-exposed uses and first defs as *ordered lists* (a single
generation-stamped dict tracks per-block definedness), and the bit masks
are built directly from those lists once the :class:`TempIndex` is
fixed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.cfg import CFG
from repro.dataflow.bitvector import TempIndex
from repro.dataflow.framework import DataflowProblem, Direction, solve
from repro.ir.function import Function
from repro.ir.temp import Temp


@dataclass(eq=False)
class LivenessInfo:
    """Fixed-point liveness for one function.

    Attributes:
        index: Bit positions for the global temporaries only.
        live_in / live_out: Masks per block label.
        iterations: Worklist passes the solver needed (Section 2.6's
            "two or three iterations at most" observation).
    """

    index: TempIndex
    live_in: dict[str, int]
    live_out: dict[str, int]
    iterations: int

    def live_out_temps(self, label: str) -> list[Temp]:
        """The temporaries live out of block ``label``."""
        return self.index.temps_of(self.live_out[label])

    def live_in_temps(self, label: str) -> list[Temp]:
        """The temporaries live into block ``label``."""
        return self.index.temps_of(self.live_in[label])


#: Generation-dict flags: the temp was used-before-defined / defined in
#: the block whose generation stamps the entry.
_SEEN = 1
_KILLED = 2


def _block_local_sets(fn: Function) -> tuple[dict[str, list[Temp]],
                                             dict[str, list[Temp]]]:
    """Per-block upward-exposed-use and kill (defined) temp lists.

    One forward pass over the function; each returned list holds the
    block's temps in first-occurrence order, deduplicated.  A single
    dict stamped with the block's position replaces the per-block sets
    the old implementation built (and threw away) for every block.
    """
    ue: dict[str, list[Temp]] = {}
    kill: dict[str, list[Temp]] = {}
    state: dict[Temp, tuple[int, int]] = {}
    for gen, block in enumerate(fn.blocks):
        exposed: list[Temp] = []
        defined: list[Temp] = []
        for instr in block.instrs:
            for reg in instr.uses:
                if isinstance(reg, Temp):
                    entry = state.get(reg)
                    if entry is None or entry[0] != gen:
                        state[reg] = (gen, _SEEN)
                        exposed.append(reg)
            for reg in instr.defs:
                if isinstance(reg, Temp):
                    entry = state.get(reg)
                    if entry is None or entry[0] != gen:
                        state[reg] = (gen, _SEEN | _KILLED)
                        defined.append(reg)
                    elif not entry[1] & _KILLED:
                        state[reg] = (gen, entry[1] | _KILLED)
                        defined.append(reg)
        ue[block.label] = exposed
        kill[block.label] = defined
    return ue, kill


def global_temps(fn: Function,
                 ue: dict[str, list[Temp]] | None = None) -> list[Temp]:
    """Temporaries upward exposed in some block, in deterministic order.

    These are exactly the temporaries whose liveness crosses a block
    boundary (assuming every use is reached by some def; uninitialized
    reads also land here, conservatively).  ``ue`` may be passed when the
    upward-exposed lists are already in hand (as in
    :func:`compute_liveness`) to avoid rescanning every instruction.

    The order — and therefore the :class:`TempIndex` bit layout — is the
    concatenation over blocks of each block's upward-exposed temps in
    sorted order, first occurrence kept.  Each temp is sorted only the
    first time it appears: filtering to unseen temps before sorting
    yields the same subsequence as sorting the whole block list and
    deduplicating afterwards, without re-sorting temps already placed.
    """
    if ue is None:
        ue, _ = _block_local_sets(fn)
    out: dict[Temp, None] = {}
    for block in fn.blocks:
        for t in sorted(t for t in ue[block.label] if t not in out):
            out[t] = None
    return list(out)


def compute_liveness(fn: Function, cfg: CFG | None = None) -> LivenessInfo:
    """Solve backward liveness over the global temporaries of ``fn``."""
    cfg = cfg or CFG.build(fn)
    ue, kill = _block_local_sets(fn)
    index = TempIndex.of(global_temps(fn, ue))
    gen = {label: index.mask_of(temps) for label, temps in ue.items()}
    kill_masks = {label: index.mask_of(temps) for label, temps in kill.items()}
    result = solve(DataflowProblem(cfg, Direction.BACKWARD, gen, kill_masks))
    return LivenessInfo(index, result.in_, result.out, result.iterations)
