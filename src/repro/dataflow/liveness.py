"""Block-level liveness over the cross-block ("global") temporaries.

Per the paper's Section 3, "temporaries that are live only within a single
basic block are excluded from dataflow analysis".  A temporary is *global*
exactly when some block reads it without first writing it (it is upward
exposed somewhere); every other temporary's liveness is confined to single
blocks and is recovered later by the lifetime scan without any dataflow.

Liveness is computed once, before allocation, and shared by every
allocator — the paper's fair-comparison methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.cfg import CFG
from repro.dataflow.bitvector import TempIndex
from repro.dataflow.framework import DataflowProblem, Direction, solve
from repro.ir.function import Function
from repro.ir.temp import Temp


@dataclass(eq=False)
class LivenessInfo:
    """Fixed-point liveness for one function.

    Attributes:
        index: Bit positions for the global temporaries only.
        live_in / live_out: Masks per block label.
        iterations: Worklist passes the solver needed (Section 2.6's
            "two or three iterations at most" observation).
    """

    index: TempIndex
    live_in: dict[str, int]
    live_out: dict[str, int]
    iterations: int

    def live_out_temps(self, label: str) -> list[Temp]:
        """The temporaries live out of block ``label``."""
        return self.index.temps_of(self.live_out[label])

    def live_in_temps(self, label: str) -> list[Temp]:
        """The temporaries live into block ``label``."""
        return self.index.temps_of(self.live_in[label])


def _block_local_sets(fn: Function) -> tuple[dict[str, set[Temp]], dict[str, set[Temp]]]:
    """Per-block upward-exposed-use and kill (defined) temp sets."""
    ue: dict[str, set[Temp]] = {}
    kill: dict[str, set[Temp]] = {}
    for block in fn.blocks:
        exposed: set[Temp] = set()
        defined: set[Temp] = set()
        for instr in block.instrs:
            for reg in instr.uses:
                if isinstance(reg, Temp) and reg not in defined:
                    exposed.add(reg)
            for reg in instr.defs:
                if isinstance(reg, Temp):
                    defined.add(reg)
        ue[block.label] = exposed
        kill[block.label] = defined
    return ue, kill


def global_temps(fn: Function,
                 ue: dict[str, set[Temp]] | None = None) -> list[Temp]:
    """Temporaries upward exposed in some block, in deterministic order.

    These are exactly the temporaries whose liveness crosses a block
    boundary (assuming every use is reached by some def; uninitialized
    reads also land here, conservatively).  ``ue`` may be passed when the
    upward-exposed sets are already in hand (as in
    :func:`compute_liveness`) to avoid rescanning every instruction.
    """
    if ue is None:
        ue, _ = _block_local_sets(fn)
    out: dict[Temp, None] = {}
    for block in fn.blocks:
        for t in sorted(ue[block.label]):
            out.setdefault(t, None)
    return list(out)


def compute_liveness(fn: Function, cfg: CFG | None = None) -> LivenessInfo:
    """Solve backward liveness over the global temporaries of ``fn``."""
    cfg = cfg or CFG.build(fn)
    ue, kill = _block_local_sets(fn)
    index = TempIndex.of(global_temps(fn, ue))
    gen = {label: index.mask_of(temps) for label, temps in ue.items()}
    kill_masks = {label: index.mask_of(temps) for label, temps in kill.items()}
    result = solve(DataflowProblem(cfg, Direction.BACKWARD, gen, kill_masks))
    return LivenessInfo(index, result.in_, result.out, result.iterations)
