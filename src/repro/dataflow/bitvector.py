"""Integer bit vectors and the temporary <-> bit-position index.

All block-level dataflow in this repo (liveness here, the binpacking
``USED_CONSISTENCY`` analysis in the allocator) manipulates ``int`` masks;
a :class:`TempIndex` fixes which temporary owns which bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.ir.temp import Temp


def bits_of(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def popcount(mask: int) -> int:
    """Number of set bits."""
    return mask.bit_count()


def translate_mask(mask: int, table: list[int]) -> int:
    """Re-index ``mask`` through a per-bit translation ``table``.

    Entry ``i`` of ``table`` is the target-space mask contributed by
    source bit ``i`` (``0`` drops the bit).  Cost is proportional to the
    number of *set* bits, so translating a sparse liveness mask into a
    graph's node space never touches the temporaries that are dead.
    """
    out = 0
    while mask:
        low = mask & -mask
        out |= table[low.bit_length() - 1]
        mask ^= low
    return out


@dataclass(eq=False)
class TempIndex:
    """A bijection between a chosen set of temporaries and bit positions.

    Temporaries not in the index (block-local ones, under the paper's
    Section 3 optimization) simply have no bit; ``bit_or_none`` returns
    ``None`` for them and mask construction skips them.
    """

    temps: list[Temp]
    _position: dict[Temp, int]

    @classmethod
    def of(cls, temps: Iterable[Temp]) -> "TempIndex":
        """Index ``temps`` in their given (deterministic) order."""
        ordered = list(temps)
        return cls(ordered, {t: i for i, t in enumerate(ordered)})

    def __len__(self) -> int:
        return len(self.temps)

    def __contains__(self, temp: Temp) -> bool:
        return temp in self._position

    def bit(self, temp: Temp) -> int:
        """The bit position of ``temp``; raises ``KeyError`` if unindexed."""
        return self._position[temp]

    def bit_or_none(self, temp: Temp) -> int | None:
        """The bit position of ``temp``, or ``None`` if unindexed."""
        return self._position.get(temp)

    def mask_of(self, temps: Iterable[Temp]) -> int:
        """A mask with one bit per *indexed* temp in ``temps``."""
        mask = 0
        for t in temps:
            pos = self._position.get(t)
            if pos is not None:
                mask |= 1 << pos
        return mask

    def temps_of(self, mask: int) -> list[Temp]:
        """The temporaries selected by ``mask``."""
        return [self.temps[i] for i in bits_of(mask)]

    def translation_table(self, target_bit) -> list[int]:
        """A per-bit table mapping this index into a foreign bit space.

        ``target_bit(temp)`` returns the foreign bit position of ``temp``
        or ``None`` to drop it; the table feeds :func:`translate_mask`,
        letting a consumer (the interference build's node space, say)
        re-index whole liveness masks without materializing temp lists.
        """
        table = []
        for t in self.temps:
            bit = target_bit(t)
            table.append(0 if bit is None else 1 << bit)
        return table
