"""The eleven benchmark analogs (Table 1/2, Figure 3 workloads).

The paper evaluates on SPEC92 (alvinn, doduc, eqntott, espresso, fpppp,
li, tomcatv), SPEC95 (compress, m88ksim) and two UNIX utilities (sort,
wc).  We cannot compile SPEC sources, so each analog is a minic program
chosen to reproduce the *register-pressure signature* that drives the
paper's results for that benchmark — see DESIGN.md Section 6 for the
mapping rationale.  Highlights:

* ``fpppp`` — enormous straight-line floating-point blocks with dozens of
  simultaneously-live values: the only benchmark where both allocators
  spill heavily (18.6% / 13.4% of dynamic instructions in the paper).
* ``wc`` — a hot loop with many scalars live across a call: the paper's
  showcase for second chance (two-pass binpacking ran 38% slower).
* ``eqntott`` — almost all time in a tiny compare routine with few
  temporaries: no spilling, so differences come from moves alone.

Use :func:`program_source` / :func:`build_program`; ``PROGRAM_NAMES``
lists them in the paper's Table 1 order.
"""

from __future__ import annotations

from repro.ir.module import Module
from repro.lang.lower import compile_minic
from repro.target.alpha import alpha
from repro.target.machine import MachineDescription

# ----------------------------------------------------------------------
# alvinn: neural-net training (FP array sweeps, very low pressure).
# ----------------------------------------------------------------------
_ALVINN = """
global float input[32];
global float hidden[8];
global float w1[256];
global float w2[8];
global float deltas[8];

func void init() {
  for (int i = 0; i < 32; i = i + 1) {
    input[i] = float(i % 7) * 0.25 - 0.5;
  }
  for (int i = 0; i < 256; i = i + 1) {
    w1[i] = float((i * 37) % 11) * 0.1 - 0.5;
  }
  for (int i = 0; i < 8; i = i + 1) {
    w2[i] = float(i) * 0.125;
  }
  return;
}

func float forward() {
  float out = 0.0;
  for (int h = 0; h < 8; h = h + 1) {
    float acc = 0.0;
    for (int i = 0; i < 32; i = i + 1) {
      acc = acc + input[i] * w1[h * 32 + i];
    }
    float act = acc / (1.0 + acc * acc);
    hidden[h] = act;
    out = out + act * w2[h];
  }
  return out;
}

func void backward(float err) {
  for (int h = 0; h < 8; h = h + 1) {
    float d = err * w2[h];
    deltas[h] = d;
    w2[h] = w2[h] + 0.05 * err * hidden[h];
    for (int i = 0; i < 32; i = i + 1) {
      w1[h * 32 + i] = w1[h * 32 + i] + 0.05 * d * input[i];
    }
  }
  return;
}

func int main() {
  init();
  float target = 0.75;
  float out = 0.0;
  for (int epoch = 0; epoch < 24; epoch = epoch + 1) {
    out = forward();
    backward(target - out);
  }
  print out;
  float checksum = 0.0;
  for (int i = 0; i < 256; i = i + 1) { checksum = checksum + w1[i]; }
  print checksum;
  return 0;
}
"""

# ----------------------------------------------------------------------
# doduc: Monte-Carlo-ish nuclear reactor kernel (many FP scalars).
# ----------------------------------------------------------------------
_DODUC = """
global float table[64];

func float advance(float x) {
  return (x * 1103.0 + 12345.0) / 65536.0 - float(int((x * 1103.0 + 12345.0) / 65536.0));
}

func int main() {
  for (int i = 0; i < 64; i = i + 1) {
    table[i] = float(i) * 0.015625;
  }
  float seed = 0.371;
  float energy = 1.0; float flux = 0.0; float absorb = 0.0;
  float leak = 0.0; float temp = 300.0; float pres = 1.0;
  float rho = 0.72; float mu = 0.11; float sigma = 0.43; float beta = 0.0065;
  for (int step = 0; step < 600; step = step + 1) {
    seed = advance(seed);
    float r = seed;
    int bin = int(r * 64.0) % 64;
    float xs = table[bin];
    float path = 1.0 / (sigma + xs + 0.001);
    if (r < beta * 10.0) {
      absorb = absorb + energy * xs * path;
      energy = energy * 0.97;
    } else {
      if (r < 0.5) {
        flux = flux + energy * path * mu;
        temp = temp + energy * 0.001;
      } else {
        leak = leak + energy * path * (1.0 - rho);
        pres = pres + leak * 0.0001;
      }
    }
    float k = (flux + absorb) / (leak + 1.0);
    energy = energy + (k - energy) * 0.05;
    sigma = sigma + (temp - 300.0) * 0.00001;
    mu = mu * 0.9999 + beta;
    rho = rho + (pres - 1.0) * 0.0001;
  }
  print energy; print flux; print absorb; print leak;
  print temp; print pres; print rho; print sigma;
  return 0;
}
"""

# ----------------------------------------------------------------------
# eqntott: time dominated by a tiny compare routine (cmppt).
# ----------------------------------------------------------------------
_EQNTOTT = """
global int pterms[512];

func int cmppt(int a, int b) {
  int i = 0;
  while (i < 4) {
    int x = pterms[a * 4 + i];
    int y = pterms[b * 4 + i];
    if (x < y) { return 0 - 1; }
    if (x > y) { return 1; }
    i = i + 1;
  }
  return 0;
}

func int main() {
  for (int i = 0; i < 512; i = i + 1) {
    pterms[i] = (i * 193 + 71) % 64;
  }
  int inversions = 0;
  for (int i = 0; i < 96; i = i + 1) {
    for (int j = 0; j < 96; j = j + 1) {
      if (cmppt(i, j) > 0) { inversions = inversions + 1; }
    }
  }
  print inversions;
  return inversions;
}
"""

# ----------------------------------------------------------------------
# espresso: boolean-cover manipulation (int set ops, branchy loops).
# ----------------------------------------------------------------------
_ESPRESSO = """
global int cover[256];
global int care[256];

func int count_ones(int word) {
  int n = 0;
  while (word != 0) {
    n = n + (word % 2 + 2) % 2;
    word = word / 2;
    if (word < 0) { word = 0 - word; }
  }
  return n;
}

func int main() {
  for (int i = 0; i < 256; i = i + 1) {
    cover[i] = (i * 2654435761) % 65536;
    care[i] = (i * 40503 + 661) % 65536;
  }
  int literals = 0; int cubes = 0; int merged = 0;
  for (int pass = 0; pass < 4; pass = pass + 1) {
    for (int i = 0; i < 255; i = i + 1) {
      int a = cover[i];
      int b = cover[i + 1];
      int mask = care[i];
      int inter = a * 0; // placeholder kept live across the branches
      inter = (a / 2) * 2; // even part
      int dist = count_ones((a + b) % 65536);
      if (dist < 8) {
        merged = merged + 1;
        cover[i] = (a + b + inter) % 65536;
      } else {
        if (count_ones(a % (mask + 1)) > count_ones(b % (mask + 1))) {
          cover[i] = b;
        }
      }
      literals = literals + dist;
      cubes = cubes + count_ones(mask % 256);
    }
  }
  print literals; print cubes; print merged;
  int checksum = 0;
  for (int i = 0; i < 256; i = i + 1) { checksum = (checksum + cover[i]) % 1000003; }
  print checksum;
  return checksum;
}
"""

# ----------------------------------------------------------------------
# li: a tiny lisp-ish evaluator over a cons heap (recursive, call-heavy).
# ----------------------------------------------------------------------
_LI = """
global int heap[1024];

// cons cells: heap[2k] = car, heap[2k+1] = cdr (0 = nil, negative = number)

func int cons(int car, int cdr, int k) {
  heap[2 * k] = car;
  heap[2 * k + 1] = cdr;
  return k;
}

func int sumlist(int cell) {
  if (cell == 0) { return 0; }
  int car = heap[2 * cell];
  int rest = sumlist(heap[2 * cell + 1]);
  if (car < 0) { return (0 - car) + rest; }
  return sumlist(car) + rest;
}

func int listlen(int cell) {
  int n = 0;
  while (cell != 0) {
    n = n + 1;
    cell = heap[2 * cell + 1];
  }
  return n;
}

func int main() {
  // Build lists: list k = (-k . list (k-1)) for k in 1..100
  int head = 0;
  for (int k = 1; k <= 100; k = k + 1) {
    head = cons(0 - k, head, k);
  }
  // A nested list: (list1 list2 ... ) every 10th
  int nested = 0;
  for (int k = 10; k <= 100; k = k + 10) {
    nested = cons(k, nested, 100 + k / 10);
  }
  int total = 0;
  for (int round = 0; round < 16; round = round + 1) {
    total = total + sumlist(head) + sumlist(nested) + listlen(head);
  }
  print total;
  return total;
}
"""

# ----------------------------------------------------------------------
# tomcatv: 2-D vectorized mesh generation (FP stencil loops).
# ----------------------------------------------------------------------
_TOMCATV = """
global float x[400];
global float y[400];
global float rx[400];
global float ry[400];

func int main() {
  int n = 20;
  for (int i = 0; i < n; i = i + 1) {
    for (int j = 0; j < n; j = j + 1) {
      x[i * n + j] = float(i) + float(j) * 0.01;
      y[i * n + j] = float(j) - float(i) * 0.01;
    }
  }
  float rxm = 0.0; float rym = 0.0;
  for (int iter = 0; iter < 8; iter = iter + 1) {
    rxm = 0.0; rym = 0.0;
    for (int i = 1; i < n - 1; i = i + 1) {
      for (int j = 1; j < n - 1; j = j + 1) {
        float xx = x[i * n + j + 1] - x[i * n + j - 1];
        float yx = y[i * n + j + 1] - y[i * n + j - 1];
        float xy = x[(i + 1) * n + j] - x[(i - 1) * n + j];
        float yy = y[(i + 1) * n + j] - y[(i - 1) * n + j];
        float a = 0.25 * (xy * xy + yy * yy);
        float b = 0.25 * (xx * xx + yx * yx);
        float c = 0.125 * (xx * xy + yx * yy);
        float qi = 0.0; float qj = 0.0;
        qi = a * (x[i * n + j + 1] + x[i * n + j - 1]);
        qi = qi + b * (x[(i + 1) * n + j] + x[(i - 1) * n + j]);
        qi = qi - c * (x[(i + 1) * n + j + 1] - x[(i - 1) * n + j + 1]);
        qj = a * (y[i * n + j + 1] + y[i * n + j - 1]);
        qj = qj + b * (y[(i + 1) * n + j] + y[(i - 1) * n + j]);
        qj = qj - c * (y[(i + 1) * n + j + 1] - y[(i - 1) * n + j + 1]);
        float denom = 2.0 * (a + b) + 0.0001;
        float nx = qi / denom;
        float ny = qj / denom;
        rx[i * n + j] = nx - x[i * n + j];
        ry[i * n + j] = ny - y[i * n + j];
        float ax = rx[i * n + j]; if (ax < 0.0) { ax = 0.0 - ax; }
        float ay = ry[i * n + j]; if (ay < 0.0) { ay = 0.0 - ay; }
        if (ax > rxm) { rxm = ax; }
        if (ay > rym) { rym = ay; }
      }
    }
    for (int i = 1; i < n - 1; i = i + 1) {
      for (int j = 1; j < n - 1; j = j + 1) {
        x[i * n + j] = x[i * n + j] + rx[i * n + j] * 0.5;
        y[i * n + j] = y[i * n + j] + ry[i * n + j] * 0.5;
      }
    }
  }
  print rxm; print rym;
  float checksum = 0.0;
  for (int k = 0; k < 400; k = k + 1) { checksum = checksum + x[k] - y[k]; }
  print checksum;
  return 0;
}
"""

# ----------------------------------------------------------------------
# compress: LZW-flavoured hashing over a code table (long-lived ints).
# ----------------------------------------------------------------------
_COMPRESS = """
global int text[512];
global int codes[1024];
global int prefix[1024];

func int main() {
  for (int i = 0; i < 512; i = i + 1) {
    text[i] = (i * 31 + i / 7) % 27;
  }
  for (int i = 0; i < 1024; i = i + 1) { codes[i] = 0 - 1; prefix[i] = 0; }
  int next_code = 256;
  int current = text[0];
  int emitted = 0;
  int collisions = 0;
  for (int pos = 1; pos < 512; pos = pos + 1) {
    int symbol = text[pos];
    int key = (current * 256 + symbol) % 1024;
    int probes = 0;
    int found = 0 - 1;
    while (probes < 8 && found < 0) {
      int slot = (key + probes * probes) % 1024;
      if (codes[slot] == current * 256 + symbol) {
        found = prefix[slot];
      } else {
        if (codes[slot] < 0) {
          codes[slot] = current * 256 + symbol;
          prefix[slot] = next_code;
          next_code = next_code + 1;
          probes = 99;
        } else {
          collisions = collisions + 1;
        }
      }
      probes = probes + 1;
    }
    if (found >= 0) {
      current = found;
    } else {
      emitted = emitted + 1;
      current = symbol;
    }
  }
  print emitted; print collisions; print next_code;
  return emitted;
}
"""

# ----------------------------------------------------------------------
# m88ksim: a tiny CPU interpreter (decode dispatch, int state machine).
# ----------------------------------------------------------------------
_M88KSIM = """
global int mem[256];
global int regs[16];

func int main() {
  // A hand-assembled program for the interpreted machine:
  //   op 1 = addi rd, rs, imm ; op 2 = add rd, rs, rt ; op 3 = beq-back
  //   op 4 = load rd, [rs]    ; op 5 = store rs -> [rd]; op 0 = halt
  // encoding: op*4096 + rd*256 + rs*16 + rt/imm
  mem[0] = 1 * 4096 + 1 * 256 + 0 * 16 + 0;   // r1 = r0 + 0
  mem[1] = 1 * 4096 + 2 * 256 + 0 * 16 + 10;  // r2 = r0 + 10 (counter)
  mem[2] = 1 * 4096 + 3 * 256 + 0 * 16 + 7;   // r3 = 7
  mem[3] = 2 * 4096 + 1 * 256 + 1 * 16 + 3;   // r1 = r1 + r3
  mem[4] = 5 * 4096 + 4 * 256 + 1 * 16 + 0;   // mem[r4] = r1
  mem[5] = 1 * 4096 + 4 * 256 + 4 * 16 + 1;   // r4 = r4 + 1
  mem[6] = 1 * 4096 + 2 * 256 + 2 * 16 + 15;  // r2 = r2 - 1 (imm 15 = -1 mod 16)
  mem[7] = 3 * 4096 + 0 * 256 + 2 * 16 + 4;   // if r2 != 0 jump back 4
  mem[8] = 0;                                  // halt
  int cycles = 0;
  for (int run = 0; run < 120; run = run + 1) {
    for (int i = 0; i < 16; i = i + 1) { regs[i] = 0; }
    regs[4] = 64;
    int pc = 0;
    int halted = 0;
    while (halted == 0 && cycles < 100000) {
      int word = mem[pc];
      int op = word / 4096;
      int rd = (word / 256) % 16;
      int rs = (word / 16) % 16;
      int rt = word % 16;
      pc = pc + 1;
      cycles = cycles + 1;
      if (op == 0) { halted = 1; }
      else { if (op == 1) {
        int imm = rt; if (imm > 7) { imm = imm - 16; }
        regs[rd] = regs[rs] + imm;
      } else { if (op == 2) {
        regs[rd] = regs[rs] + regs[rt];
      } else { if (op == 3) {
        if (regs[rs] != 0) { pc = pc - rt; }
      } else { if (op == 4) {
        regs[rd] = mem[regs[rs] % 256];
      } else { if (op == 5) {
        mem[regs[rd] % 256] = regs[rs];
      } } } } } }
    }
  }
  print cycles;
  int checksum = 0;
  for (int i = 64; i < 80; i = i + 1) { checksum = checksum + mem[i]; }
  print checksum;
  return cycles;
}
"""

# ----------------------------------------------------------------------
# sort: recursive quicksort (UNIX sort analog).
# ----------------------------------------------------------------------
_SORT = """
global int data[512];

func void quicksort(int lo, int hi) {
  if (lo >= hi) { return; }
  int pivot = data[(lo + hi) / 2];
  int i = lo;
  int j = hi;
  while (i <= j) {
    while (data[i] < pivot) { i = i + 1; }
    while (data[j] > pivot) { j = j - 1; }
    if (i <= j) {
      int t = data[i];
      data[i] = data[j];
      data[j] = t;
      i = i + 1;
      j = j - 1;
    }
  }
  quicksort(lo, j);
  quicksort(i, hi);
  return;
}

func int main() {
  for (int i = 0; i < 512; i = i + 1) {
    data[i] = (i * 1103515245 + 12345) % 4096;
  }
  quicksort(0, 511);
  int inversions = 0;
  for (int i = 1; i < 512; i = i + 1) {
    if (data[i - 1] > data[i]) { inversions = inversions + 1; }
  }
  print inversions;
  print data[0]; print data[255]; print data[511];
  return inversions;
}
"""

# ----------------------------------------------------------------------
# wc: word count with many scalars live across a call in the hot loop —
# the paper's second-chance showcase (Section 3.1).
# ----------------------------------------------------------------------
_WC = """
global int text[2048];
global int longest[1];

func int classify(int ch) {
  // stands in for the I/O helper wc calls once per character
  if (ch == 32) { return 0; }
  if (ch == 10) { return 2; }
  return 1;
}

func int main() {
  for (int i = 0; i < 2048; i = i + 1) {
    int r = (i * 48271) % 31;
    if (r < 6) { text[i] = 32; }        // space
    else { if (r < 8) { text[i] = 10; } // newline
    else { text[i] = 97 + r % 26; } }
  }
  // Mutable counters plus a couple of read-only configuration values,
  // all live throughout the hot loop (and therefore across the call) --
  // just past the callee-saved file, the Section 3.1 wc situation.
  int space = 32; int base_a = 97;
  int lines = 0; int words = 0; int chars = 0;
  int in_word = 0; int word_len = 0; int max_len = 0;
  int vowels = 0; int consonants = 0;
  for (int round = 0; round < 6; round = round + 1) {
    for (int i = 0; i < 2048; i = i + 1) {
      int ch = text[i];
      int kind = classify(ch);
      chars = chars + 1;
      if (kind == 2) { lines = lines + 1; }
      if (kind == 1) {
        if (in_word == 0) { words = words + 1; in_word = 1; word_len = 0; }
        word_len = word_len + 1;
        if (word_len > max_len) { max_len = word_len; }
        if (ch == base_a || ch == base_a + 4 || ch == base_a + 8
            || ch == base_a + 14 || ch == base_a + 20) {
          vowels = vowels + 1;
        } else { consonants = consonants + 1; }
      } else {
        in_word = 0;
        if (ch == space) { word_len = 0; }
      }
    }
  }
  longest[0] = max_len;
  print lines; print words; print chars;
  print vowels; print consonants; print max_len;
  return words;
}
"""


def _fpppp_source(n_chains: int = 52, chain_len: int = 4,
                  repeats: int = 40) -> str:
    """Generate the fpppp analog: huge straight-line FP blocks.

    ``n_chains`` values are computed up front and all stay live until a
    final combining block — with ``n_chains`` comfortably above the 32
    floating-point registers, both allocators must spill (the paper
    reports fpppp as the one benchmark with double-digit spill
    percentages).
    """
    lines = ["global float seeds[64];", "",
             "func float block(float s) {"]
    for i in range(n_chains):
        lines.append(f"  float v{i} = s * {1.0 + i * 0.03:.4f} + "
                     f"seeds[{i % 64}];")
    # Several update phases: every value is rewritten repeatedly while all
    # of them stay live, so elided stores are rare and both allocators pay
    # real spill traffic (fpppp is the paper's heavy-spill benchmark).
    for phase in range(3):
        for i in range(n_chains):
            prev = f"v{(i + 1 + phase) % n_chains}"
            expr = f"v{i}"
            for j in range(chain_len):
                other = f"v{(i + j * 7 + phase * 3 + 1) % n_chains}"
                expr = f"({expr} * 0.875 + {other} * 0.125)"
            lines.append(f"  v{i} = {expr} - {prev} * 0.001;")
    combine = " + ".join(f"v{i}" for i in range(n_chains))
    lines.append(f"  return {combine};")
    lines.append("}")
    lines.append("""
func int main() {
  for (int i = 0; i < 64; i = i + 1) { seeds[i] = float(i) * 0.01 - 0.3; }
  float acc = 0.0;
  float s = 1.0;
  for (int r = 0; r < %d; r = r + 1) {
    acc = acc + block(s);
    s = s * 0.999 + 0.001;
  }
  print acc;
  return 0;
}
""" % repeats)
    return "\n".join(lines)


#: Sources keyed by benchmark name, in the paper's Table 1 order.
PROGRAM_SOURCES: dict[str, str] = {
    "alvinn": _ALVINN,
    "doduc": _DODUC,
    "eqntott": _EQNTOTT,
    "espresso": _ESPRESSO,
    "fpppp": _fpppp_source(),
    "li": _LI,
    "tomcatv": _TOMCATV,
    "compress": _COMPRESS,
    "m88ksim": _M88KSIM,
    "sort": _SORT,
    "wc": _WC,
}

#: Table 1 ordering.
PROGRAM_NAMES: list[str] = list(PROGRAM_SOURCES)


def fpppp_scaled_source(n_chains: int = 20, chain_len: int = 3,
                        repeats: int = 4) -> str:
    """A scaled-down fpppp analog (same shape, fewer/shorter chains).

    The full analog deliberately stresses the allocators for seconds;
    this variant keeps the huge-straight-line-block character (still
    above the FP register file, so it still spills) at a fraction of the
    size — the ``interference.quick`` perf-smoke cell compiles it so CI
    can gate the interference build without paying for full fpppp.
    """
    return _fpppp_source(n_chains=n_chains, chain_len=chain_len,
                         repeats=repeats)


def program_source(name: str) -> str:
    """The minic source of one analog."""
    try:
        return PROGRAM_SOURCES[name]
    except KeyError:
        raise KeyError(f"unknown benchmark analog {name!r}; "
                       f"choose from {PROGRAM_NAMES}") from None


def build_program(name: str,
                  machine: MachineDescription | None = None) -> Module:
    """Compile one analog to IR for ``machine`` (default: alpha)."""
    return compile_minic(program_source(name), machine or alpha())
