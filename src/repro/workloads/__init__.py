"""Workloads: benchmark analogs and synthetic program generators.

``programs`` holds the eleven analog programs standing in for the paper's
benchmark suite (Table 1/2, Figure 3); ``synthetic`` generates random —
but always terminating and fully initialized — programs for property
tests and the compile-time scaling study (Table 3).
"""

from repro.workloads.synthetic import random_module, scaled_module

__all__ = ["random_module", "scaled_module"]
