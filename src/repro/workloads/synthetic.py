"""Random and size-scaled IR program generators.

``random_module`` builds structured random programs straight on the IR
builder: nested bounded loops, if/else diamonds, integer and float
expression chains, global-array traffic, helper calls, and long-lived
"pinned" values that stay live across loops and calls (the pressure
pattern that makes ``wc`` interesting in the paper).  Programs are
terminating by construction (loops count down from small constants) and
every temporary is defined before any use on every path, so the simulator
oracle applies.

``scaled_module`` builds a single function with a chosen number of
register candidates and tunable overlap, reproducing the problem sizes of
Table 3 (245 … 6697 candidates) without needing SPEC sources.

Division hazards are avoided structurally: integer denominators have the
form ``w*w + 1`` (never zero mod 2**64 — squares are ≡ 0, 1, or 4 mod 8,
so ``w*w`` is never ``-1``) and float denominators ``w*w + 1.0``.
"""

from __future__ import annotations

import random

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Op
from repro.ir.module import Module
from repro.ir.temp import Reg
from repro.ir.types import RegClass
from repro.target.machine import MachineDescription

G = RegClass.GPR
F = RegClass.FPR


class _FunctionGenerator:
    """Generates one random function body."""

    def __init__(self, rng: random.Random, module: Module, fn: Function,
                 machine: MachineDescription, callees: list[str],
                 size: int):
        self.rng = rng
        self.module = module
        self.fn = fn
        self.machine = machine
        self.callees = callees
        self.b = FunctionBuilder(fn)
        self.int_vars: list[Reg] = []
        self.float_vars: list[Reg] = []
        self.budget = size

    # ------------------------------------------------------------------
    # Expressions.
    # ------------------------------------------------------------------
    def int_expr(self) -> Reg:
        rng = self.rng
        kind = rng.random()
        a = rng.choice(self.int_vars)
        if kind < 0.25:
            return self.b.li(rng.randint(-64, 64))
        if kind < 0.45:
            return self.b.addi(a, rng.randint(-8, 8))
        bb = rng.choice(self.int_vars)
        op = rng.choice(["add", "sub", "mul", "and_", "or_", "xor",
                         "slt", "sle", "seq", "sne", "div", "rem", "shl"])
        if op in ("div", "rem"):
            denom = self.b.addi(self.b.mul(bb, bb), 1)
            return getattr(self.b, op)(a, denom)
        if op == "shl":
            amount = self.b.li(rng.randint(0, 5))
            return self.b.shl(a, amount)
        return getattr(self.b, op)(a, bb)

    def float_expr(self) -> Reg:
        rng = self.rng
        kind = rng.random()
        if kind < 0.2 or not self.float_vars:
            return self.b.fli(rng.uniform(-4.0, 4.0))
        a = rng.choice(self.float_vars)
        if kind < 0.35:
            return self.b.itof(rng.choice(self.int_vars))
        bb = rng.choice(self.float_vars)
        op = rng.choice(["fadd", "fsub", "fmul", "fdiv"])
        if op == "fdiv":
            one = self.b.fli(1.0)
            denom = self.b.fadd(self.b.fmul(bb, bb), one)
            return self.b.fdiv(a, denom)
        return getattr(self.b, op)(a, bb)

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------
    def statements(self, count: int, depth: int) -> None:
        for _ in range(count):
            if self.budget <= 0:
                return
            self.budget -= 1
            self._statement(depth)

    def _statement(self, depth: int) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.30:
            self.b.mov(self.int_expr(), dst=rng.choice(self.int_vars))
        elif roll < 0.45:
            self.b.fmov(self.float_expr(), dst=rng.choice(self.float_vars))
        elif roll < 0.53:
            value = rng.choice(self.int_vars + self.float_vars)
            self.b.print_(value)
        elif roll < 0.63 and self.module.globals:
            self._array_statement()
        elif roll < 0.73 and self.callees:
            self._call_statement()
        elif roll < 0.86 and depth < 3:
            self._if_statement(depth)
        elif depth < 3:
            if rng.random() < 0.35:
                self._critical_loop_statement(depth)
            else:
                self._loop_statement(depth)
        else:
            self.b.mov(self.int_expr(), dst=rng.choice(self.int_vars))

    def _array_statement(self) -> None:
        rng = self.rng
        arr = rng.choice(list(self.module.globals.values()))
        base = self.b.li(arr.base)
        mask = self.b.li(arr.size - 1)  # arrays are power-of-two sized
        index = self.b.and_(rng.choice(self.int_vars), mask)
        address = self.b.add(base, index)
        if arr.regclass is G:
            if rng.random() < 0.5:
                self.b.st(rng.choice(self.int_vars), address)
            else:
                self.b.mov(self.b.ld(address), dst=rng.choice(self.int_vars))
        else:
            if rng.random() < 0.5:
                self.b.fst(rng.choice(self.float_vars), address)
            else:
                self.b.fmov(self.b.fld(address), dst=rng.choice(self.float_vars))

    def _call_statement(self) -> None:
        rng = self.rng
        callee = rng.choice(self.callees)
        arg_reg = self.machine.param_regs(G)[0]
        ret_reg = self.machine.ret_reg(G)
        self.b.emit(Instr(Op.MOV, defs=[arg_reg],
                          uses=[rng.choice(self.int_vars)]))
        self.b.call(callee, arg_regs=[arg_reg], ret_reg=ret_reg)
        self.b.emit(Instr(Op.MOV, defs=[rng.choice(self.int_vars)],
                          uses=[ret_reg]))

    def _if_statement(self, depth: int) -> None:
        rng = self.rng
        cond = self.b.slt(rng.choice(self.int_vars), rng.choice(self.int_vars))
        then_label = self.fn.new_label("then")
        else_label = self.fn.new_label("else")
        join_label = self.fn.new_label("join")
        self.b.br(cond, then_label, else_label)
        self.b.new_block(then_label)
        self.statements(rng.randint(1, 3), depth + 1)
        self.b.jmp(join_label)
        self.b.new_block(else_label)
        if rng.random() < 0.7:
            self.statements(rng.randint(1, 3), depth + 1)
        self.b.jmp(join_label)
        self.b.new_block(join_label)

    def _loop_statement(self, depth: int) -> None:
        rng = self.rng
        counter = self.b.mov(self.b.li(rng.randint(1, 4)))
        head = self.fn.new_label("head")
        body = self.fn.new_label("body")
        done = self.fn.new_label("exit")
        self.b.jmp(head)
        self.b.new_block(head)
        zero = self.b.li(0)
        self.b.br(self.b.slt(zero, counter), body, done)
        self.b.new_block(body)
        self.statements(rng.randint(1, 4), depth + 1)
        self.b.mov(self.b.addi(counter, -1), dst=counter)
        self.b.jmp(head)
        self.b.new_block(done)

    def _critical_loop_statement(self, depth: int) -> None:
        """A do-while loop whose backedge is a *critical* CFG edge.

        The loop body is entered both by fall-in and by the backedge, and
        the latch's conditional branch has two successors — so the
        backedge runs from a multi-successor block to a multi-predecessor
        block, exactly the shape edge resolution must split.  An optional
        early exit makes the loop-exit edge critical as well.
        """
        rng = self.rng
        counter = self.b.mov(self.b.li(rng.randint(1, 4)))
        body = self.fn.new_label("cbody")
        done = self.fn.new_label("cexit")
        early = rng.random() < 0.5
        self.b.jmp(body)
        self.b.new_block(body)
        if early:
            # ``done`` gains a second predecessor, so this exit edge is
            # critical too (the branch block keeps its two successors).
            cond = self.b.seq(counter, self.b.li(rng.randint(5, 9)))
            stay = self.fn.new_label("cstay")
            self.b.br(cond, done, stay)
            self.b.new_block(stay)
        self.statements(rng.randint(1, 3), depth + 1)
        self.b.mov(self.b.addi(counter, -1), dst=counter)
        zero = self.b.li(0)
        self.b.br(self.b.slt(zero, counter), body, done)
        self.b.new_block(done)

    # ------------------------------------------------------------------
    # Whole function.
    # ------------------------------------------------------------------
    def generate(self, n_int_vars: int, n_float_vars: int,
                 is_leaf: bool) -> None:
        rng = self.rng
        self.b.new_block("entry")
        if not is_leaf:
            param = self.fn.new_temp(G, "p")
            self.fn.params.append(param)
            self.b.emit(Instr(Op.MOV, defs=[param],
                              uses=[self.machine.param_regs(G)[0]]))
            self.int_vars.append(param)
        while len(self.int_vars) < n_int_vars:
            self.int_vars.append(self.b.mov(self.b.li(rng.randint(-16, 16))))
        for _ in range(n_float_vars):
            self.float_vars.append(self.b.fmov(self.b.fli(rng.uniform(-2, 2))))
        self.statements(rng.randint(3, 8), 0)
        # Fold everything still live into the observable output.
        total = self.b.li(0)
        for var in self.int_vars:
            total = self.b.add(total, var)
        self.b.print_(total)
        for var in self.float_vars:
            self.b.print_(var)
        ret_reg = self.machine.ret_reg(G)
        self.b.emit(Instr(Op.MOV, defs=[ret_reg], uses=[total]))
        self.b.ret(ret_reg)


def random_module(seed: int, machine: MachineDescription, *,
                  size: int = 25, n_helpers: int = 1,
                  n_int_vars: int = 4, n_float_vars: int = 2) -> Module:
    """A random, terminating, fully-initialized program.

    ``size`` bounds the statement count per function; variables pinned at
    entry stay live to the end, creating pressure that scales with
    ``n_int_vars``/``n_float_vars`` relative to the machine's file sizes.
    """
    rng = random.Random(seed)
    module = Module()
    for name in ("gdata", "fdata"):
        cls = G if name == "gdata" else F
        fill = tuple(rng.randint(-9, 9) if cls is G else rng.uniform(-2, 2)
                     for _ in range(8))
        module.add_global(name, cls, 8, fill)

    helper_names = [f"helper{i}" for i in range(n_helpers)]
    for i, name in enumerate(helper_names):
        fn = Function(name)
        module.add_function(fn)
        gen = _FunctionGenerator(rng, module, fn, machine,
                                 callees=helper_names[:i], size=max(size // 3, 4))
        gen.generate(n_int_vars=max(2, n_int_vars - 1),
                     n_float_vars=max(1, n_float_vars - 1), is_leaf=False)

    main = Function("main")
    module.add_function(main)
    gen = _FunctionGenerator(rng, module, main, machine,
                             callees=helper_names, size=size)
    gen.generate(n_int_vars=n_int_vars, n_float_vars=n_float_vars,
                 is_leaf=True)
    return module


def scaled_module(n_candidates: int, seed: int = 0, *,
                  group: int | None = None) -> Module:
    """A single-function module with ~``n_candidates`` register candidates.

    Candidates are minted in overlapping groups of ``group`` long-lived
    values that are summed much later.  By default the group size grows
    with ``n_candidates`` (≈ ``n**0.55``), mirroring the paper's data
    where interference density rises with module size (espresso's 245
    candidates average ~4 edges each, fpppp's 6697 average ~17) — the
    regime where Table 3 shows coloring's repeated graph construction
    dominating while the linear scan stays linear.
    """
    rng = random.Random(seed)
    if group is None:
        group = max(12, int(n_candidates ** 0.5))
    module = Module()
    fn = Function("main")
    module.add_function(fn)
    b = FunctionBuilder(fn)
    b.new_block("entry")
    seeds = [b.li(rng.randint(1, 99)) for _ in range(4)]
    pending: list[Reg] = []
    acc = b.li(0)
    made = 8  # temps so far (seeds + acc + slack)
    while made < n_candidates:
        value = b.add(rng.choice(seeds), rng.choice(pending or seeds))
        value = b.xor(value, rng.choice(seeds))
        pending.append(value)
        made += 2
        if len(pending) >= group:
            # Retire the whole group: a burst of uses long after the defs.
            for v in pending:
                acc = b.add(acc, v)
                made += 1
            pending.clear()
    for v in pending:
        acc = b.add(acc, v)
    b.print_(acc)
    b.ret(acc)
    return module
