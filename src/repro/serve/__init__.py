"""Allocation-as-a-service: the long-running compilation server.

``repro.serve`` puts the whole pipeline behind a socket: clients send
IR (or minic) modules with an allocator name and an
:class:`~repro.spill.AllocationContext`, and get back allocated code,
Figure-3 spill statistics, and metric summaries.  The production lever
is the persistent allocation cache (:mod:`repro.serve.cache`) layered
on :class:`~repro.results.store.ResultStore`: identical functions
arriving from many clients cost one allocation, across requests *and*
across server restarts.  Cache misses are scheduled onto the same
process pool as :mod:`repro.pm.batch` (the worker is
:func:`repro.pm.batch.allocation_artifact`).

Layers:

* :mod:`repro.serve.protocol` — the JSONL wire format, validation,
  size bounds, and the structured error taxonomy;
* :mod:`repro.serve.cache` — content-addressed artifact cache over the
  crash-safe result store;
* :mod:`repro.serve.server` — the ``asyncio`` server (JSONL over a
  socket, plus a minimal HTTP facade);
* :mod:`repro.serve.client` — a small blocking client;
* :mod:`repro.serve.load` — the load generator and the ``--soak``
  driver that lands throughput/latency in the perf trajectory.

See ``docs/SERVING.md`` for the protocol and operational story.
"""

from repro.serve.cache import AllocationCache, artifact_cache_key
from repro.serve.client import ServeClient, ServeError, wait_ready
from repro.serve.load import LoadReport, build_corpus, run_load, run_soak
from repro.serve.protocol import (MAX_MODULE_BYTES, PROTOCOL_VERSION,
                                  ProtocolError, decode_request, encode,
                                  error_response)
from repro.serve.server import AllocationServer

__all__ = ["AllocationCache", "AllocationServer", "LoadReport",
           "MAX_MODULE_BYTES", "PROTOCOL_VERSION", "ProtocolError",
           "ServeClient", "ServeError", "artifact_cache_key",
           "build_corpus", "decode_request", "encode", "error_response",
           "run_load", "run_soak", "wait_ready"]
