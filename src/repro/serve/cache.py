"""The persistent allocation cache: one allocation per unique function.

Every compiled artifact is keyed by a content hash over the things that
determine the allocator's output:

* the module source text exactly as it crossed the wire (IR or minic —
  the client's bytes, not a re-print, so the key needs no parse);
* the allocator registry name;
* the canonical :meth:`~repro.spill.AllocationContext.describe` string;
* the machine *signature* (name + register file sizes — the semantic
  part of the spec, so ``tiny:8x8`` spelled two ways still collides);
* the spill-cleanup flag, and an artifact-schema salt so a future
  artifact layout change invalidates instead of corrupting.

The hash uses SHA-256 (:func:`repro.results.store.content_hash`), so
keys are stable across processes, machines, and ``PYTHONHASHSEED``
values — which is what lets the cache *persist*: artifacts are records
(``kind="serve"``) in a :class:`~repro.results.store.ResultStore`, so
they survive server restarts, are crash-safe (committed per request
behind the store's lock + fsync), and can be shared between a server
and CLI tooling pointing at the same directory.

Metering (``serve.cache.*`` in the server's registry): ``.hits``,
``.misses``, ``.bytes`` (serialized artifact bytes committed),
``.preloaded`` (artifacts found on open).
"""

from __future__ import annotations

import json
import os

from repro.obs.metrics import MetricsRegistry
from repro.results.store import CellKey, ResultStore, content_hash

#: Bumped when the artifact payload layout changes incompatibly; old
#: cache entries then miss and are recomputed, never misread.
#: v2: the metrics snapshot gained the simulation counters (``sim.*``).
ARTIFACT_SCHEMA = 2


def artifact_cache_key(request: dict) -> tuple[CellKey, str]:
    """The ``(cell key, content hash)`` pair for one normalized
    allocate request (see :func:`repro.serve.protocol.decode_request`).

    Pure and ``PYTHONHASHSEED``-independent: the same request always
    maps to the same cell, in any process, on any day.
    """
    from repro.results.suite import machine_from_spec, machine_signature

    source_kind = "ir" if request.get("ir") else "minic"
    source = request.get("ir") or request.get("minic", "")
    signature = machine_signature(machine_from_spec(request["machine"]))
    sha = content_hash(f"serve-artifact-v{ARTIFACT_SCHEMA}",
                       source_kind, source,
                       request["allocator"], request.get("context", ""),
                       signature,
                       f"cleanup={int(bool(request.get('spill_cleanup')))}")
    key = CellKey(workload=f"serve:{sha[:16]}",
                  allocator=request["allocator"],
                  machine=request["machine"],
                  spill_cleanup=bool(request.get("spill_cleanup")),
                  kind="serve",
                  context=request.get("context", ""))
    return key, sha


class AllocationCache:
    """Persistent artifact cache over one result-store directory.

    Reads are in-memory dictionary lookups (the store keeps its records
    loaded); writes commit one store run per artifact — ``begin_run`` /
    ``put`` / ``finish_run`` under the store's advisory lock, fsync'd —
    so a crash after :meth:`put` returns can never lose the artifact,
    and a concurrent CLI sharing the directory never interleaves.
    """

    def __init__(self, root: str | os.PathLike | None = None, *,
                 metrics: MetricsRegistry | None = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.store = ResultStore(root, metrics=self.metrics)
        preloaded = sum(1 for record in self.store.iter_latest()
                        if record.key.kind == "serve")
        if preloaded:
            self.metrics.bump("serve.cache.preloaded", preloaded)

    def __len__(self) -> int:
        return sum(1 for record in self.store.iter_latest()
                   if record.key.kind == "serve")

    def get(self, key: CellKey, sha: str) -> dict | None:
        """The cached artifact, or ``None`` on a miss (metered)."""
        record = self.store.lookup(key, sha)
        if record is None:
            self.metrics.bump("serve.cache.misses")
            return None
        self.metrics.bump("serve.cache.hits")
        return record.data

    def put(self, key: CellKey, sha: str, artifact: dict) -> None:
        """Commit one computed artifact durably (its own store run)."""
        self.store.begin_run(label="serve")
        try:
            self.store.put(key, sha, artifact)
        except BaseException:
            self.store.abort_run()
            raise
        self.store.finish_run({"computed": 1, "label": "serve"})
        self.metrics.bump(
            "serve.cache.bytes",
            len(json.dumps(artifact, sort_keys=True).encode("utf-8")))


__all__ = ["ARTIFACT_SCHEMA", "AllocationCache", "artifact_cache_key"]
