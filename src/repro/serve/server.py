"""The asyncio allocation server: JSONL over a socket, plus bare HTTP.

One event loop multiplexes every connection; cache hits are answered
inline (a dictionary lookup plus JSON serialization), and cache misses
are scheduled onto an executor — a ``ProcessPoolExecutor`` running
:func:`repro.pm.batch.allocation_artifact` (``jobs >= 1``), or the
default thread executor (``jobs = 0``, used by tests and tiny
deployments where process spin-up would dominate).  Identical requests
in flight at the same time are *coalesced*: one allocation runs, every
waiter shares the result (``serve.coalesced``).

Both protocols share one port: a connection whose first bytes spell an
HTTP verb gets the minimal HTTP facade (``POST /allocate``,
``GET /stats``, ``GET /healthz``, one request per connection); anything
else is treated as JSONL (many requests per connection, ordered).

Failure containment, in order of blast radius:

* a malformed request → structured error response, connection lives;
* an oversized line → ``too-large`` response, then the connection is
  closed (JSONL cannot resynchronize mid-line);
* a client vanishing mid-request → the compute finishes and lands in
  the cache (the next client gets a hit), the writer error is
  swallowed, and the pool stays healthy;
* a worker failure → an ``alloc-error``/``parse-error`` *response*
  (the worker returns failures as data, never poisons the pool).

Per-request latency phases land in the server's metrics registry
(``serve.latency.total_s`` / ``.compute_s`` / ``.commit_s`` via
:meth:`~repro.obs.metrics.MetricsRegistry.timed`), and the cache meters
``serve.cache.*`` — ``repro serve`` prints the registry on shutdown,
and the ``stats`` op streams it live.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ProcessPoolExecutor

from repro.obs.metrics import MetricsRegistry
from repro.pm.batch import allocation_artifact
from repro.serve.cache import AllocationCache, artifact_cache_key
from repro.serve.protocol import (MAX_LINE_BYTES, PROTOCOL_VERSION,
                                  ProtocolError, decode_request, encode,
                                  error_response, request_id)

#: Latency samples kept for the ``stats`` op's percentile summary.
MAX_LATENCY_SAMPLES = 100_000


def _percentiles(samples: list[float]) -> dict:
    if not samples:
        return {}
    ordered = sorted(samples)

    def pick(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return {"count": len(ordered),
            "median_s": round(pick(0.50), 6),
            "p90_s": round(pick(0.90), 6),
            "p99_s": round(pick(0.99), 6),
            "max_s": round(ordered[-1], 6)}


class AllocationServer:
    """One serving process: socket front end, executor, persistent cache.

    Run it blocking (:meth:`run`, the CLI path) or on a background
    thread (construct, ``Thread(target=server.run)``, then
    :meth:`wait_ready` — the soak driver and the tests do this).
    """

    def __init__(self, store: str | None = None, *,
                 host: str = "127.0.0.1", port: int = 0, jobs: int = 1,
                 metrics: MetricsRegistry | None = None):
        self.host = host
        self.port = port          # rewritten with the bound port on start
        self.jobs = jobs
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = AllocationCache(store, metrics=self.metrics)
        self.started_at = time.time()
        self._latencies: list[float] = []
        self._inflight: dict[str, asyncio.Future] = {}
        self._connections: dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._executor: ProcessPoolExecutor | None = None
        self._commit_lock: asyncio.Lock | None = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Serve until a ``shutdown`` request (or cancellation)."""
        asyncio.run(self.main())

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until the socket is bound (``self.port`` is real)."""
        if not self._ready.wait(timeout):
            raise TimeoutError("allocation server did not become ready")

    def request_shutdown(self) -> None:
        """Thread-safe graceful stop (the in-process soak driver's
        alternative to sending a ``shutdown`` op)."""
        loop, event = self._loop, self._shutdown
        if loop is not None and event is not None:
            loop.call_soon_threadsafe(event.set)

    async def main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._commit_lock = asyncio.Lock()
        if self.jobs >= 1:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_LINE_BYTES)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            async with server:
                await self._shutdown.wait()
                # Drain gracefully: stop accepting, close every open
                # connection (handlers see EOF and return), and *wait*
                # for the handlers instead of letting asyncio.run cancel
                # them mid-read — cancellation would flush noisy
                # CancelledError logs through the streams machinery.
                server.close()
                for conn_writer in list(self._connections.values()):
                    conn_writer.close()
                if self._connections:
                    await asyncio.wait(list(self._connections), timeout=10)
        finally:
            self._ready.clear()
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.metrics.bump("serve.connections")
        task = asyncio.current_task()
        if task is not None:
            self._connections[task] = writer
        try:
            try:
                first = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                await self._send(writer, error_response(
                    None, "too-large",
                    f"request line exceeds {MAX_LINE_BYTES} bytes"))
                return
            if not first:
                return
            verb = first.split(b" ", 1)[0]
            if verb in (b"GET", b"POST", b"HEAD", b"PUT", b"DELETE"):
                await self._handle_http(first, reader, writer)
            else:
                await self._handle_jsonl(first, reader, writer)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            # The client vanished mid-stream.  Whatever compute was in
            # flight still lands in the cache; the pool is untouched.
            self.metrics.bump("serve.disconnects")
        finally:
            if task is not None:
                self._connections.pop(task, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_jsonl(self, first: bytes, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        line = first
        while line:
            response, keep_open = await self._dispatch_line(line)
            await self._send(writer, response)
            if not keep_open:
                return
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                await self._send(writer, error_response(
                    None, "too-large",
                    f"request line exceeds {MAX_LINE_BYTES} bytes"))
                return

    async def _dispatch_line(self, line: bytes) -> tuple[dict, bool]:
        """One request line → (response, keep the connection open?)."""
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            self.metrics.bump("serve.errors")
            import json

            try:
                rid = request_id(json.loads(line))
            except (ValueError, UnicodeDecodeError):
                rid = None
            return error_response(rid, exc.code, exc.message), True
        op = request["op"]
        if op == "ping":
            return {"id": request["id"], "ok": True, "op": "ping",
                    "version": PROTOCOL_VERSION}, True
        if op == "stats":
            return self._stats_response(request["id"]), True
        if op == "shutdown":
            assert self._shutdown is not None
            self._shutdown.set()
            return {"id": request["id"], "ok": True, "op": "shutdown"}, False
        return await self._allocate(request), True

    # ------------------------------------------------------------------
    # The allocate path.
    # ------------------------------------------------------------------
    async def _allocate(self, request: dict) -> dict:
        t0 = time.perf_counter()
        self.metrics.bump("serve.requests")
        key, sha = artifact_cache_key(request)
        artifact = self.cache.get(key, sha)
        cached, coalesced = artifact is not None, False
        if artifact is None:
            inflight = self._inflight.get(sha)
            if inflight is not None:
                self.metrics.bump("serve.coalesced")
                coalesced = True
                artifact = await asyncio.shield(inflight)
            else:
                artifact = await self._compute_and_commit(request, key, sha)
        total = time.perf_counter() - t0
        self.metrics.bump("serve.latency.total_s", total)
        self._latencies.append(total)
        del self._latencies[:-MAX_LATENCY_SAMPLES or None]
        if "error" in artifact:
            self.metrics.bump("serve.errors")
            err = artifact["error"]
            return error_response(request["id"], err["code"], err["message"])
        response = {"id": request["id"], "ok": True, "cached": cached,
                    "key": sha[:16],
                    "latency": {"total_s": round(total, 6)}}
        if coalesced:
            response["coalesced"] = True
        response.update(artifact)
        return response

    async def _compute_and_commit(self, request: dict, key, sha: str) -> dict:
        assert self._loop is not None and self._commit_lock is not None
        future: asyncio.Future = self._loop.create_future()
        self._inflight[sha] = future
        try:
            payload = {field: request[field]
                       for field in ("ir", "minic", "machine", "allocator",
                                     "context", "spill_cleanup")}
            with self.metrics.timed("serve.latency.compute_s"):
                artifact = await self._loop.run_in_executor(
                    self._executor, allocation_artifact, payload)
            if "error" not in artifact:
                # Commit before resolving waiters: once anyone has seen
                # the artifact, it is durable.  The asyncio lock keeps
                # store commits single-file inside this process; the
                # store's flock covers other processes.
                async with self._commit_lock:
                    with self.metrics.timed("serve.latency.commit_s"):
                        await self._loop.run_in_executor(
                            None, self.cache.put, key, sha, artifact)
            future.set_result(artifact)
            return artifact
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # Coalesced waiters retrieve the exception; if none do,
                # don't warn about it being unretrieved.
                future.exception()
            raise
        finally:
            self._inflight.pop(sha, None)

    # ------------------------------------------------------------------
    # Stats.
    # ------------------------------------------------------------------
    def _stats_response(self, rid) -> dict:
        return {"id": rid, "ok": True, "op": "stats",
                "version": PROTOCOL_VERSION,
                "uptime_s": round(time.time() - self.started_at, 3),
                "store": str(self.cache.store.root),
                "cache_cells": len(self.cache),
                "latency": _percentiles(self._latencies),
                "metrics": self.metrics.snapshot()}

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, doc: dict) -> None:
        writer.write(encode(doc))
        await writer.drain()

    # ------------------------------------------------------------------
    # The minimal HTTP facade.
    # ------------------------------------------------------------------
    async def _handle_http(self, first: bytes, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            method, path, _version = first.decode("latin-1").split()
        except ValueError:
            await self._send_http(writer, 400, error_response(
                None, "bad-request", "malformed HTTP request line"))
            return
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        if method == "GET" and path == "/healthz":
            await self._send_http(writer, 200, {"ok": True,
                                                "version": PROTOCOL_VERSION})
            return
        if method == "GET" and path == "/stats":
            await self._send_http(writer, 200, self._stats_response(None))
            return
        if method == "POST" and path in ("/allocate", "/shutdown"):
            try:
                length = int(headers.get("content-length", "0"))
            except ValueError:
                length = -1
            if length < 0 or length > MAX_LINE_BYTES:
                await self._send_http(writer, 413, error_response(
                    None, "too-large", "body exceeds the request bound"))
                return
            body = await reader.readexactly(length) if length else b"{}"
            if path == "/shutdown":
                assert self._shutdown is not None
                await self._send_http(writer, 200, {"ok": True,
                                                    "op": "shutdown"})
                self._shutdown.set()
                return
            response, _keep = await self._dispatch_line(
                self._force_allocate(body))
            status = 200 if response.get("ok") else 400
            await self._send_http(writer, status, response)
            return
        await self._send_http(writer, 404, error_response(
            None, "bad-request", f"no route {method} {path}"))

    @staticmethod
    def _force_allocate(body: bytes) -> bytes:
        """POST /allocate bodies may omit ``op``; anything else in the
        body passes through untouched (one line, JSONL semantics)."""
        return body.replace(b"\n", b" ") + b"\n"

    @staticmethod
    async def _send_http(writer: asyncio.StreamWriter, status: int,
                         doc: dict) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  413: "Payload Too Large"}.get(status, "?")
        body = encode(doc)
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()


__all__ = ["AllocationServer", "MAX_LATENCY_SAMPLES"]
