"""A small blocking client for the allocation service.

This is the reference implementation of the wire protocol from the
consuming side — used by the load generator, the soak driver, the CLI's
``repro serve --request`` path, and the tests.  It is deliberately
synchronous (plain ``socket`` + ``makefile``): one client is one
connection is one request pipeline, and anything fancier belongs in the
caller.

Protocol-level failures surface as :class:`ServeError` (carrying the
structured ``code`` from :data:`repro.serve.protocol.ERROR_CODES`);
transport failures surface as the usual ``OSError`` family.
"""

from __future__ import annotations

import json
import socket
import time

from repro.serve.protocol import MAX_LINE_BYTES, encode


class ServeError(Exception):
    """A structured error response from the server (``ok: false``)."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServeClient:
    """One JSONL connection to a running :class:`AllocationServer`.

    Usable as a context manager; requests are strictly ordered on the
    connection (send one line, read one line).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The raw request/response cycle.
    # ------------------------------------------------------------------
    def request(self, doc: dict) -> dict:
        """Send one request document, return the raw response document.

        Fills in a fresh ``id`` when the caller did not set one, and
        checks the echo.  Raises :class:`ServeError` on ``ok: false``.
        """
        if doc.get("id") is None:
            self._next_id += 1
            doc = dict(doc, id=f"c{self._next_id}")
        self._sock.sendall(encode(doc))
        line = self._reader.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if response.get("id") != doc["id"]:
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {doc['id']!r}")
        if not response.get("ok"):
            err = response.get("error") or {}
            raise ServeError(err.get("code", "internal"),
                             err.get("message", "unknown failure"))
        return response

    def send_raw(self, payload: bytes) -> dict:
        """Ship arbitrary bytes (tests poke the protocol with these) and
        read back whatever document the server answers with."""
        self._sock.sendall(payload)
        line = self._reader.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    # ------------------------------------------------------------------
    # Convenience ops.
    # ------------------------------------------------------------------
    def allocate(self, *, ir: str = "", minic: str = "",
                 machine: str = "alpha", allocator: str = "second-chance",
                 context: str = "", spill_cleanup: bool = False) -> dict:
        return self.request({"op": "allocate", "ir": ir, "minic": minic,
                             "machine": machine, "allocator": allocator,
                             "context": context,
                             "spill_cleanup": spill_cleanup})

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict:
        """Graceful stop; the server answers before exiting, and closes
        this connection afterwards."""
        return self.request({"op": "shutdown"})


def wait_ready(host: str, port: int, *, timeout: float = 30.0) -> None:
    """Poll until the server at ``host:port`` answers a ``ping``.

    For callers that only know an address (subprocess servers, CI); the
    in-process path uses :meth:`AllocationServer.wait_ready` instead.
    """
    deadline = time.monotonic() + timeout
    last: Exception | None = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(host, port, timeout=5.0) as client:
                client.ping()
            return
        except (OSError, ConnectionError, ValueError) as exc:
            last = exc
            time.sleep(0.05)
    raise TimeoutError(f"server at {host}:{port} not ready: {last}")


__all__ = ["ServeClient", "ServeError", "wait_ready"]
