"""Load generation and the soak driver for the allocation service.

The corpus reuses the fuzz generator (:func:`repro.fuzz.generate.
program_for_seed`) so every request is a real, runnable module over the
rotating machine set — and a configurable *duplicate ratio* controls
how much of the stream should hit the cache, which is the service's
whole reason to exist.

:func:`run_soak` is the benchmark: a cold pass (empty cache) and a warm
pass (same corpus again) through one in-process server, reported in the
same ``BENCH`` document shape as ``tools/perf_bench.py`` so the
cold→warm speedup lands straight in ``repro report --perf``'s
trajectory.  The committed artifact is ``BENCH_9.json``.
"""

from __future__ import annotations

import json
import random
import statistics
import threading
import time

from repro.serve.client import ServeClient, ServeError


def build_corpus(requests: int, *, dup_ratio: float = 0.5,
                 seed: int = 0) -> list[dict]:
    """``requests`` allocate documents, ``dup_ratio`` of them repeats.

    The unique programs come from the fuzz generator (seeds offset by
    ``seed * 10_000`` so distinct load runs use distinct programs); the
    duplicate tail re-samples uniques and the whole sequence is
    shuffled, all through a *string-seeded* RNG so the corpus is stable
    across ``PYTHONHASHSEED`` values and processes.
    """
    from repro.fuzz.generate import program_for_seed
    from repro.ir.printer import print_module

    if requests < 1:
        raise ValueError("requests must be >= 1")
    if not 0.0 <= dup_ratio < 1.0:
        raise ValueError("dup_ratio must be in [0, 1)")
    rng = random.Random(f"loadgen:{seed}")
    unique = max(1, round(requests * (1.0 - dup_ratio)))
    docs = []
    for i in range(unique):
        program = program_for_seed(seed * 10_000 + i)
        machine = program.machine
        spec = ("alpha" if machine.name == "alpha"
                else f"tiny:{machine.n_gpr}x{machine.n_fpr}")
        docs.append({"op": "allocate", "ir": print_module(program.module),
                     "machine": spec, "allocator": "second-chance",
                     "context": "", "spill_cleanup": False})
    sequence = list(docs)
    sequence.extend(rng.choice(docs) for _ in range(requests - unique))
    rng.shuffle(sequence)
    return sequence


class LoadReport:
    """One pass of the load generator: latencies, hit counts, errors."""

    def __init__(self, label: str = "load"):
        self.label = label
        self.latencies: list[float] = []
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.wall_s = 0.0

    # -- accumulation ---------------------------------------------------
    def record(self, seconds: float, cached: bool) -> None:
        self.latencies.append(seconds)
        if cached:
            self.hits += 1
        else:
            self.misses += 1

    # -- derived numbers ------------------------------------------------
    @property
    def requests(self) -> int:
        return self.hits + self.misses + self.errors

    @property
    def hit_rate(self) -> float:
        answered = self.hits + self.misses
        return self.hits / answered if answered else 0.0

    def _quantile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    @property
    def median_s(self) -> float:
        return statistics.median(self.latencies) if self.latencies else 0.0

    @property
    def p90_s(self) -> float:
        return self._quantile(0.90)

    @property
    def p99_s(self) -> float:
        return self._quantile(0.99)

    @property
    def throughput(self) -> float:
        return self.requests / self.wall_s if self.wall_s else 0.0

    def to_json(self) -> dict:
        return {"label": self.label, "requests": self.requests,
                "hits": self.hits, "misses": self.misses,
                "errors": self.errors,
                "hit_rate": round(self.hit_rate, 4),
                "median_s": round(self.median_s, 6),
                "p90_s": round(self.p90_s, 6),
                "p99_s": round(self.p99_s, 6),
                "wall_s": round(self.wall_s, 3),
                "throughput_rps": round(self.throughput, 1)}

    def render(self) -> str:
        return (f"{self.label}: {self.requests} requests, "
                f"{self.hits} hits / {self.misses} misses "
                f"({100 * self.hit_rate:.1f}% hit rate), "
                f"{self.errors} errors, "
                f"median {1e3 * self.median_s:.2f} ms, "
                f"p90 {1e3 * self.p90_s:.2f} ms, "
                f"{self.throughput:.1f} req/s")


def run_load(host: str, port: int, corpus: list[dict], *,
             label: str = "load") -> LoadReport:
    """Drive the whole corpus through one connection, serially.

    Serial on purpose: per-request latency is then a clean measurement,
    and the duplicate ratio translates directly into the hit rate.
    Structured errors are counted, not raised — a load run should
    survive a few bad programs.
    """
    report = LoadReport(label)
    t0 = time.perf_counter()
    with ServeClient(host, port) as client:
        for doc in corpus:
            t1 = time.perf_counter()
            try:
                response = client.request(dict(doc))
            except ServeError:
                report.errors += 1
                continue
            report.record(time.perf_counter() - t1,
                          bool(response.get("cached")))
    report.wall_s = time.perf_counter() - t0
    return report


def run_soak(store_dir: str, *, requests: int = 200, dup_ratio: float = 0.5,
             seed: int = 0, jobs: int = 1,
             echo=None) -> dict:
    """Cold pass + warm pass through a fresh in-process server.

    Returns a BENCH-style document (``before`` = cold, ``after`` = warm,
    ``speedup.serve`` = cold/warm median latency) that
    ``repro report --perf`` folds into the perf trajectory; the serve
    counters ride along under each phase's ``serve`` key.
    """
    from repro.serve.server import AllocationServer

    def say(message: str) -> None:
        if echo is not None:
            echo(message)

    corpus = build_corpus(requests, dup_ratio=dup_ratio, seed=seed)
    server = AllocationServer(store_dir, jobs=jobs)
    thread = threading.Thread(target=server.run, name="serve-soak",
                              daemon=True)
    thread.start()
    server.wait_ready()
    say(f"soak: server on 127.0.0.1:{server.port}, "
        f"{requests} requests ({int(100 * dup_ratio)}% duplicates), "
        f"jobs={jobs}")
    try:
        cold = run_load("127.0.0.1", server.port, corpus, label="cold")
        say(cold.render())
        warm = run_load("127.0.0.1", server.port, corpus, label="warm")
        say(warm.render())
        with ServeClient("127.0.0.1", server.port) as client:
            stats = client.stats()
    finally:
        server.request_shutdown()
        thread.join(timeout=30)

    def phase(report: LoadReport) -> dict:
        return {"mode": report.label, "reps": 1,
                "benchmarks": {"serve.request": {
                    "median_s": round(report.median_s, 6),
                    "reps": report.requests}},
                "groups": {"serve": round(report.median_s, 6)},
                "serve": report.to_json()}

    warm_median = warm.median_s or 1e-9
    return {"schema": 1, "tool": "repro serve --soak",
            "requests": requests, "dup_ratio": dup_ratio, "seed": seed,
            "jobs": jobs,
            "before": phase(cold), "after": phase(warm),
            "speedup": {"serve": round(cold.median_s / warm_median, 2)},
            "server": {"cache_cells": stats.get("cache_cells"),
                       "metrics": stats.get("metrics", {})}}


__all__ = ["LoadReport", "build_corpus", "run_load", "run_soak"]
