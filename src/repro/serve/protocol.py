"""The allocation service's wire protocol: JSONL requests/responses.

One request is one JSON object on one line (UTF-8, ``\\n``-terminated);
the response comes back the same way, so any language with a socket
and a JSON parser is a client.  A minimal HTTP facade over the same
documents lives in :mod:`repro.serve.server` for curl-ability.

Request schema (``op: "allocate"``, the default)::

    {"op": "allocate", "id": "<echo token>",
     "ir": "<printed IR text>" | "minic": "<source>",
     "machine": "alpha" | "tiny:<G>x<F>",
     "allocator": "second-chance" | "two-pass" | "coloring" | "poletto",
     "context": "<AllocationContext.describe() form>",
     "spill_cleanup": false}

Other ops: ``ping`` (liveness), ``stats`` (metrics + latency summary),
``shutdown`` (graceful stop; the response is sent before the server
exits).

Every failure is a *structured* response, never a dropped connection::

    {"id": ..., "ok": false,
     "error": {"code": "<see ERROR_CODES>", "message": "..."}}

Bounds: a module source larger than :data:`MAX_MODULE_BYTES` is
rejected with ``too-large`` (bounded memory per request); a raw socket
line larger than :data:`MAX_LINE_BYTES` kills the connection after a
``too-large`` response, since JSONL framing cannot resynchronize
inside an oversized line.
"""

from __future__ import annotations

import json
from typing import Any

#: Protocol/compatibility version, echoed by ``ping`` and ``stats``.
PROTOCOL_VERSION = 1

#: Largest accepted module source (IR or minic), in UTF-8 bytes.
MAX_MODULE_BYTES = 1 << 20

#: Largest accepted raw request line (module + JSON overhead).
MAX_LINE_BYTES = MAX_MODULE_BYTES + (64 << 10)

#: The recognised operations.
OPS = ("allocate", "ping", "stats", "shutdown")

#: The structured error taxonomy.  ``bad-json``: the line was not a
#: JSON object.  ``bad-request``: a well-formed object with invalid
#: fields (unknown op/allocator/machine/context, missing module).
#: ``too-large``: the module or line exceeded its bound.
#: ``parse-error``: the IR/minic text did not parse.  ``alloc-error``:
#: the pipeline itself failed (oracle mismatch, simulator fault).
#: ``internal``: an unexpected server-side failure.
ERROR_CODES = ("bad-json", "bad-request", "too-large", "parse-error",
               "alloc-error", "internal")


class ProtocolError(Exception):
    """A request rejected before any compilation work, with its
    structured error code."""

    def __init__(self, code: str, message: str):
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message


def encode(doc: dict) -> bytes:
    """One response/request document as its wire line."""
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


def error_response(request_id: Any, code: str, message: str) -> dict:
    assert code in ERROR_CODES, code
    return {"id": request_id, "ok": False,
            "error": {"code": code, "message": message}}


def request_id(doc: Any) -> Any:
    """The echo token of a (possibly malformed) request document."""
    return doc.get("id") if isinstance(doc, dict) else None


def _validate_allocate(doc: dict) -> dict:
    from repro.allocators import ALLOCATOR_FACTORIES
    from repro.results.suite import SuiteError, machine_from_spec
    from repro.spill import AllocationContext

    ir = doc.get("ir", "")
    minic = doc.get("minic", "")
    if bool(ir) == bool(minic):
        raise ProtocolError("bad-request",
                            "allocate needs exactly one of 'ir' or 'minic'")
    source = ir or minic
    if not isinstance(source, str):
        raise ProtocolError("bad-request", "module source must be a string")
    if len(source.encode("utf-8", errors="replace")) > MAX_MODULE_BYTES:
        raise ProtocolError(
            "too-large", f"module source exceeds {MAX_MODULE_BYTES} bytes")
    machine = doc.get("machine", "alpha")
    try:
        machine_from_spec(machine)
    except (SuiteError, ValueError, TypeError) as exc:
        raise ProtocolError("bad-request", str(exc))
    allocator = doc.get("allocator", "second-chance")
    if allocator not in ALLOCATOR_FACTORIES:
        raise ProtocolError(
            "bad-request", f"unknown allocator {allocator!r}; choose from "
            f"{', '.join(ALLOCATOR_FACTORIES)}")
    context = doc.get("context", "")
    try:
        AllocationContext.parse(context if isinstance(context, str) else "?")
    except ValueError as exc:
        raise ProtocolError("bad-request", str(exc))
    return {"op": "allocate", "id": doc.get("id"),
            "ir": ir, "minic": minic, "machine": machine,
            "allocator": allocator, "context": context,
            "spill_cleanup": bool(doc.get("spill_cleanup", False))}


def decode_request(line: str | bytes) -> dict:
    """Parse and validate one request line into its normalized form
    (defaults filled in).  Raises :class:`ProtocolError` — carrying the
    structured code the caller turns into an error response — on
    anything malformed; the connection stays usable afterwards."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("bad-json", f"request is not UTF-8: {exc}")
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad-json", f"request is not JSON: {exc}")
    if not isinstance(doc, dict):
        raise ProtocolError("bad-json", "request must be a JSON object")
    op = doc.get("op", "allocate")
    if op not in OPS:
        raise ProtocolError("bad-request",
                            f"unknown op {op!r}; choose from {', '.join(OPS)}")
    if op == "allocate":
        return _validate_allocate(doc)
    return {"op": op, "id": doc.get("id")}


__all__ = ["ERROR_CODES", "MAX_LINE_BYTES", "MAX_MODULE_BYTES", "OPS",
           "PROTOCOL_VERSION", "ProtocolError", "decode_request", "encode",
           "error_response", "request_id"]
