"""The end-to-end compilation pipeline used by the evaluation.

Mirrors the paper's Section 3 setup: dead-code elimination, then register
allocation, then the move-removing peephole — with everything except the
allocator held fixed.  ``run_allocator`` works on a deep copy, so the
same pre-allocation module can be fed to every allocator for a fair
comparison.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.allocators.base import AllocationStats, RegisterAllocator, allocate_module
from repro.ir.module import Module
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler
from repro.obs.trace import Tracer
from repro.passes.dce import eliminate_dead_code_module
from repro.passes.peephole import remove_redundant_moves_module
from repro.passes.verify_alloc import (snapshot_module,
                                       verify_allocation_module,
                                       verify_dataflow_module)
from repro.target.machine import MachineDescription


@dataclass(eq=False)
class PipelineResult:
    """An allocated module plus everything the evaluation reports on it.

    The run's observability objects ride on ``stats``: ``stats.trace``
    (event tracer), ``stats.profiler`` (per-phase wall clock covering the
    whole pipeline, not just allocation), ``stats.metrics`` (the counters
    every layer published into).
    """

    module: Module
    stats: AllocationStats
    dce_removed: int
    moves_removed: int
    spill_cleanup: "SpillCleanupStats | None" = None


def run_allocator(module: Module, allocator: RegisterAllocator,
                  machine: MachineDescription, *, dce: bool = True,
                  peephole: bool = True, spill_cleanup: bool = False,
                  verify: bool = True, verify_dataflow: bool = False,
                  trace: Tracer | None = None,
                  profiler: PhaseProfiler | None = None,
                  metrics: MetricsRegistry | None = None) -> PipelineResult:
    """Copy ``module``, run DCE → allocation → peephole, verify, report.

    ``spill_cleanup`` additionally runs the post-allocation spill-code
    cleanup the paper sketches as future work (store-to-load forwarding
    and dead spill-store elimination) — off by default so measurements
    reflect the paper's pipeline, on for the extension ablation.

    ``verify_dataflow`` additionally runs the path-sensitive dataflow
    verifier (:func:`repro.passes.verify_alloc.verify_dataflow`) right
    after allocation — before spill cleanup and the peephole, which
    rewrite the allocator's output.  It assumes every source temporary
    is defined before use on every path, which hand-written IR need not
    guarantee, so it stays opt-in.

    ``trace``/``profiler``/``metrics`` plug observability into every
    stage (see :mod:`repro.obs`); defaults are no-op/fresh objects,
    reachable afterwards through the returned ``stats``.
    """
    from repro.passes.spillopt import SpillCleanupStats, cleanup_spill_code_module

    prof = profiler or PhaseProfiler()
    working = copy.deepcopy(module)
    with prof.phase("pipeline.dce"):
        dce_removed = eliminate_dead_code_module(working) if dce else 0
    snapshots = snapshot_module(working) if verify_dataflow else None
    stats = allocate_module(working, allocator.fresh(), machine,
                            trace=trace, profiler=prof, metrics=metrics)
    if snapshots is not None:
        with prof.phase("pipeline.verify_dataflow"):
            verify_dataflow_module(working, machine, snapshots)
    with prof.phase("pipeline.spill_cleanup"):
        cleanup = (cleanup_spill_code_module(working) if spill_cleanup
                   else SpillCleanupStats())
    with prof.phase("pipeline.peephole"):
        moves_removed = remove_redundant_moves_module(working) if peephole else 0
    if verify:
        with prof.phase("pipeline.verify"):
            verify_allocation_module(working, machine)
    stats.metrics.bump("pipeline.dce.removed", dce_removed)
    stats.metrics.bump("pipeline.peephole.moves_removed", moves_removed)
    if spill_cleanup:
        stats.metrics.bump("pipeline.spill_cleanup.stores_removed",
                           cleanup.stores_removed)
        stats.metrics.bump("pipeline.spill_cleanup.loads_forwarded",
                           cleanup.loads_forwarded)
    return PipelineResult(working, stats, dce_removed, moves_removed, cleanup)
