"""The end-to-end compilation pipeline used by the evaluation.

Mirrors the paper's Section 3 setup: dead-code elimination, then register
allocation, then the move-removing peephole — with everything except the
allocator held fixed.  Since the pass-manager refactor this module is a
thin facade over :mod:`repro.pm`: ``run_allocator`` opens (or joins) a
:class:`~repro.pm.session.CompilationSession`, which works on a cheap
structural clone of the module — never a ``copy.deepcopy`` — so the same
pre-allocation module can be fed to every allocator for a fair
comparison, with the setup analyses computed once and shared.
"""

from __future__ import annotations

from repro.allocators.base import RegisterAllocator
from repro.ir.module import Module
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler
from repro.obs.trace import Tracer
from repro.pm.session import CompilationSession, PipelineResult
from repro.spill import AllocationContext
from repro.target.machine import MachineDescription

__all__ = ["PipelineResult", "run_allocator"]


def run_allocator(module: Module, allocator: RegisterAllocator,
                  machine: MachineDescription, *, dce: bool = True,
                  peephole: bool = True, spill_cleanup: bool = False,
                  verify: bool = True, verify_dataflow: bool = False,
                  trace: Tracer | None = None,
                  profiler: PhaseProfiler | None = None,
                  metrics: MetricsRegistry | None = None,
                  session: CompilationSession | None = None,
                  context: "AllocationContext | None" = None,
                  ) -> PipelineResult:
    """Clone ``module``, run DCE → allocation → peephole, verify, report.

    ``spill_cleanup`` additionally runs the post-allocation spill-code
    cleanup the paper sketches as future work (store-to-load forwarding
    and dead spill-store elimination) — off by default so measurements
    reflect the paper's pipeline, on for the extension ablation.

    ``verify_dataflow`` additionally runs the path-sensitive dataflow
    verifier (:func:`repro.passes.verify_alloc.verify_dataflow`) right
    after allocation — before spill cleanup and the peephole, which
    rewrite the allocator's output.  It assumes every source temporary
    is defined before use on every path, which hand-written IR need not
    guarantee, so it stays opt-in.

    ``trace``/``profiler``/``metrics`` plug observability into every
    stage (see :mod:`repro.obs`); defaults are no-op/fresh objects,
    reachable afterwards through the returned ``stats``.

    ``context`` (an :class:`~repro.spill.AllocationContext`) switches on
    rematerialization and the seeded stress modes; omitted, the run uses
    the inert default and reproduces the paper's pipeline exactly.

    ``session`` joins an existing compilation session so repeated runs
    over the same module share one analysis cache and one DCE'd base
    (how ``repro compare`` and the fuzz grid amortize setup).  Without
    one, a private session is created for this call — the cache metrics
    then land in ``metrics`` (when given), so a one-shot run is exactly
    as observable as before.
    """
    if session is None:
        session = CompilationSession(
            module, machine,
            metrics=metrics if metrics is not None else MetricsRegistry())
    elif session.module is not module:
        raise ValueError(
            "run_allocator(session=...) requires the session's own module; "
            "open a new CompilationSession for a different module")
    return session.run(allocator, dce=dce, peephole=peephole,
                       spill_cleanup=spill_cleanup, verify=verify,
                       verify_dataflow=verify_dataflow, trace=trace,
                       profiler=profiler, metrics=metrics, context=context)
