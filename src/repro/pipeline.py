"""The end-to-end compilation pipeline used by the evaluation.

Mirrors the paper's Section 3 setup: dead-code elimination, then register
allocation, then the move-removing peephole — with everything except the
allocator held fixed.  ``run_allocator`` works on a deep copy, so the
same pre-allocation module can be fed to every allocator for a fair
comparison.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.allocators.base import AllocationStats, RegisterAllocator, allocate_module
from repro.ir.module import Module
from repro.passes.dce import eliminate_dead_code_module
from repro.passes.peephole import remove_redundant_moves_module
from repro.passes.verify_alloc import verify_allocation_module
from repro.target.machine import MachineDescription


@dataclass(eq=False)
class PipelineResult:
    """An allocated module plus everything the evaluation reports on it."""

    module: Module
    stats: AllocationStats
    dce_removed: int
    moves_removed: int
    spill_cleanup: "SpillCleanupStats | None" = None


def run_allocator(module: Module, allocator: RegisterAllocator,
                  machine: MachineDescription, *, dce: bool = True,
                  peephole: bool = True, spill_cleanup: bool = False,
                  verify: bool = True) -> PipelineResult:
    """Copy ``module``, run DCE → allocation → peephole, verify, report.

    ``spill_cleanup`` additionally runs the post-allocation spill-code
    cleanup the paper sketches as future work (store-to-load forwarding
    and dead spill-store elimination) — off by default so measurements
    reflect the paper's pipeline, on for the extension ablation.
    """
    from repro.passes.spillopt import SpillCleanupStats, cleanup_spill_code_module

    working = copy.deepcopy(module)
    dce_removed = eliminate_dead_code_module(working) if dce else 0
    stats = allocate_module(working, allocator.fresh(), machine)
    cleanup = (cleanup_spill_code_module(working) if spill_cleanup
               else SpillCleanupStats())
    moves_removed = remove_redundant_moves_module(working) if peephole else 0
    if verify:
        verify_allocation_module(working, machine)
    return PipelineResult(working, stats, dce_removed, moves_removed, cleanup)
