#!/usr/bin/env python3
"""Load generator for a *running* allocation server.

The in-process soak benchmark lives behind ``repro serve --soak``; this
tool is its external-process counterpart — point it at any live server
(CI's smoke job starts one with ``repro serve`` and drives it from
here) and it replays a deterministic fuzz-derived corpus with a
configurable duplicate ratio, printing the hit rate and the latency
percentiles, optionally gating on a minimum hit rate.

Usage::

    PYTHONPATH=src python tools/loadgen.py --port 7070
        [--host 127.0.0.1] [--requests 200] [--dup-ratio 0.5] [--seed 0]
        [--passes 1] [--min-hit-rate 0.45] [--json FILE]

Exit status: 0 on success, 1 when any request errored or the final
pass's hit rate fell below ``--min-hit-rate``.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--requests", type=int, default=200, metavar="N",
                        help="requests per pass (default: 200)")
    parser.add_argument("--dup-ratio", type=float, default=0.5, metavar="R",
                        help="fraction of duplicate requests (default: 0.5)")
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="corpus seed (default: 0)")
    parser.add_argument("--passes", type=int, default=1, metavar="N",
                        help="replay the corpus N times (default: 1; a "
                             "second pass measures the warmed cache)")
    parser.add_argument("--min-hit-rate", type=float, default=None,
                        metavar="R",
                        help="fail unless the final pass's hit rate is "
                             "at least R")
    parser.add_argument("--timeout", type=float, default=60.0, metavar="S",
                        help="wait up to S seconds for the server "
                             "(default: 60)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write the per-pass reports as JSON")
    args = parser.parse_args(argv)

    from repro.serve import build_corpus, run_load, wait_ready

    wait_ready(args.host, args.port, timeout=args.timeout)
    corpus = build_corpus(args.requests, dup_ratio=args.dup_ratio,
                          seed=args.seed)
    reports = []
    for n in range(args.passes):
        report = run_load(args.host, args.port, corpus,
                          label=f"pass-{n + 1}")
        reports.append(report)
        print(report.render())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump([r.to_json() for r in reports], fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
    final = reports[-1]
    if any(r.errors for r in reports):
        print(f"FAIL: {sum(r.errors for r in reports)} request(s) errored",
              file=sys.stderr)
        return 1
    if args.min_hit_rate is not None and final.hit_rate < args.min_hit_rate:
        print(f"FAIL: final hit rate {final.hit_rate:.2%} below the "
              f"{args.min_hit_rate:.2%} floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
