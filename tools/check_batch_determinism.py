#!/usr/bin/env python3
"""Check that parallel batch compilation is byte-identical to serial.

Runs the four-allocator comparison over one or more benchmark analogs
twice — once serially (``jobs=1``, one shared compilation session) and
once through the process pool (``jobs=2``) — and diffs every cell:
allocated module text (byte-for-byte), simulated output, dynamic
instruction and cycle counts, and spill fraction.  Timing fields are
deliberately ignored; everything else must match exactly, or the batch
driver has a nondeterminism bug.

CI runs this on the ``tiny`` machine after the batch smoke test.

Usage::

    PYTHONPATH=src python tools/check_batch_determinism.py [ANALOG ...]

Defaults to the ``wc`` and ``compress`` analogs.  Exit status 0 on
byte-identical results, 1 with a field-by-field report otherwise.
"""

from __future__ import annotations

import sys

from repro.pm.batch import compare_allocators
from repro.target import tiny
from repro.workloads.programs import PROGRAM_NAMES, build_program

#: Fields that must agree between serial and parallel cells (everything
#: except wall-clock ``alloc_seconds``).
CHECKED_FIELDS = ("allocator", "dynamic_instructions", "cycles",
                  "spill_fraction", "output", "result", "module_text")


def check_analog(name: str) -> list[str]:
    machine = tiny(8, 8)
    module = build_program(name, machine)
    serial = compare_allocators(module, machine, jobs=1)
    parallel = compare_allocators(module, machine, jobs=2)
    errors = []
    if len(serial) != len(parallel):
        return [f"{name}: {len(serial)} serial cells vs "
                f"{len(parallel)} parallel"]
    for s, p in zip(serial, parallel):
        for field in CHECKED_FIELDS:
            sv, pv = getattr(s, field), getattr(p, field)
            if sv != pv:
                shown = (f"{sv!r} != {pv!r}" if field != "module_text"
                         else "allocated module text differs")
                errors.append(f"{name}/{s.allocator}: {field}: {shown}")
    return errors


def main(argv: list[str]) -> int:
    analogs = argv or ["wc", "compress"]
    unknown = [a for a in analogs if a not in PROGRAM_NAMES]
    if unknown:
        print(f"unknown analog(s): {', '.join(unknown)}; choose from "
              f"{', '.join(PROGRAM_NAMES)}", file=sys.stderr)
        return 2
    failures = []
    for name in analogs:
        errors = check_analog(name)
        failures.extend(errors)
        status = "ok" if not errors else f"{len(errors)} mismatch(es)"
        print(f"{name}: serial vs parallel: {status}")
    for line in failures:
        print(f"  {line}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
