#!/usr/bin/env python3
"""Check that parallel batch compilation is byte-identical to serial.

Two modes, one property: fanning work across the process pool must not
change any result.

The default mode runs the four-allocator comparison over one or more
benchmark analogs twice — once serially (``jobs=1``, one shared
compilation session) and once through the process pool (``jobs=2``) —
and diffs every cell: allocated module text (byte-for-byte), simulated
output, dynamic instruction and cycle counts, and spill fraction.  The
first analog is additionally re-checked under seeded stress contexts
(``STRESS_CONTEXTS``), so the pool path is exercised with a pickled
non-default :class:`repro.spill.AllocationContext` too.

``--suite`` runs the declarative suite runner instead: the same cell
specs are executed into two throwaway result stores, serially and with
``jobs=2``, and every stored record is compared field-by-field.  This
covers the whole observability path — workers, metrics snapshots, store
commits — not just the allocator cells.

Timing fields (``alloc_seconds``, the phase-profile seconds, the
``timing`` cells' measured medians) are deliberately ignored; everything
else must match exactly, or the batch driver has a nondeterminism bug.

CI runs both modes on small workloads after the batch smoke test.

Usage::

    PYTHONPATH=src python tools/check_batch_determinism.py [ANALOG ...]
    PYTHONPATH=src python tools/check_batch_determinism.py --suite

Defaults to the ``wc`` and ``compress`` analogs.  Exit status 0 on
identical results, 1 with a field-by-field report otherwise.
"""

from __future__ import annotations

import sys
import tempfile

from repro.pm.batch import compare_allocators
from repro.spill import AllocationContext
from repro.target import tiny
from repro.workloads.programs import PROGRAM_NAMES, build_program

#: Seeded stress contexts the analog mode re-checks: forced evictions and
#: randomized selection order exercise the pool's context pickling and the
#: emitters' per-function RNG re-derivation, which a default-context run
#: never touches.
STRESS_CONTEXTS = (AllocationContext(stress="shuffle", seed=7),
                   AllocationContext(stress="forced-evict", seed=7))

#: Fields that must agree between serial and parallel cells (everything
#: except wall-clock ``alloc_seconds``).
CHECKED_FIELDS = ("allocator", "dynamic_instructions", "cycles",
                  "spill_fraction", "output", "result", "module_text")

#: Top-level record-data keys that hold wall-clock measurements — the
#: only fields allowed to differ between a serial and a parallel run.
TIMING_KEYS = {"profile", "core_seconds", "setup_seconds",
               "shared_setup_seconds"}


def check_analog(name: str,
                 context: AllocationContext | None = None) -> list[str]:
    machine = tiny(8, 8)
    module = build_program(name, machine)
    serial = compare_allocators(module, machine, jobs=1, context=context)
    parallel = compare_allocators(module, machine, jobs=2, context=context)
    tag = name if context is None else f"{name}[{context.describe()}]"
    errors = []
    if len(serial) != len(parallel):
        return [f"{tag}: {len(serial)} serial cells vs "
                f"{len(parallel)} parallel"]
    for s, p in zip(serial, parallel):
        for field in CHECKED_FIELDS:
            sv, pv = getattr(s, field), getattr(p, field)
            if sv != pv:
                shown = (f"{sv!r} != {pv!r}" if field != "module_text"
                         else "allocated module text differs")
                errors.append(f"{tag}/{s.allocator}: {field}: {shown}")
    return errors


def _scrub(data: dict) -> dict:
    """Record data with every wall-clock field removed."""
    clean = {k: v for k, v in data.items() if k not in TIMING_KEYS}
    if isinstance(clean.get("alloc"), dict):
        clean["alloc"] = {k: v for k, v in clean["alloc"].items()
                          if k != "alloc_seconds"}
    if isinstance(clean.get("metrics"), dict):
        clean["metrics"] = {k: v for k, v in clean["metrics"].items()
                            if not k.endswith(".seconds")}
    return clean


def check_suite() -> list[str]:
    """Serial vs parallel suite runs into two throwaway stores."""
    from repro.results.store import ResultStore
    from repro.results.suite import (dedup_specs, quality_specs,
                                     run_suite, twopass_specs)

    specs = dedup_specs(quality_specs(["wc", "compress"])
                        + twopass_specs())
    stores = []
    for jobs in (1, 2):
        with tempfile.TemporaryDirectory() as tmp:
            store = ResultStore(tmp)
            run_suite(specs, store, jobs=jobs,
                      label=f"determinism-jobs{jobs}")
            stores.append({r.ident: (r.code_hash, _scrub(r.data))
                           for r in store.iter_latest()})
    serial, parallel = stores
    errors = []
    if serial.keys() != parallel.keys():
        errors.append(f"cell sets differ: {sorted(serial)} vs "
                      f"{sorted(parallel)}")
    for ident in sorted(serial.keys() & parallel.keys()):
        s_hash, s_data = serial[ident]
        p_hash, p_data = parallel[ident]
        if s_hash != p_hash:
            errors.append(f"{ident}: code hash {s_hash[:12]} != "
                          f"{p_hash[:12]}")
        for field in sorted(s_data.keys() | p_data.keys()):
            if s_data.get(field) != p_data.get(field):
                errors.append(f"{ident}: {field}: "
                              f"{s_data.get(field)!r} != "
                              f"{p_data.get(field)!r}")
    return errors


def main(argv: list[str]) -> int:
    if "--suite" in argv:
        errors = check_suite()
        status = "ok" if not errors else f"{len(errors)} mismatch(es)"
        print(f"suite: serial vs parallel store contents: {status}")
        for line in errors:
            print(f"  {line}", file=sys.stderr)
        return 1 if errors else 0
    analogs = argv or ["wc", "compress"]
    unknown = [a for a in analogs if a not in PROGRAM_NAMES]
    if unknown:
        print(f"unknown analog(s): {', '.join(unknown)}; choose from "
              f"{', '.join(PROGRAM_NAMES)}", file=sys.stderr)
        return 2
    failures = []
    for name in analogs:
        errors = check_analog(name)
        failures.extend(errors)
        status = "ok" if not errors else f"{len(errors)} mismatch(es)"
        print(f"{name}: serial vs parallel: {status}")
    for context in STRESS_CONTEXTS:
        errors = check_analog(analogs[0], context)
        failures.extend(errors)
        status = "ok" if not errors else f"{len(errors)} mismatch(es)"
        print(f"{analogs[0]}[{context.describe()}]: "
              f"serial vs parallel: {status}")
    for line in failures:
        print(f"  {line}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
