#!/usr/bin/env python3
"""The tracked performance-benchmark suite (``BENCH_*.json``).

Times the pipeline's three hot kernels plus the end-to-end comparison
driver, using only public APIs, so the same tool runs unchanged against
any revision:

* ``sim.*``   — the executing simulator on benchmark analogs and on a
  deterministic fuzz-generated corpus (the Table 1/fuzz dominator);
* ``e2e.*``   — ``compare_allocators`` end-to-end (what ``repro bench``
  does: every allocator, allocation + simulation);
* ``lifetimes`` — :func:`repro.lifetimes.compute_lifetimes` over every
  analog function (RangeSet construction churn);
* ``interference`` — graph-coloring allocation (interference build
  dominated) over the highest-pressure analogs.

Each benchmark reports the **median of N reps** so one noisy rep cannot
flake CI.  Results land in a JSON document; ``--record FILE --phase
before|after`` folds the run into a trajectory file like ``BENCH_5.json``
(and computes speedups when both phases are present), while ``--check
BASELINE`` compares the current run against the recorded medians and
fails on a >``--max-slowdown`` ratio (ratio-based, so absolute runner
speed does not matter).

``--record auto`` resolves the trajectory file itself: ``--phase
before`` starts the *next* point (``BENCH_{max+1}.json``), ``--phase
after`` folds into the newest existing one — no more hand-numbering.
``--store DIR`` appends the run to the result store as a ``kind="perf"``
record (``repro report --perf`` renders the accumulated trajectory), and
``--check`` accepts either a ``BENCH_*.json`` file or a store directory
(baseline = the store's newest perf record).

Usage::

    PYTHONPATH=src python tools/perf_bench.py [--quick] [--reps N]
        [--out RUN.json] [--record BENCH_5.json|auto --phase after]
        [--check BENCH_5.json|STORE_DIR [--max-slowdown 1.5]]
        [--store benchmarks/results/store]
"""

from __future__ import annotations

import argparse
import json
import re
import statistics
import sys
import time
from pathlib import Path

from repro.lifetimes import compute_lifetimes
from repro.pm.batch import compare_allocators
from repro.pm.session import CompilationSession
from repro.sim import simulate
from repro.target import alpha
from repro.lang.lower import compile_minic
from repro.workloads.programs import build_program, fpppp_scaled_source

#: Analogs timed per group.  ``quick`` keeps CI smoke under ~15 s of
#: measured work; ``full`` is what BENCH_*.json trajectory points use.
SIM_ANALOGS = {"quick": ["doduc", "compress", "m88ksim"],
               "full": ["doduc", "compress", "m88ksim", "fpppp", "wc"]}
E2E_ANALOGS = {"quick": ["compress"], "full": ["compress", "doduc", "sort"]}
INTERFERENCE_ANALOGS = {"quick": ["doduc", "fpppp"],
                        "full": ["doduc", "fpppp"]}
#: Fixed fuzz corpus: deterministic seeds, so every revision times the
#: exact same generated programs.
FUZZ_SEEDS = {"quick": range(0, 12), "full": range(0, 30)}


def _median_time(fn, reps: int) -> float:
    """Median wall-clock seconds of ``reps`` calls of ``fn``."""
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _fuzz_corpus(seeds) -> list:
    from repro.fuzz.generate import program_for_seed

    return [program_for_seed(seed) for seed in seeds]


def run_suite(*, quick: bool = False, reps: int = 3,
              progress=None) -> dict:
    """Run every benchmark; return the result document (no I/O)."""
    mode = "quick" if quick else "full"
    machine = alpha()
    say = progress or (lambda msg: None)
    benchmarks: dict[str, dict] = {}

    def record(name: str, fn, cell_reps: int | None = None) -> None:
        say(f"  {name} ...")
        n = cell_reps if cell_reps is not None else reps
        median = _median_time(fn, n)
        benchmarks[name] = {"median_s": round(median, 6), "reps": n}
        say(f"  {name}: {median * 1e3:.1f} ms")

    say("simulator microbenchmarks")
    for name in SIM_ANALOGS[mode]:
        module = build_program(name, machine)
        record(f"sim.{name}", lambda m=module: simulate(m, machine))

    say("fuzz-corpus simulation")
    corpus = _fuzz_corpus(FUZZ_SEEDS[mode])

    def run_corpus() -> None:
        for program in corpus:
            simulate(program.module, program.machine)

    record("sim.fuzz_corpus", run_corpus)

    say("end-to-end allocator comparison")
    for name in E2E_ANALOGS[mode]:
        module = build_program(name, machine)
        record(f"e2e.{name}",
               lambda m=module: compare_allocators(m, machine))

    say("lifetime construction")
    analog_modules = [build_program(name, machine)
                      for name in SIM_ANALOGS[mode]]
    fns = [fn for module in analog_modules
           for fn in module.functions.values()]

    def run_lifetimes() -> None:
        for iteration in range(10):
            for fn in fns:
                compute_lifetimes(fn, machine)

    # The lifetimes cell is short (~0.1 s of kernel work per rep) and
    # dominated by allocation churn, so single reps scatter up to ~1.2×
    # run to run — BENCH_7's apparent 0.76× "regression" was exactly this
    # (every non-interference cell in that run drifted together; see
    # docs/PERFORMANCE.md).  Nine reps make the median trustworthy.
    record("lifetimes", run_lifetimes, cell_reps=max(reps, 9))

    say("interference build (graph coloring)")
    from repro.allocators import GraphColoring

    for name in INTERFERENCE_ANALOGS[mode]:
        module = build_program(name, machine)

        def run_coloring(m=module) -> None:
            session = CompilationSession(m, machine)
            session.run(GraphColoring())

        record(f"interference.{name}", run_coloring)

    # A scaled-down fpppp (same huge-block shape, fraction of the size):
    # a cheap cell the perf-smoke gate can lean on when full-fpppp noise
    # would otherwise force a generous slowdown threshold.
    scaled = compile_minic(fpppp_scaled_source(), machine)

    def run_scaled(m=scaled) -> None:
        session = CompilationSession(m, machine)
        session.run(GraphColoring())

    record("interference.quick", run_scaled)

    groups: dict[str, float] = {}
    for name, cell in benchmarks.items():
        group = name.split(".", 1)[0]
        groups[group] = round(groups.get(group, 0.0) + cell["median_s"], 6)
    return {"schema": 1, "mode": mode, "reps": reps,
            "benchmarks": benchmarks, "groups": groups}


# ----------------------------------------------------------------------
# Trajectory files (BENCH_*.json) and the CI regression gate.
# ----------------------------------------------------------------------
def _bench_numbers(repo_root: str | Path = ".") -> list[tuple[int, Path]]:
    pairs = []
    for path in Path(repo_root).glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)", path.stem)
        if match:
            pairs.append((int(match.group(1)), path))
    return sorted(pairs)


def resolve_record_path(spec: str, phase: str,
                        repo_root: str | Path = ".") -> str:
    """Resolve ``--record auto``: ``before`` opens the next trajectory
    point (``BENCH_{max+1}.json``), ``after`` folds into the newest
    existing file (or starts ``BENCH_1.json`` on an empty repo)."""
    if spec != "auto":
        return spec
    existing = _bench_numbers(repo_root)
    if phase == "before" or not existing:
        nxt = existing[-1][0] + 1 if existing else 1
        return str(Path(repo_root) / f"BENCH_{nxt}.json")
    return str(existing[-1][1])


def store_run(store_dir: str, run: dict) -> None:
    """Append ``run`` to the result store as one ``kind="perf"`` record
    (its own single-cell store run, so manifests stay per-invocation)."""
    from repro.results.store import CellKey, ResultStore, content_hash

    store = ResultStore(store_dir)
    key = CellKey(workload=f"perf:{run['mode']}", allocator="suite",
                  machine="host", kind="perf", reps=run["reps"])
    run_id = store.begin_run(label="perf-bench")
    store.put(key, content_hash(run["mode"], str(run["reps"])), run)
    store.finish_run({"computed": 1, "hits": 0, "invalidated": 0})
    print(f"recorded perf run {run_id} in store {store.root}")


def _load_baseline(path: str) -> dict:
    """Baseline run document from a ``BENCH_*.json`` file or, given a
    store directory, the store's newest perf record."""
    p = Path(path)
    if p.is_dir():
        from repro.results.store import ResultStore

        perf = [r for r in ResultStore(p).iter_latest()
                if r.key.kind == "perf"]
        if not perf:
            raise FileNotFoundError(f"no perf records in store {p}")
        return max(perf, key=lambda r: r.seq).data
    with open(p) as fh:
        doc = json.load(fh)
    return doc.get("after") or doc.get("before") or doc


def fold_into(path: str, phase: str, run: dict) -> dict:
    """Insert ``run`` as the ``phase`` of trajectory file ``path``.

    With both ``before`` and ``after`` present, per-group speedups
    (before / after) are recomputed.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        doc = {"schema": 1, "tool": "tools/perf_bench.py"}
    doc[phase] = run
    if "before" in doc and "after" in doc:
        speedup = {}
        after_groups = doc["after"]["groups"]
        for group, before_s in doc["before"]["groups"].items():
            if group in after_groups and after_groups[group] > 0:
                speedup[group] = round(before_s / after_groups[group], 2)
        doc["speedup"] = speedup
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return doc


#: Benchmarks whose *workload* depends on the mode (seed count, analog
#: set), so a quick run cannot be compared against a full baseline.
_MODE_DEPENDENT = {"sim.fuzz_corpus", "lifetimes"}


def check_against(baseline_path: str, run: dict,
                  max_slowdown: float) -> list[str]:
    """Per-benchmark regression check: current vs the file's newest phase.

    Returns failure messages (empty = pass).  Only benchmarks present in
    both documents are compared, so adding one never breaks the gate
    retroactively; a ``--quick`` run checks cleanly against a full
    baseline because each ``sim.<analog>`` / ``e2e.<analog>`` /
    ``interference.<analog>`` cell times the identical workload in both
    modes (the mode-dependent cells are skipped on a mode mismatch).

    The baseline was recorded on whatever machine cut the trajectory
    point, so raw ratios fold in the runner-speed difference.  Each
    ratio is therefore normalized by the **median ratio across all
    compared benchmarks**: a uniformly slower runner cancels out, while
    one regressed kernel stands out against the rest.
    """
    baseline = _load_baseline(baseline_path)
    base_cells = baseline.get("benchmarks", {})
    same_mode = baseline.get("mode") == run["mode"]
    ratios: dict[str, tuple[float, float, float]] = {}
    for name, cell in run["benchmarks"].items():
        base = base_cells.get(name)
        if base is None or not base.get("median_s"):
            continue
        if name in _MODE_DEPENDENT and not same_mode:
            print(f"  {name}: skipped (workload differs between "
                  f"{run['mode']} and {baseline.get('mode')} modes)")
            continue
        current_s = cell["median_s"]
        base_s = base["median_s"]
        ratios[name] = (current_s, base_s, current_s / base_s)
    if not ratios:
        print("  no comparable benchmarks in baseline; nothing to check")
        return []
    scale = statistics.median(r for _, _, r in ratios.values())
    print(f"  runner-speed normalization: median ratio {scale:.2f}x")
    failures = []
    for name, (current_s, base_s, ratio) in ratios.items():
        normalized = ratio / scale
        status = "ok" if normalized <= max_slowdown else "REGRESSION"
        print(f"  {name}: {current_s * 1e3:.1f} ms vs baseline "
              f"{base_s * 1e3:.1f} ms ({normalized:.2f}x normalized) "
              f"{status}")
        if normalized > max_slowdown:
            failures.append(f"{name}: {normalized:.2f}x slower than the "
                            f"run's own median ratio "
                            f"(limit {max_slowdown:.2f}x)")
    return failures


def format_run(run: dict) -> str:
    lines = [f"perf bench ({run['mode']}, median of {run['reps']} reps)"]
    for name, cell in run["benchmarks"].items():
        lines.append(f"  {name:24s} {cell['median_s'] * 1e3:10.1f} ms")
    lines.append("  " + "-" * 38)
    for group, total in run["groups"].items():
        lines.append(f"  {group + ' (total)':24s} {total * 1e3:10.1f} ms")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller analog/corpus set (CI smoke)")
    parser.add_argument("--reps", type=int, default=3, metavar="N",
                        help="reps per benchmark; the median is kept "
                             "(default: 3)")
    parser.add_argument("--out", metavar="RUN.json",
                        help="write this run's document to RUN.json")
    parser.add_argument("--record", metavar="BENCH.json|auto",
                        help="fold the run into a trajectory file; 'auto' "
                             "picks BENCH_{max+1}.json for --phase before "
                             "and the newest existing file for after")
    parser.add_argument("--phase", choices=["before", "after"],
                        default="after",
                        help="which phase --record fills (default: after)")
    parser.add_argument("--check", metavar="BENCH.json|STORE_DIR",
                        help="fail on regression vs the recorded medians "
                             "(a store directory checks against its "
                             "newest perf record)")
    parser.add_argument("--store", metavar="DIR",
                        help="append the run to a result store as a "
                             "kind='perf' record")
    parser.add_argument("--max-slowdown", type=float, default=1.5,
                        help="--check failure threshold as a ratio "
                             "(default: 1.5)")
    parser.add_argument("--verbose", action="store_true",
                        help="progress on stderr while measuring")
    args = parser.parse_args(argv)

    progress = ((lambda msg: print(msg, file=sys.stderr))
                if args.verbose else None)
    run = run_suite(quick=args.quick, reps=args.reps, progress=progress)
    print(format_run(run))

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(run, fh, indent=2)
            fh.write("\n")
    if args.store:
        store_run(args.store, run)
    if args.record:
        path = resolve_record_path(args.record, args.phase)
        if path != args.record:
            print(f"--record auto -> {path} (phase {args.phase})")
        doc = fold_into(path, args.phase, run)
        if "speedup" in doc:
            print("speedup vs before: "
                  + ", ".join(f"{g}: {s:.2f}x"
                              for g, s in doc["speedup"].items()))
    if args.check:
        print(f"regression check vs {args.check} "
              f"(limit {args.max_slowdown:.2f}x):")
        failures = check_against(args.check, run, args.max_slowdown)
        if failures:
            for line in failures:
                print(f"FAIL: {line}", file=sys.stderr)
            return 1
        print("  all benchmarks within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
