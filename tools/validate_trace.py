#!/usr/bin/env python3
"""Validate a JSONL allocation trace against the wire schema.

Hand-rolled on purpose — the repo takes no dependency on a JSON-Schema
library.  Checks, per line: it parses as a JSON object; exactly the
seven schema keys are present; ``kind`` is a known event name; ``fn`` is
a non-empty string; ``block``/``temp``/``reg``/``detail`` are strings or
null; ``point`` is a non-negative int or null.  Then cross-checks the
whole file: replaying it through ``read_jsonl_trace`` yields the same
number of events as there are lines.

Usage::

    PYTHONPATH=src python tools/validate_trace.py trace.jsonl
"""

from __future__ import annotations

import json
import sys

from repro.obs import EventKind, read_jsonl_trace

SCHEMA_KEYS = {"kind", "fn", "block", "point", "temp", "reg", "detail"}
KINDS = {kind.value for kind in EventKind}


def validate_line(line_no: int, line: str) -> list[str]:
    errors = []
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        return [f"line {line_no}: not JSON ({exc})"]
    if not isinstance(obj, dict):
        return [f"line {line_no}: not a JSON object"]
    if set(obj) != SCHEMA_KEYS:
        errors.append(f"line {line_no}: keys {sorted(obj)} != schema keys "
                      f"{sorted(SCHEMA_KEYS)}")
    if obj.get("kind") not in KINDS:
        errors.append(f"line {line_no}: unknown kind {obj.get('kind')!r}")
    if not (isinstance(obj.get("fn"), str) and obj["fn"]):
        errors.append(f"line {line_no}: fn must be a non-empty string")
    for key in ("block", "temp", "reg", "detail"):
        value = obj.get(key)
        if value is not None and not isinstance(value, str):
            errors.append(f"line {line_no}: {key} must be string or null")
    point = obj.get("point")
    if point is not None and not (isinstance(point, int)
                                  and not isinstance(point, bool)
                                  and point >= 0):
        errors.append(f"line {line_no}: point must be a non-negative int "
                      f"or null")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    path = argv[1]
    with open(path) as handle:
        lines = [line for line in handle if line.strip()]
    errors: list[str] = []
    for i, line in enumerate(lines, start=1):
        errors.extend(validate_line(i, line))
    if not errors:
        replayed = sum(1 for _ in read_jsonl_trace(lines))
        if replayed != len(lines):
            errors.append(f"replay yielded {replayed} events for "
                          f"{len(lines)} lines")
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{path}: INVALID ({len(errors)} problem(s))", file=sys.stderr)
        return 1
    print(f"{path}: OK ({len(lines)} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
