#!/usr/bin/env python3
"""Capture (or diff) the pipeline's observable outputs, for golden runs.

The hot-kernel rewrites (PR 5's simulator/lifetimes/interference work,
the interval-sweep interference build) promise *byte-identical
observables*: same allocated module text, same simulated outputs and
dynamic counts, same spill statistics, same fuzz verdicts.  This tool
makes that promise checkable: run it once at the old revision, once at
the new one, and diff the two JSON documents.

One entry per (machine, allocator, analog): the printed allocated
module, the simulator outputs, instruction/cycle counts, a hash of the
static spill table, move/edge/round statistics.  Plus one verdict entry
per fuzz seed.

Usage::

    PYTHONPATH=src python tools/capture_observables.py --out before.json
    # ... switch revisions ...
    PYTHONPATH=src python tools/capture_observables.py --check before.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys

from repro.allocators import ALLOCATOR_FACTORIES, make_allocator
from repro.ir.printer import print_module
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.target import alpha, tiny
from repro.workloads.programs import PROGRAM_NAMES, build_program

MACHINES = {"alpha": alpha, "tiny8": lambda: tiny(8, 8)}


def _entry(module, machine, allocator_name: str) -> dict:
    result = run_allocator(module, make_allocator(allocator_name), machine)
    text = print_module(result.module)
    outcome = simulate(result.module, machine)
    spill_table = sorted((phase.value, kind, count) for (phase, kind), count
                         in result.stats.spill_static.items())
    return {
        "module_sha": hashlib.sha256(text.encode()).hexdigest(),
        "output": [repr(v) for v in outcome.output],
        "instructions": outcome.dynamic_instructions,
        "cycles": outcome.cycles,
        "spill_instructions": outcome.spill_instructions,
        "op_counts": sorted((op.value, n)
                            for op, n in outcome.op_counts.items()),
        "spill_static": spill_table,
        "moves_eliminated": result.stats.moves_eliminated,
        "coloring_iterations": dict(result.stats.coloring_iterations),
        "interference_edges": dict(result.stats.interference_edges),
    }


def capture(fuzz_seeds: int, progress=None) -> dict:
    say = progress or (lambda msg: None)
    entries: dict[str, dict] = {}
    for machine_name, factory in MACHINES.items():
        machine = factory()
        for analog in PROGRAM_NAMES:
            try:
                module = build_program(analog, machine)
            except Exception as exc:
                # Some analogs exceed a small machine's calling convention;
                # record that they don't build rather than dropping the key.
                entries[f"{machine_name}/{analog}"] = {
                    "build_error": type(exc).__name__}
                continue
            for allocator in ALLOCATOR_FACTORIES:
                key = f"{machine_name}/{analog}/{allocator}"
                say(key)
                entries[key] = _entry(module, machine, allocator)
    from repro.fuzz.harness import run_seed

    for seed in range(fuzz_seeds):
        say(f"fuzz/{seed}")
        report = run_seed(seed, shrink=False)
        entries[f"fuzz/{seed}"] = {
            "checks": report.checks,
            "skips": report.skips,
            "invalid": report.invalid_seeds,
            "divergences": [d.kind for d in report.divergences],
        }
    return {"schema": 1, "entries": entries}


def diff(old: dict, new: dict) -> list[str]:
    # ``old`` has been through a JSON round-trip (tuples became lists);
    # put ``new`` through the same round-trip so comparison is by value.
    new = json.loads(json.dumps(new))
    lines = []
    old_e, new_e = old["entries"], new["entries"]
    for key in sorted(set(old_e) | set(new_e)):
        if key not in old_e:
            lines.append(f"{key}: only in new capture")
        elif key not in new_e:
            lines.append(f"{key}: only in old capture")
        elif old_e[key] != new_e[key]:
            fields = [f for f in set(old_e[key]) | set(new_e[key])
                      if old_e[key].get(f) != new_e[key].get(f)]
            lines.append(f"{key}: differs in {', '.join(sorted(fields))}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", metavar="FILE",
                        help="write the capture to FILE")
    parser.add_argument("--check", metavar="FILE",
                        help="diff the current capture against FILE")
    parser.add_argument("--fuzz-seeds", type=int, default=40,
                        help="fuzz verdict entries to include (default: 40)")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    progress = ((lambda msg: print(msg, file=sys.stderr))
                if args.verbose else None)
    doc = capture(args.fuzz_seeds, progress)
    print(f"captured {len(doc['entries'])} entries")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
    if args.check:
        with open(args.check) as fh:
            old = json.load(fh)
        lines = diff(old, doc)
        if lines:
            for line in lines:
                print(f"DIFF: {line}", file=sys.stderr)
            return 1
        print(f"0 diffs vs {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
