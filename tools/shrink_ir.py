#!/usr/bin/env python3
"""Shrink an IR module file on which an allocator config misbehaves.

Reads IR text (as printed by ``repro.ir.printer`` or by ``repro fuzz
--out``), re-checks the named configuration against the simulator
oracle, and — if the failure reproduces — delta-debugs the module down
to a minimal witness, written to stdout (or ``--out``).

Usage::

    PYTHONPATH=src python tools/shrink_ir.py failing.ir \
        --config sc-default --machine tiny --gpr 4 --fpr 4

The config names are the fuzz grid's (see ``repro.fuzz.CONFIG_GRID``);
the machine must match the one the failure was found on, since register
counts change the allocation completely.
"""

from __future__ import annotations

import argparse
import sys

from repro.fuzz import CONFIG_GRID, check_config, shrink_module
from repro.fuzz.shrink import reference_outcome
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.target import alpha, tiny


def main(argv: list[str] | None = None) -> int:
    by_name = {c.name: c for c in CONFIG_GRID}
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("file", help="IR module text file")
    ap.add_argument("--config", required=True, choices=sorted(by_name),
                    help="fuzz-grid config that fails on this module")
    ap.add_argument("--machine", default="tiny", choices=["alpha", "tiny"])
    ap.add_argument("--gpr", type=int, default=8,
                    help="GPR file size for --machine tiny (default: 8)")
    ap.add_argument("--fpr", type=int, default=8,
                    help="FPR file size for --machine tiny (default: 8)")
    ap.add_argument("--budget", type=int, default=400,
                    help="max candidate evaluations (default: 400)")
    ap.add_argument("--out", help="write the shrunken IR here (default: stdout)")
    args = ap.parse_args(argv)

    machine = alpha() if args.machine == "alpha" else tiny(args.gpr, args.fpr)
    config = by_name[args.config]
    with open(args.file) as fh:
        module = parse_module(fh.read())

    ref = reference_outcome(module, machine)
    if ref is None:
        print("error: the module is not a valid oracle reference "
              "(entry-live temporary, simulator fault, or non-termination)",
              file=sys.stderr)
        return 2
    found = check_config(module, machine, config, ref)
    if found is None or found[0] == "skip":
        print(f"error: config {config.name} does not fail on this module "
              f"({'skipped: ' + found[1] if found else 'matches the oracle'})",
              file=sys.stderr)
        return 2
    kind, message = found
    print(f"# reproducing failure: [{kind}] {message}", file=sys.stderr)

    def still_fails(candidate) -> bool:
        cref = reference_outcome(candidate, machine)
        if cref is None:
            return False
        got = check_config(candidate, machine, config, cref)
        return got is not None and got[0] == kind

    shrunk = shrink_module(module, still_fails, budget=args.budget)
    before = sum(fn.instruction_count() for fn in module.functions.values())
    after = sum(fn.instruction_count() for fn in shrunk.functions.values())
    print(f"# shrunk {before} -> {after} instructions", file=sys.stderr)
    text = print_module(shrunk)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
