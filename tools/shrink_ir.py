#!/usr/bin/env python3
"""Shrink an IR module file on which an allocator config misbehaves.

Reads IR text (as printed by ``repro.ir.printer`` or by ``repro fuzz
--out``), re-checks the named configuration against the simulator
oracle, and — if the failure reproduces — delta-debugs the module down
to a minimal witness, written to stdout (or ``--out``).

Usage::

    PYTHONPATH=src python tools/shrink_ir.py failing.ir \
        --config sc-default --machine tiny --gpr 4 --fpr 4

The config names are the fuzz grids' (``repro.fuzz.CONFIG_GRID`` plus
the stress grid ``repro.fuzz.STRESS_GRID``); the machine must match the
one the failure was found on, since register counts change the
allocation completely.  ``--remat`` / ``--stress`` / ``--stress-seed``
replay a failure found under a non-default allocation context — and a
witness written by ``repro fuzz --out`` carries its context in a
``;; context=...`` header line, which is applied automatically when no
explicit context flags are given.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.fuzz import CONFIG_GRID, STRESS_GRID, check_config, shrink_module
from repro.fuzz.shrink import reference_outcome
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.spill import STRESS_MODES, AllocationContext
from repro.target import alpha, tiny


def context_from_header(text: str) -> AllocationContext | None:
    """The ``;; context=...`` line a ``repro fuzz --out`` witness carries
    (``None`` when the file has none — a hand-written or default-context
    witness)."""
    for line in text.splitlines():
        if not line.startswith(";;"):
            break  # the header is a contiguous comment prefix
        stripped = line[2:].strip()
        if stripped.startswith("context="):
            return AllocationContext.parse(stripped[len("context="):])
    return None


def main(argv: list[str] | None = None) -> int:
    by_name = {c.name: c for c in CONFIG_GRID + STRESS_GRID}
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("file", help="IR module text file")
    ap.add_argument("--config", required=True, choices=sorted(by_name),
                    help="fuzz-grid config that fails on this module")
    ap.add_argument("--machine", default="tiny", choices=["alpha", "tiny"])
    ap.add_argument("--gpr", type=int, default=8,
                    help="GPR file size for --machine tiny (default: 8)")
    ap.add_argument("--fpr", type=int, default=8,
                    help="FPR file size for --machine tiny (default: 8)")
    ap.add_argument("--budget", type=int, default=400,
                    help="max candidate evaluations (default: 400)")
    ap.add_argument("--kind", default=None,
                    help="require this failure kind (crash/verify/dataflow/"
                         "sim-fault/mismatch); default: whatever reproduces")
    ap.add_argument("--remat", action="store_true",
                    help="replay with rematerialization enabled")
    ap.add_argument("--stress", default=None, choices=list(STRESS_MODES),
                    help="replay under this seeded stress mode")
    ap.add_argument("--stress-seed", type=int, default=None, metavar="N",
                    help="stress-mode seed (default: 0)")
    ap.add_argument("--out", help="write the shrunken IR here (default: stdout)")
    args = ap.parse_args(argv)

    machine = alpha() if args.machine == "alpha" else tiny(args.gpr, args.fpr)
    config = by_name[args.config]
    with open(args.file) as fh:
        text = fh.read()
    module = parse_module(text)

    if args.remat or args.stress is not None or args.stress_seed is not None:
        context = AllocationContext(remat=args.remat,
                                    stress=args.stress or "none",
                                    seed=args.stress_seed or 0)
    else:
        context = context_from_header(text)
    if context is not None:
        config = dataclasses.replace(config, context=context)
        print(f"# allocation context: {context.describe() or 'default'}",
              file=sys.stderr)

    ref = reference_outcome(module, machine)
    if ref is None:
        print("error: the module is not a valid oracle reference "
              "(entry-live temporary, simulator fault, or non-termination)",
              file=sys.stderr)
        return 2
    found = check_config(module, machine, config, ref)
    if found is None or found[0] == "skip":
        print(f"error: config {config.name} does not fail on this module "
              f"({'skipped: ' + found[1] if found else 'matches the oracle'})",
              file=sys.stderr)
        return 2
    kind, message = found
    if args.kind is not None and kind != args.kind:
        print(f"error: config {config.name} fails with kind {kind!r}, "
              f"not the requested {args.kind!r}", file=sys.stderr)
        return 2
    print(f"# reproducing failure: [{kind}] {message}", file=sys.stderr)

    def still_fails(candidate) -> bool:
        cref = reference_outcome(candidate, machine)
        if cref is None:
            return False
        got = check_config(candidate, machine, config, cref)
        return got is not None and got[0] == kind

    shrunk = shrink_module(module, still_fails, budget=args.budget)
    before = sum(fn.instruction_count() for fn in module.functions.values())
    after = sum(fn.instruction_count() for fn in shrunk.functions.values())
    print(f"# shrunk {before} -> {after} instructions", file=sys.stderr)
    text = print_module(shrunk)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
