"""Table 1: dynamic instruction counts and run times, binpack vs coloring.

Paper reference (Table 1): eleven benchmarks, dynamic instruction counts
and wall-clock run times for second-chance binpacking and George/Appel
graph coloring, plus the binpack/GC ratio per metric.  The paper's ratios
range 1.000–1.086 for instruction counts and 0.966–1.082 for run times.

Here "run time" is simulated cycles under the shared cost model.  The
benchmark timer measures the full pipeline (allocate + simulate) for one
representative program per allocator, so ``--benchmark-only`` runs also
produce a meaningful timing comparison.
"""

import pytest

from repro.allocators import GraphColoring, SecondChanceBinpacking
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.stats.report import format_table
from repro.target import alpha
from repro.workloads.programs import build_program

from _harness import bench_program_names, emit_table


def _table1_rows(quality_data):
    rows = []
    for name in bench_program_names():
        run = quality_data[name]
        b = run.outcomes["binpack"]
        c = run.outcomes["coloring"]
        rows.append([
            name,
            b.dynamic_instructions, c.dynamic_instructions,
            b.dynamic_instructions / c.dynamic_instructions,
            b.cycles, c.cycles,
            b.cycles / c.cycles,
        ])
    return rows


def test_table1_report(benchmark, quality_data, capsys):
    rows = benchmark.pedantic(_table1_rows, args=(quality_data,),
                              rounds=1, iterations=1, warmup_rounds=0)
    table = format_table(
        ["benchmark", "binpack instrs", "GC instrs", "ratio",
         "binpack cycles", "GC cycles", "ratio"],
        rows,
        title=("Table 1: dynamic instruction counts and simulated run time "
               "(binpack = second-chance binpacking, GC = graph coloring)"))
    emit_table(capsys, "table1.txt", table)
    # Shape assertions mirroring the paper's headline: near-parity, with
    # coloring usually slightly ahead but never by a large factor.
    for row in rows:
        instr_ratio = row[3]
        assert 0.90 <= instr_ratio <= 1.15, row


@pytest.mark.parametrize("allocator_cls", [SecondChanceBinpacking,
                                           GraphColoring],
                         ids=["binpack", "coloring"])
def test_table1_pipeline_benchmark(benchmark, allocator_cls):
    """Times allocate+simulate on the doduc analog (one round per
    allocator — the cross-allocator comparison is the point)."""
    machine = alpha()
    module = build_program("doduc", machine)

    def pipeline():
        result = run_allocator(module, allocator_cls(), machine)
        return simulate(result.module, machine).dynamic_instructions

    count = benchmark.pedantic(pipeline, rounds=3, iterations=1,
                               warmup_rounds=0)
    assert count > 10_000
