"""Table 1: dynamic instruction counts and run times, binpack vs coloring.

Paper reference (Table 1): eleven benchmarks, dynamic instruction counts
and wall-clock run times for second-chance binpacking and George/Appel
graph coloring, plus the binpack/GC ratio per metric.  The paper's ratios
range 1.000–1.086 for instruction counts and 0.966–1.082 for run times.

Here "run time" is simulated cycles under the shared cost model.  The
raw cells come from the result store (populated by the session's suite
run, see ``conftest.py``); this module only renders and asserts.
"""

from repro.results.report import render_table1, table1_rows
from repro.results.store import CellKey

from _harness import bench_program_names, emit_table


def test_table1_report(results_store, capsys):
    names = bench_program_names()
    emit_table(capsys, "table1.txt", render_table1(results_store, names))
    # Shape assertions mirroring the paper's headline: near-parity, with
    # coloring usually slightly ahead but never by a large factor.
    for row in table1_rows(results_store, names):
        instr_ratio = row[3]
        assert 0.90 <= instr_ratio <= 1.15, row


def test_table1_cells_are_joinable(results_store):
    """Every quality cell embeds the metrics snapshot and the phase
    breakdown, so quality and compile-time numbers join per record."""
    for name in bench_program_names():
        for allocator in ("second-chance", "coloring"):
            record = results_store.peek(
                CellKey(workload=f"analog:{name}", allocator=allocator))
            assert record is not None, (name, allocator)
            assert record.data["dynamic_instructions"] > 10_000
            assert record.data["metrics"], "metrics snapshot missing"
            profile = record.data["profile"]
            assert profile["allocate_s"] >= profile["resolve_s"] >= 0.0
            assert profile["setup_s"] >= 0.0
