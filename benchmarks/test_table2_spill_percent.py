"""Table 2: percentage of dynamic instructions due to spill code.

Paper reference (Table 2): most benchmarks spill under 1.5% with either
allocator; five (alvinn, li, tomcatv, compress, wc) spill nothing at all;
fpppp is the outlier at 18.6% (binpack) / 13.4% (coloring).

Our analogs reproduce the split between a low-spill majority and a
heavy-spill fpppp; exact percentages differ (DESIGN.md Section 7).  The
cells come from the result store; this module renders and asserts.
"""

from repro.results.report import render_table2, table2_rows

from _harness import bench_program_names, emit_table


def test_table2_report(results_store, capsys):
    names = bench_program_names()
    rows = table2_rows(results_store, names)
    emit_table(capsys, "table2.txt", render_table2(results_store, names))
    by_name = {row[0]: row for row in rows}
    # fpppp is the heavy-spill outlier for both allocators.
    if "fpppp" in by_name:
        assert float(by_name["fpppp"][1].rstrip("%")) > 3.0
        assert float(by_name["fpppp"][2].rstrip("%")) > 3.0
    # Most benchmarks stay in the low single digits.
    low = sum(1 for row in rows if float(row[2].rstrip("%")) < 2.0)
    assert low >= len(rows) - 2
