"""Table 2: percentage of dynamic instructions due to spill code.

Paper reference (Table 2): most benchmarks spill under 1.5% with either
allocator; five (alvinn, li, tomcatv, compress, wc) spill nothing at all;
fpppp is the outlier at 18.6% (binpack) / 13.4% (coloring).

Our analogs reproduce the split between a low-spill majority and a
heavy-spill fpppp; exact percentages differ (DESIGN.md Section 7).  The
timed portion benchmarks the spill accounting itself.
"""

from repro.stats.report import format_table
from repro.stats.spill import spill_breakdown

from _harness import bench_program_names, emit_table


def _rows(quality_data):
    rows = []
    for name in bench_program_names():
        run = quality_data[name]
        b = spill_breakdown(run.outcomes["binpack"])
        c = spill_breakdown(run.outcomes["coloring"])
        rows.append([name,
                     f"{100 * b.fraction():.3f}%",
                     f"{100 * c.fraction():.3f}%"])
    return rows


def test_table2_report(benchmark, quality_data, capsys):
    rows = benchmark.pedantic(_rows, args=(quality_data,),
                              rounds=1, iterations=1, warmup_rounds=0)
    table = format_table(
        ["benchmark", "binpack spill", "GC spill"],
        rows,
        title=("Table 2: percentage of total dynamic instructions due to "
               "spill code (allocation candidates only)"))
    emit_table(capsys, "table2.txt", table)
    by_name = {row[0]: row for row in rows}
    # fpppp is the heavy-spill outlier for both allocators.
    if "fpppp" in by_name:
        assert float(by_name["fpppp"][1].rstrip("%")) > 3.0
        assert float(by_name["fpppp"][2].rstrip("%")) > 3.0
    # Most benchmarks stay in the low single digits.
    low = sum(1 for row in rows if float(row[2].rstrip("%")) < 2.0)
    assert low >= len(rows) - 2


def test_table2_accounting_benchmark(benchmark, quality_data):
    """Times the Figure-3/Table-2 accounting pass over one outcome."""
    name = bench_program_names()[0]
    outcome = quality_data[name].outcomes["binpack"]
    breakdown = benchmark(lambda: spill_breakdown(outcome))
    assert breakdown.total_dynamic == outcome.dynamic_instructions
