"""Table 3: allocation time versus problem size.

Paper reference (Table 3): on a module with 245 average candidates
(espresso's cvrin.c) coloring is *faster* than binpacking (0.4s vs 1.5s);
on fpppp's modules (6218 and 6697 candidates, ~52k and ~117k interference
edges) coloring is ~2.4x and ~3.5x *slower* (8.8s vs 3.7s, 15.8s vs
4.5s).  "A coloring allocator slows down significantly as the complexity
of the interference graph increases."

The timing cells live in the result store (kind=``timing``): one warm
:class:`CompilationSession` per cell, the allocator core re-run at least
three times through the phase profiler's ``allocate`` span, the median
recorded together with the shared-setup / per-run-setup / allocator-core
split (Section 3.2's analyze-once discipline).  This module renders the
comparison and asserts the paper's *shape*: rough parity at 245
candidates, a large coloring penalty at ~6200+.
"""

from repro.results.report import render_table3, table3_rows
from repro.results.store import CellKey
from repro.results.suite import TABLE3_SIZES

from _harness import emit_table, table3_reps


def _timing_record(store, n: int, allocator: str):
    record = store.peek(CellKey(workload=f"synthetic:{n}",
                                allocator=allocator, kind="timing",
                                reps=table3_reps()))
    assert record is not None, (n, allocator)
    return record.data


def test_table3_report(results_store, capsys):
    rows, reps = table3_rows(results_store, reps=table3_reps())
    assert reps >= 3, "each Table 3 cell must be timed at least 3 times"
    emit_table(capsys, "table3.txt",
               render_table3(results_store, reps=table3_reps()))
    small, large = rows[0], rows[-1]
    # The paper's shape: coloring competitive on the small module...
    assert small[-1] < 3.0
    # ...and much slower once the interference graph is large.
    assert large[-1] > 3.0
    # And coloring's slowdown grows with size.
    assert large[-1] > small[-1]


def test_table3_setup_discipline(results_store):
    """Rebinding cached analyses onto a clone must be much cheaper than
    computing them (the point of the session cache)."""
    for n in TABLE3_SIZES:
        b = _timing_record(results_store, n, "second-chance")
        assert b["setup_seconds"] <= max(b["shared_setup_seconds"], 1e-4), (
            "per-run setup should not exceed the one-time computation")


def test_table3_problem_sizes(results_store):
    """The synthetic modules hit the paper's candidate counts and the
    interference graph grows superlinearly with them."""
    for n in TABLE3_SIZES:
        b = _timing_record(results_store, n, "second-chance")
        c = _timing_record(results_store, n, "coloring")
        assert abs(b["candidates"] - n) <= max(64, n // 10)
        assert b["candidates"] == c["candidates"]
    edges = [_timing_record(results_store, n, "coloring")["edges"]
             for n in TABLE3_SIZES]
    assert edges[0] < edges[1] < edges[2]
