"""Table 3: allocation time versus problem size.

Paper reference (Table 3): on a module with 245 average candidates
(espresso's cvrin.c) coloring is *faster* than binpacking (0.4s vs 1.5s);
on fpppp's modules (6218 and 6697 candidates, ~52k and ~117k interference
edges) coloring is ~2.4x and ~3.5x *slower* (8.8s vs 3.7s, 15.8s vs
4.5s).  "A coloring allocator slows down significantly as the complexity
of the interference graph increases."

We time the allocator cores (setup analyses excluded, as in Section 3.2)
on synthetic modules built to the paper's candidate counts, with
interference density growing with size.  Each cell is the **median of at
least three repetitions**, each measured through the phase profiler's
``allocate`` span (the same clock ``alloc_seconds`` is defined by), so a
single noisy run cannot skew a ratio.  The reproduced *shape*: rough
parity at 245 candidates and a large coloring penalty at ~6200+.

All cells of one size share a :class:`CompilationSession` — the setup
analyses are computed once per module and *transferred* onto each
repetition's clone, the same analyze-once discipline the paper's timing
methodology assumes.  The report therefore splits timing three ways:

* **shared setup** — computing CFG/liveness/loops/lifetimes once, paid
  one time per module no matter how many allocators run;
* **per-run setup** — rebinding the cached analyses onto a run's clone
  (the marginal setup cost of one more allocator run);
* **allocator core** — the paper's timed region.

The split is persisted to ``benchmarks/results/table3.txt``.
"""

import os
import statistics

import pytest

from repro.allocators import GraphColoring, SecondChanceBinpacking
from repro.allocators.base import allocate_module
from repro.obs import PhaseProfiler
from repro.pm.session import CompilationSession
from repro.stats.report import format_table
from repro.target import alpha
from repro.workloads.synthetic import scaled_module

from _harness import emit_table

#: The paper's three module sizes (espresso cvrin.c, fpppp twldrv.f,
#: fpppp fpppp.f).
SIZES = [245, 6218, 6697]

#: Timing repetitions per cell; the reported core time is the median.
REPETITIONS = max(3, int(os.environ.get("REPRO_TABLE3_REPS", "3")))

_RECORDED: dict[tuple[str, int], dict] = {}

#: One compilation session per module size, shared by both allocators'
#: cells — plus the one-time cost of computing its analyses cold.
_SESSIONS: dict[int, CompilationSession] = {}
_SETUP_COLD: dict[int, float] = {}


def _session(n: int) -> CompilationSession:
    session = _SESSIONS.get(n)
    if session is None:
        session = CompilationSession(scaled_module(n), alpha())
        profiler = PhaseProfiler()
        with profiler.phase("setup"):
            for fn in session.module.functions.values():
                session.shared(fn, profiler=profiler)
        _SETUP_COLD[n] = profiler.seconds("setup")
        _SESSIONS[n] = session
    return session


def _run_core(n: int, allocator_factory):
    session = _session(n)
    instr_map: dict = {}
    working = session.module.clone(instr_map)
    for name, fn in working.functions.items():
        session.analyses.link_clone(session.module.functions[name], fn,
                                    instr_map)
    profiler = PhaseProfiler()
    stats = allocate_module(working, allocator_factory(), alpha(),
                            profiler=profiler, session=session)
    # alloc_seconds *is* the profiler's "allocate" phase measurement;
    # assert the identity so the benchmark numbers stay anchored to the
    # instrumentation they claim to come from.
    assert abs(stats.alloc_seconds - profiler.seconds("allocate")) < 1e-9
    return stats, profiler.seconds("setup")


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("allocator_factory",
                         [SecondChanceBinpacking, GraphColoring],
                         ids=["binpack", "coloring"])
def test_table3_core_timing(benchmark, allocator_factory, n):
    """One benchmark per (allocator, size) cell of Table 3."""
    samples = []
    setup_samples = []

    def one_rep():
        stats, setup_seconds = _run_core(n, allocator_factory)
        samples.append(stats)
        setup_samples.append(setup_seconds)
        return stats

    benchmark.pedantic(one_rep, rounds=REPETITIONS, iterations=1,
                       warmup_rounds=0)
    stats = samples[-1]
    key = (stats.allocator, n)
    _RECORDED[key] = {
        "core_seconds": statistics.median(s.alloc_seconds for s in samples),
        # Every rep runs against the warm session, so this is the
        # *per-run* (transfer) setup cost, not the cold computation.
        "setup_seconds": statistics.median(setup_samples),
        "repetitions": len(samples),
        "candidates": stats.total_candidates(),
        "edges": sum(stats.interference_edges.values()),
        "rounds": sum(stats.coloring_iterations.values()),
    }


def test_table3_report(benchmark, capsys):
    """Assembles the comparison from the timing cells above."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1, warmup_rounds=0)
    missing = [(alloc, n) for n in SIZES
               for alloc in ("second-chance binpacking", "graph coloring")
               if (alloc, n) not in _RECORDED]
    if missing:
        pytest.skip(f"timing cells not run: {missing}")
    reps = min(_RECORDED[key]["repetitions"] for key in _RECORDED)
    assert reps >= 3, "each Table 3 cell must be timed at least 3 times"
    rows = []
    for n in SIZES:
        b = _RECORDED[("second-chance binpacking", n)]
        c = _RECORDED[("graph coloring", n)]
        per_run_setup = max(b["setup_seconds"], c["setup_seconds"])
        rows.append([n, b["candidates"], c["edges"], c["rounds"],
                     round(_SETUP_COLD.get(n, 0.0), 3),
                     round(per_run_setup, 4),
                     round(c["core_seconds"], 3), round(b["core_seconds"], 3),
                     c["core_seconds"] / max(b["core_seconds"], 1e-9)])
    table = format_table(
        ["target candidates", "candidates", "if-graph edges",
         "color rounds", "shared setup (s)", "per-run setup (s)",
         "GC core (s)", "binpack core (s)", "GC/binpack"],
        rows,
        title=("Table 3: allocation-core time vs problem size "
               f"(median of {reps} repetitions per cell; shared setup paid "
               "once per module, per-run setup is the cached-analysis "
               "rebind each repetition pays)"))
    emit_table(capsys, "table3.txt", table)
    small, large = rows[0], rows[-1]
    # The paper's shape: coloring competitive on the small module...
    assert small[-1] < 3.0
    # ...and much slower once the interference graph is large.
    assert large[-1] > 3.0
    # And coloring's slowdown grows with size.
    assert large[-1] > small[-1]
    # The session discipline: rebinding cached analyses onto a clone must
    # be much cheaper than computing them (the point of the cache).
    for n in SIZES:
        b = _RECORDED[("second-chance binpacking", n)]
        assert b["setup_seconds"] <= max(_SETUP_COLD[n], 1e-4), (
            "per-run setup should not exceed the one-time computation")
