"""Table 3: allocation time versus problem size.

Paper reference (Table 3): on a module with 245 average candidates
(espresso's cvrin.c) coloring is *faster* than binpacking (0.4s vs 1.5s);
on fpppp's modules (6218 and 6697 candidates, ~52k and ~117k interference
edges) coloring is ~2.4x and ~3.5x *slower* (8.8s vs 3.7s, 15.8s vs
4.5s).  "A coloring allocator slows down significantly as the complexity
of the interference graph increases."

We time the allocator cores (setup analyses excluded, as in Section 3.2)
on synthetic modules built to the paper's candidate counts, with
interference density growing with size.  Each cell is the **median of at
least three repetitions**, each measured through the phase profiler's
``allocate`` span (the same clock ``alloc_seconds`` is defined by), so a
single noisy run cannot skew a ratio.  The reproduced *shape*: rough
parity at 245 candidates and a large coloring penalty at ~6200+.
"""

import copy
import os
import statistics

import pytest

from repro.allocators import GraphColoring, SecondChanceBinpacking
from repro.allocators.base import allocate_module
from repro.obs import PhaseProfiler
from repro.stats.report import format_table
from repro.target import alpha
from repro.workloads.synthetic import scaled_module

from _harness import emit_table

#: The paper's three module sizes (espresso cvrin.c, fpppp twldrv.f,
#: fpppp fpppp.f).
SIZES = [245, 6218, 6697]

#: Timing repetitions per cell; the reported core time is the median.
REPETITIONS = max(3, int(os.environ.get("REPRO_TABLE3_REPS", "3")))

_RECORDED: dict[tuple[str, int], dict] = {}


def _run_core(n: int, allocator_factory):
    module = scaled_module(n)
    working = copy.deepcopy(module)
    profiler = PhaseProfiler()
    stats = allocate_module(working, allocator_factory(), alpha(),
                            profiler=profiler)
    # alloc_seconds *is* the profiler's "allocate" phase measurement;
    # assert the identity so the benchmark numbers stay anchored to the
    # instrumentation they claim to come from.
    assert abs(stats.alloc_seconds - profiler.seconds("allocate")) < 1e-9
    return stats


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("allocator_factory",
                         [SecondChanceBinpacking, GraphColoring],
                         ids=["binpack", "coloring"])
def test_table3_core_timing(benchmark, allocator_factory, n):
    """One benchmark per (allocator, size) cell of Table 3."""
    samples = []

    def one_rep():
        stats = _run_core(n, allocator_factory)
        samples.append(stats)
        return stats

    benchmark.pedantic(one_rep, rounds=REPETITIONS, iterations=1,
                       warmup_rounds=0)
    stats = samples[-1]
    key = (stats.allocator, n)
    _RECORDED[key] = {
        "core_seconds": statistics.median(s.alloc_seconds for s in samples),
        "repetitions": len(samples),
        "candidates": stats.total_candidates(),
        "edges": sum(stats.interference_edges.values()),
        "rounds": sum(stats.coloring_iterations.values()),
    }


def test_table3_report(benchmark, capsys):
    """Assembles the comparison from the timing cells above."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1, warmup_rounds=0)
    missing = [(alloc, n) for n in SIZES
               for alloc in ("second-chance binpacking", "graph coloring")
               if (alloc, n) not in _RECORDED]
    if missing:
        pytest.skip(f"timing cells not run: {missing}")
    reps = min(_RECORDED[key]["repetitions"] for key in _RECORDED)
    assert reps >= 3, "each Table 3 cell must be timed at least 3 times"
    rows = []
    for n in SIZES:
        b = _RECORDED[("second-chance binpacking", n)]
        c = _RECORDED[("graph coloring", n)]
        rows.append([n, b["candidates"], c["edges"], c["rounds"],
                     round(c["core_seconds"], 3), round(b["core_seconds"], 3),
                     c["core_seconds"] / max(b["core_seconds"], 1e-9)])
    table = format_table(
        ["target candidates", "candidates", "if-graph edges",
         "color rounds", "GC core (s)", "binpack core (s)", "GC/binpack"],
        rows,
        title=("Table 3: allocation-core time vs problem size "
               f"(median of {reps} repetitions per cell; edges/rounds "
               "cover all coloring iterations)"))
    emit_table(capsys, "table3.txt", table)
    small, large = rows[0], rows[-1]
    # The paper's shape: coloring competitive on the small module...
    assert small[-1] < 3.0
    # ...and much slower once the interference graph is large.
    assert large[-1] > 3.0
    # And coloring's slowdown grows with size.
    assert large[-1] > small[-1]
