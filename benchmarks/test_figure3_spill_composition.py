"""Figure 3: composition of the spill code inserted by each allocator.

Paper reference (Figure 3): for the six benchmarks with spill code, a
stacked bar per allocator splits dynamic spill instructions into
{evict, resolve} x {loads, stores, moves}, normalized to the binpacking
total.  Binpacking has a resolution component (coloring never does), and
the paper highlights that binpack's extra spill often comes from
resolution stores/loads.

We render the same data as rows (one per benchmark-allocator pair, like
the figure's ``<name>-b`` / ``<name>-c`` bars).
"""

from repro.ir.instr import SpillKind, SpillPhase
from repro.stats.report import format_table
from repro.stats.spill import FIGURE3_CATEGORIES, spill_breakdown

from _harness import bench_program_names, emit_table


def _rows(quality_data):
    rows = []
    for name in bench_program_names():
        run = quality_data[name]
        b = spill_breakdown(run.outcomes["binpack"])
        c = spill_breakdown(run.outcomes["coloring"])
        if b.total_spill == 0 and c.total_spill == 0:
            continue  # the figure covers benchmarks with spill code
        for tag, breakdown in ((f"{name}-b", b), (f"{name}-c", c)):
            normalized = breakdown.normalized_to(b)
            rows.append([tag] + [f"{v:.3f}" for v in normalized]
                        + [breakdown.total_spill])
    return rows


def test_figure3_report(benchmark, quality_data, capsys):
    rows = benchmark.pedantic(_rows, args=(quality_data,),
                              rounds=1, iterations=1, warmup_rounds=0)
    headers = (["bar"] + [f"{p.value[:7]}.{k.value}s"
                          for p, k in FIGURE3_CATEGORIES] + ["dyn spill"])
    table = format_table(
        headers, rows,
        title=("Figure 3: spill-code composition, normalized to the "
               "binpacking total per benchmark (-b = binpack, -c = GC)"))
    emit_table(capsys, "figure3.txt", table)
    assert rows, "at least one benchmark must spill"
    # Coloring never inserts resolution code.
    resolve_columns = [i for i, (p, _) in enumerate(FIGURE3_CATEGORIES, 1)
                       if p is SpillPhase.RESOLVE]
    for row in rows:
        if row[0].endswith("-c"):
            assert all(float(row[i]) == 0.0 for i in resolve_columns), row
    # Each -b bar is normalized to itself: the six categories sum to 1.
    for row in rows:
        if row[0].endswith("-b") and row[-1] > 0:
            total = sum(float(row[i]) for i in range(1, 7))
            assert abs(total - 1.0) < 1e-9, row


def test_figure3_normalization_benchmark(benchmark, quality_data):
    name = bench_program_names()[0]
    run = quality_data[name]
    b = spill_breakdown(run.outcomes["binpack"])
    c = spill_breakdown(run.outcomes["coloring"])
    result = benchmark(lambda: c.normalized_to(b))
    assert len(result) == len(FIGURE3_CATEGORIES)
