"""Figure 3: composition of the spill code inserted by each allocator.

Paper reference (Figure 3): for the six benchmarks with spill code, a
stacked bar per allocator splits dynamic spill instructions into
{evict, resolve} x {loads, stores, moves}, normalized to the binpacking
total.  Binpacking has a resolution component (coloring never does), and
the paper highlights that binpack's extra spill often comes from
resolution stores/loads.

We render the same data as rows (one per benchmark-allocator pair, like
the figure's ``<name>-b`` / ``<name>-c`` bars), from store records.
"""

from repro.results.report import FIGURE3_KEYS, figure3_rows, render_figure3

from _harness import bench_program_names, emit_table


def test_figure3_report(results_store, capsys):
    names = bench_program_names()
    rows = figure3_rows(results_store, names)
    emit_table(capsys, "figure3.txt", render_figure3(results_store, names))
    assert rows, "at least one benchmark must spill"
    # Coloring never inserts resolution code.
    resolve_columns = [i for i, key in enumerate(FIGURE3_KEYS, 1)
                       if key.startswith("resolve.")]
    for row in rows:
        if row[0].endswith("-c"):
            assert all(float(row[i]) == 0.0 for i in resolve_columns), row
    # Each -b bar is normalized to itself: the six categories sum to 1.
    for row in rows:
        if row[0].endswith("-b") and row[-1] > 0:
            total = sum(float(row[i]) for i in range(1, 7))
            assert abs(total - 1.0) < 2e-3, row
