"""Shared machinery for the benchmark harness.

The harness regenerates every table and figure of the paper's evaluation
(see DESIGN.md's experiment index).  The expensive raw data — each analog
compiled, allocated by each allocator, and simulated — is computed once
per session (see ``conftest.quality_data``) and shared by Table 1,
Table 2, and Figure 3.

Every reproduced table is printed to the terminal (bypassing pytest's
capture) *and* written under ``benchmarks/results/`` so a benchmark run
leaves a record that EXPERIMENTS.md can reference.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.allocators import GraphColoring, SecondChanceBinpacking
from repro.pipeline import run_allocator
from repro.pm.session import CompilationSession
from repro.sim import simulate
from repro.sim.machine import outputs_equal
from repro.target import alpha
from repro.workloads.programs import PROGRAM_NAMES, build_program

RESULTS_DIR = Path(__file__).parent / "results"

#: Set REPRO_BENCH_SET=fast to run the quality tables on a subset.
FAST_SET = ["doduc", "fpppp", "compress", "m88ksim", "sort"]


def bench_program_names() -> list[str]:
    """The analogs the quality tables cover in this run."""
    if os.environ.get("REPRO_BENCH_SET") == "fast":
        return list(FAST_SET)
    return list(PROGRAM_NAMES)


class QualityRun:
    """One benchmark analog under both headline allocators."""

    def __init__(self, name: str):
        machine = alpha()
        module = build_program(name, machine)
        self.name = name
        self.reference = simulate(module, machine)
        self.results = {}
        self.outcomes = {}
        # One session per analog: both allocators share the setup
        # analyses and the DCE'd base, per Section 3's methodology.
        session = CompilationSession(module, machine)
        for key, allocator in (("binpack", SecondChanceBinpacking()),
                               ("coloring", GraphColoring())):
            result = run_allocator(module, allocator, machine,
                                   session=session)
            outcome = simulate(result.module, machine)
            assert outputs_equal(outcome.output, self.reference.output), (
                f"{name}/{key}: allocation changed observable behaviour")
            self.results[key] = result
            self.outcomes[key] = outcome


def emit_table(capsys, filename: str, text: str) -> None:
    """Print ``text`` to the live terminal and save it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n")
    with capsys.disabled():
        print()
        print(text)
