"""Shared machinery for the benchmark harness.

Since the result-store refactor the harness is thin: ``conftest.py``
runs the declarative suite (``repro.results.suite.standard_suite``) once
per session — computing only the cells whose content hash misses the
persistent store — and every ``test_*`` module renders its table from
store records through the *same* ``repro.results.report`` functions the
``repro report`` CLI uses, then asserts the paper's shape claims on the
structured rows.  The N per-table measurement loops this file used to
carry are gone.

Every reproduced table is still printed to the terminal (bypassing
pytest's capture) *and* written under ``benchmarks/results/`` so a
benchmark run leaves a record that EXPERIMENTS.md can reference.

Environment knobs:

* ``REPRO_BENCH_SET=fast``    — quality tables on the golden subset
  (the default is the full eleven-analog set);
* ``REPRO_RESULT_STORE=DIR``  — store location (default:
  ``benchmarks/results/store``);
* ``REPRO_SUITE_JOBS=N``      — compute cache-miss cells through the
  process pool;
* ``REPRO_TABLE3_REPS=N``     — timing repetitions per Table 3 cell
  (minimum and default 3).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.results.suite import FAST_SET

RESULTS_DIR = Path(__file__).parent / "results"


def bench_program_names() -> list[str]:
    """The analogs the quality tables cover in this run."""
    from repro.workloads.programs import PROGRAM_NAMES

    if os.environ.get("REPRO_BENCH_SET") == "fast":
        return list(FAST_SET)
    return list(PROGRAM_NAMES)


def table3_reps() -> int:
    """Timing repetitions per Table 3 cell; the reported time is the
    median, so at least three."""
    return max(3, int(os.environ.get("REPRO_TABLE3_REPS", "3")))


def suite_jobs() -> int:
    return int(os.environ.get("REPRO_SUITE_JOBS", "1"))


def emit_table(capsys, filename: str, text: str) -> None:
    """Print ``text`` to the live terminal and save it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n")
    with capsys.disabled():
        print()
        print(text)
