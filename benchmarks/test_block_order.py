"""Block-order sensitivity of linear scan (an extension study).

The linear-scan family is defined over "the static linear order of the
code" (Section 1): lifetimes, holes, and the single scan all depend on
how blocks are laid out, while graph coloring sees only the CFG.  This
study quantifies that dependence by allocating the same programs under
three layouts:

* ``layout``   — the frontend's source order (the default elsewhere);
* ``rpo``      — reverse postorder;
* ``scrambled``— entry first, remaining blocks deterministically shuffled
                 (a worst-ish case: loop bodies drift away from their
                 headers, tearing lifetimes into long spans).

All three are semantically identical (every block ends in an explicit
terminator), so the simulator oracle still applies; only quality may
move.  Coloring is measured under the same permutations as a control —
its results should barely move.
"""

import copy
import random

import pytest

from repro.allocators import GraphColoring, SecondChanceBinpacking
from repro.cfg.order import reorder_reverse_postorder
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.sim.machine import outputs_equal
from repro.stats.report import format_table
from repro.target import alpha
from repro.workloads.programs import build_program

from _harness import emit_table

PROGRAMS = ["doduc", "fpppp", "sort", "m88ksim"]
ORDERS = ["layout", "rpo", "scrambled"]

_RECORDED: dict[tuple[str, str, str], int] = {}


def _reorder(module, order: str):
    working = copy.deepcopy(module)
    if order == "layout":
        return working
    for fn in working.functions.values():
        if order == "rpo":
            reorder_reverse_postorder(fn)
        else:
            rng = random.Random(0xC0FFEE)
            rest = fn.blocks[1:]
            rng.shuffle(rest)
            fn.blocks[:] = [fn.blocks[0]] + rest
    return working


def _measure(program: str) -> None:
    machine = alpha()
    base = build_program(program, machine)
    reference = simulate(base, machine)
    for order in ORDERS:
        module = _reorder(base, order)
        for key, allocator in (("binpack", SecondChanceBinpacking()),
                               ("coloring", GraphColoring())):
            result = run_allocator(module, allocator, machine)
            outcome = simulate(result.module, machine)
            assert outputs_equal(outcome.output, reference.output), (
                program, order, key)
            _RECORDED[(program, order, key)] = outcome.dynamic_instructions


@pytest.mark.parametrize("program", PROGRAMS)
def test_block_order_measurement(benchmark, program):
    benchmark.pedantic(_measure, args=(program,), rounds=1, iterations=1,
                       warmup_rounds=0)
    assert _RECORDED[(program, "layout", "binpack")] > 0


def test_block_order_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1, warmup_rounds=0)
    missing = [(p, o) for p in PROGRAMS for o in ORDERS
               if (p, o, "binpack") not in _RECORDED]
    if missing:
        pytest.skip(f"measurements not run: {missing[:3]}...")
    rows = []
    for program in PROGRAMS:
        base_b = _RECORDED[(program, "layout", "binpack")]
        base_c = _RECORDED[(program, "layout", "coloring")]
        rows.append([
            program,
            _RECORDED[(program, "rpo", "binpack")] / base_b,
            _RECORDED[(program, "scrambled", "binpack")] / base_b,
            _RECORDED[(program, "rpo", "coloring")] / base_c,
            _RECORDED[(program, "scrambled", "coloring")] / base_c,
        ])
    table = format_table(
        ["benchmark", "binpack rpo", "binpack scrambled",
         "GC rpo", "GC scrambled"],
        rows,
        title=("Block-order sensitivity: dynamic instructions relative to "
               "the frontend layout order (linear scan depends on the "
               "linear order; coloring is the control)"))
    emit_table(capsys, "block_order.txt", table)
    for row in rows:
        # Scrambling never changes behaviour, only quality — and it should
        # never *improve* binpacking dramatically.
        assert all(v > 0.9 for v in row[1:]), row
    # Coloring must be essentially order-insensitive.
    for row in rows:
        assert abs(row[3] - 1.0) < 0.05 and abs(row[4] - 1.0) < 0.05, row
