"""Block-order sensitivity of linear scan (an extension study).

The linear-scan family is defined over "the static linear order of the
code" (Section 1): lifetimes, holes, and the single scan all depend on
how blocks are laid out, while graph coloring sees only the CFG.  This
study quantifies that dependence by allocating the same programs under
three layouts (cells carry ``order=layout|rpo|scrambled`` in the store):

* ``layout``   — the frontend's source order (the default elsewhere);
* ``rpo``      — reverse postorder;
* ``scrambled``— entry first, remaining blocks deterministically shuffled
                 (a worst-ish case: loop bodies drift away from their
                 headers, tearing lifetimes into long spans).

All three are semantically identical (every block ends in an explicit
terminator — the suite worker's oracle check enforces it), so only
quality may move.  Coloring is measured under the same permutations as a
control — its results should barely move.
"""

from repro.results.report import block_order_rows, render_block_order

from _harness import emit_table


def test_block_order_report(results_store, capsys):
    rows = block_order_rows(results_store)
    emit_table(capsys, "block_order.txt",
               render_block_order(results_store))
    for row in rows:
        # Scrambling never changes behaviour, only quality — and it should
        # never *improve* binpacking dramatically.
        assert all(v > 0.9 for v in row[1:]), row
    # Coloring must be essentially order-insensitive.
    for row in rows:
        assert abs(row[3] - 1.0) < 0.05 and abs(row[4] - 1.0) < 0.05, row
