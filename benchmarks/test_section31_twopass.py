"""Section 3.1's two-pass ablation: wc degrades, eqntott does not.

Paper reference: "The wc benchmark ran 38% slower (1445466 vs 1046734
dynamic instructions) when allocated using two-pass binpacking than it
did when allocated with our second-chance approach. ... The other class
of applications, exemplified by eqntott, has almost identical performance
under two-pass binpacking and second-chance binpacking (2783984589 vs
2782873030 dynamic instructions)."

Our analogs reproduce the *split*: a clear two-pass penalty on wc (whose
hot loop keeps many scalars live across a call) and near-parity on
eqntott (whose hot routine needs no spilling).  The measured factor on wc
is smaller than the paper's 38% — see EXPERIMENTS.md.
"""

import pytest

from repro.allocators import SecondChanceBinpacking, TwoPassBinpacking
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.sim.machine import outputs_equal
from repro.stats.report import format_table
from repro.target import alpha
from repro.workloads.programs import build_program

from _harness import emit_table

_RECORDED: dict[str, dict[str, int]] = {}


def _measure(name: str) -> dict[str, int]:
    cached = _RECORDED.get(name)
    if cached is not None:
        return cached
    machine = alpha()
    module = build_program(name, machine)
    reference = simulate(module, machine)
    counts = {}
    for key, allocator in (("second-chance", SecondChanceBinpacking()),
                           ("two-pass", TwoPassBinpacking())):
        result = run_allocator(module, allocator, machine)
        outcome = simulate(result.module, machine)
        assert outputs_equal(outcome.output, reference.output)
        counts[key] = outcome.dynamic_instructions
        counts[key + "-cycles"] = outcome.cycles
    _RECORDED[name] = counts
    return counts


@pytest.mark.parametrize("name", ["wc", "eqntott"])
def test_twopass_measurement(benchmark, name):
    counts = benchmark.pedantic(_measure, args=(name,), rounds=1,
                                iterations=1, warmup_rounds=0)
    assert counts["second-chance"] > 0


def test_section31_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1, warmup_rounds=0)
    rows = []
    for name in ("wc", "eqntott"):
        counts = _measure(name)
        rows.append([name, counts["second-chance"], counts["two-pass"],
                     counts["two-pass"] / counts["second-chance"],
                     counts["two-pass-cycles"] / counts["second-chance-cycles"]])
    table = format_table(
        ["benchmark", "second-chance instrs", "two-pass instrs",
         "instr ratio", "cycle ratio"],
        rows,
        title=("Section 3.1: two-pass binpacking vs second chance "
               "(paper: wc 1.38x, eqntott 1.0004x)"))
    emit_table(capsys, "section31_twopass.txt", table)
    wc_ratio = rows[0][3]
    eqntott_ratio = rows[1][3]
    # The split: wc pays a clear penalty, eqntott essentially none.
    assert wc_ratio > 1.03
    assert eqntott_ratio < 1.03
    assert wc_ratio > eqntott_ratio
