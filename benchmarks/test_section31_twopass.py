"""Section 3.1's two-pass ablation: wc degrades, eqntott does not.

Paper reference: "The wc benchmark ran 38% slower (1445466 vs 1046734
dynamic instructions) when allocated using two-pass binpacking than it
did when allocated with our second-chance approach. ... The other class
of applications, exemplified by eqntott, has almost identical performance
under two-pass binpacking and second-chance binpacking (2783984589 vs
2782873030 dynamic instructions)."

Our analogs reproduce the *split*: a clear two-pass penalty on wc (whose
hot loop keeps many scalars live across a call) and near-parity on
eqntott (whose hot routine needs no spilling).  The measured factor on wc
is smaller than the paper's 38% — see EXPERIMENTS.md.
"""

from repro.results.report import render_section31, section31_rows

from _harness import emit_table


def test_section31_report(results_store, capsys):
    rows = section31_rows(results_store)
    emit_table(capsys, "section31_twopass.txt",
               render_section31(results_store))
    wc_ratio = rows[0][3]
    eqntott_ratio = rows[1][3]
    # The split: wc pays a clear penalty, eqntott essentially none.
    assert wc_ratio > 1.03
    assert eqntott_ratio < 1.03
    assert wc_ratio > eqntott_ratio
