"""Session fixtures for the benchmark harness (logic in _harness.py).

One suite-runner invocation per session populates the persistent result
store; every table/figure test then renders from store records.  Re-runs
only recompute cells whose code hash changed — a second benchmark
session over unchanged code is pure cache hits.
"""

import pytest

from _harness import bench_program_names, suite_jobs, table3_reps

from repro.results import ResultStore, run_suite
from repro.results.suite import (ablation_specs, block_order_specs,
                                 dedup_specs, quality_specs, table3_specs,
                                 twopass_specs)


def benchmark_suite_specs():
    """Every cell the seven benchmark modules report on."""
    return dedup_specs(
        quality_specs(bench_program_names())
        + ablation_specs()
        + block_order_specs()
        + twopass_specs()
        + table3_specs(table3_reps()))


@pytest.fixture(scope="session")
def results_store() -> ResultStore:
    """The populated result store (one suite invocation per session)."""
    store = ResultStore()
    outcome = run_suite(benchmark_suite_specs(), store, jobs=suite_jobs(),
                        label="benchmarks")
    print(f"\n{outcome.summary()}")
    return store
