"""Session fixtures for the benchmark harness (logic in _harness.py)."""

import pytest

from _harness import QualityRun, bench_program_names


@pytest.fixture(scope="session")
def quality_data() -> dict[str, QualityRun]:
    """All analogs, allocated and simulated under both allocators."""
    return {name: QualityRun(name) for name in bench_program_names()}
