"""Design-choice ablations (beyond the paper's tables).

DESIGN.md's experiment index calls out the binpacking design choices the
paper motivates but does not measure individually.  Each ablation knocks
out one Section 2 mechanism:

* ``no-holes``      — disable lifetime-hole packing (Section 2.1/2.2);
* ``no-esc``        — disable early second chance (Section 2.5);
* ``no-move-elim``  — disable move elimination (Section 2.5);
* ``no-consistency``— always store on eviction (Section 2.3);
* ``conservative``  — Section 2.6's strictly-linear consistency variant
                      (no iterative dataflow);
* ``poletto``       — the related-work allocator (Section 4): no holes,
                      no splitting, whole lifetimes;
* ``+cleanup``      — the *extension*: full configuration plus the
                      post-allocation spill cleanup the paper sketches in
                      Section 2.4 (store-to-load forwarding, dead-store
                      elimination) — the only config expected to beat 1.0.

Run on the fast analog subset; the report shows dynamic instructions
relative to the full second-chance configuration.
"""

import pytest

from repro.allocators import PolettoLinearScan, SecondChanceBinpacking
from repro.allocators.binpack.allocator import BinpackOptions
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.sim.machine import outputs_equal
from repro.stats.report import format_table
from repro.target import alpha
from repro.workloads.programs import build_program

from _harness import emit_table

PROGRAMS = ["doduc", "fpppp", "compress", "sort"]

CONFIGS = {
    "full": lambda: SecondChanceBinpacking(),
    "no-holes": lambda: SecondChanceBinpacking(
        BinpackOptions(use_holes=False)),
    "no-esc": lambda: SecondChanceBinpacking(
        BinpackOptions(early_second_chance=False)),
    "no-move-elim": lambda: SecondChanceBinpacking(
        BinpackOptions(move_elimination=False)),
    "no-consistency": lambda: SecondChanceBinpacking(
        BinpackOptions(avoid_consistent_stores=False)),
    "conservative": lambda: SecondChanceBinpacking(
        BinpackOptions(conservative_consistency=True)),
    "poletto": lambda: PolettoLinearScan(),
    "+cleanup": lambda: SecondChanceBinpacking(),
}

_RECORDED: dict[tuple[str, str], int] = {}


def _measure(program: str) -> dict[str, int]:
    machine = alpha()
    module = build_program(program, machine)
    reference = simulate(module, machine)
    counts = {}
    for config, factory in CONFIGS.items():
        result = run_allocator(module, factory(), machine,
                               spill_cleanup=(config == "+cleanup"))
        outcome = simulate(result.module, machine)
        assert outputs_equal(outcome.output, reference.output), (
            program, config)
        counts[config] = outcome.dynamic_instructions
        _RECORDED[(program, config)] = outcome.dynamic_instructions
    return counts


@pytest.mark.parametrize("program", PROGRAMS)
def test_ablation_measurement(benchmark, program):
    counts = benchmark.pedantic(_measure, args=(program,), rounds=1,
                                iterations=1, warmup_rounds=0)
    assert counts["full"] > 0


def test_ablation_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1, warmup_rounds=0)
    missing = [(p, c) for p in PROGRAMS for c in CONFIGS
               if (p, c) not in _RECORDED]
    if missing:
        pytest.skip(f"measurements not run: {missing[:3]}...")
    rows = []
    for program in PROGRAMS:
        full = _RECORDED[(program, "full")]
        rows.append([program] + [
            _RECORDED[(program, config)] / full for config in CONFIGS])
    table = format_table(
        ["benchmark"] + list(CONFIGS), rows,
        title=("Ablations: dynamic instructions relative to full "
               "second-chance binpacking (1.000 = full configuration)"))
    emit_table(capsys, "ablations.txt", table)
    for row in rows:
        name, values = row[0], row[1:]
        assert values[0] == 1.0
        # No ablation should ever *improve* quality by a large factor —
        # that would mean a mechanism is misfiring.
        assert all(v > 0.97 for v in values), row
    # Hole packing must help somewhere (doduc's call-heavy FP loop is the
    # usual beneficiary; fpppp's single giant block has few holes).
    no_holes_col = 1 + list(CONFIGS).index("no-holes")
    assert any(row[no_holes_col] > 1.0 for row in rows)
    # And the hole-less Poletto baseline should trail the full allocator
    # on at least one benchmark as well.
    poletto_col = 1 + list(CONFIGS).index("poletto")
    assert any(row[poletto_col] > 1.0 for row in rows)
