"""Design-choice ablations (beyond the paper's tables).

DESIGN.md's experiment index calls out the binpacking design choices the
paper motivates but does not measure individually.  Each ablation knocks
out one Section 2 mechanism (the grid is declared once, in
``repro.results.suite.ABLATION_CONFIGS``):

* ``no-holes``      — disable lifetime-hole packing (Section 2.1/2.2);
* ``no-esc``        — disable early second chance (Section 2.5);
* ``no-move-elim``  — disable move elimination (Section 2.5);
* ``no-consistency``— always store on eviction (Section 2.3);
* ``conservative``  — Section 2.6's strictly-linear consistency variant
                      (no iterative dataflow);
* ``poletto``       — the related-work allocator (Section 4): no holes,
                      no splitting, whole lifetimes;
* ``+cleanup``      — the *extension*: full configuration plus the
                      post-allocation spill cleanup the paper sketches in
                      Section 2.4 (store-to-load forwarding, dead-store
                      elimination) — the only config expected to beat 1.0.

Run on the fast analog subset; the report shows dynamic instructions
relative to the full second-chance configuration.
"""

from repro.results.report import ablation_rows, render_ablations
from repro.results.suite import ABLATION_CONFIGS

from _harness import emit_table


def test_ablation_report(results_store, capsys):
    rows = ablation_rows(results_store)
    emit_table(capsys, "ablations.txt", render_ablations(results_store))
    for row in rows:
        values = row[1:]
        assert values[0] == 1.0
        # No ablation should ever *improve* quality by a large factor —
        # that would mean a mechanism is misfiring.
        assert all(v > 0.97 for v in values), row
    # Hole packing must help somewhere (doduc's call-heavy FP loop is the
    # usual beneficiary; fpppp's single giant block has few holes).
    no_holes_col = 1 + list(ABLATION_CONFIGS).index("no-holes")
    assert any(row[no_holes_col] > 1.0 for row in rows)
    # And the hole-less Poletto baseline should trail the full allocator
    # on at least one benchmark as well.
    poletto_col = 1 + list(ABLATION_CONFIGS).index("poletto")
    assert any(row[poletto_col] > 1.0 for row in rows)
