"""Compare all four allocators on a benchmark analog.

Usage::

    python examples/compare_allocators.py [benchmark] [--machine tiny|alpha]

e.g. ``python examples/compare_allocators.py doduc``.  Runs second-chance
binpacking, two-pass binpacking, George–Appel coloring, and Poletto
linear scan on one of the paper's benchmark analogs and prints a Table-1
style comparison: dynamic instructions, simulated cycles, spill
percentage, and core allocation time.
"""

import sys

from repro.allocators import (
    GraphColoring,
    PolettoLinearScan,
    SecondChanceBinpacking,
    TwoPassBinpacking,
)
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.sim.machine import outputs_equal
from repro.stats.report import format_table
from repro.target import alpha, tiny
from repro.workloads.programs import PROGRAM_NAMES, build_program

ALLOCATORS = [
    SecondChanceBinpacking,
    TwoPassBinpacking,
    GraphColoring,
    PolettoLinearScan,
]


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    name = args[0] if args else "doduc"
    machine = tiny(8, 8) if "--machine=tiny" in sys.argv else alpha()
    if name not in PROGRAM_NAMES:
        raise SystemExit(f"unknown benchmark {name!r}; choose from "
                         f"{', '.join(PROGRAM_NAMES)}")

    module = build_program(name, machine)
    reference = simulate(module, machine)
    print(f"benchmark: {name} on {machine}")
    print(f"reference run: {reference.dynamic_instructions:,} dynamic "
          f"instructions, output {reference.output[:4]}...")

    rows = []
    for factory in ALLOCATORS:
        allocator = factory()
        result = run_allocator(module, allocator, machine)
        outcome = simulate(result.module, machine)
        assert outputs_equal(outcome.output, reference.output), allocator.name
        rows.append([
            allocator.name,
            outcome.dynamic_instructions,
            outcome.cycles,
            f"{100 * outcome.spill_fraction():.2f}%",
            f"{result.stats.alloc_seconds * 1000:.1f} ms",
        ])
    baseline_cycles = rows[2][2]  # graph coloring, the paper's reference
    for row in rows:
        row.append(row[2] / baseline_cycles)

    print()
    print(format_table(
        ["allocator", "dyn instrs", "cycles", "spill%", "alloc time",
         "cycles vs GC"],
        rows))


if __name__ == "__main__":
    main()
