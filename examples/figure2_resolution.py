"""Figure 2: second-chance splitting and edge resolution, step by step.

Usage::

    python examples/figure2_resolution.py

Builds the paper's Figure 2 scenario — T1 is defined and used in B1,
evicted by register pressure while the scan walks B2 (which T1 merely
passes through in the linear order), and referenced again in B3 where the
second chance gives it a *different* register.  The linear scan's
assumptions then disagree across the CFG edges B1->B3 and B2->B4, and the
resolution phase patches them with stores/loads/moves, exactly as the
figure annotates.

The example prints the code before and after allocation with the
allocator-inserted instructions tagged (``!evict`` / ``!resolve``), plus
the per-edge traffic resolution generated.
"""

from repro.allocators import SecondChanceBinpacking
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import SpillPhase
from repro.ir.module import Module
from repro.ir.printer import print_function
from repro.ir.types import RegClass
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.target import tiny

G = RegClass.GPR


def build_figure2() -> Module:
    module = Module()
    fn = Function("main")
    b = FunctionBuilder(fn)
    b.new_block("B1")
    t1 = b.temp(G, "T1")
    b.li(11, dst=t1)        # i1: T1 <- ..
    b.print_(t1)            # i2: .. <- T1
    b.br(b.li(1), "B2", "B3")
    b.new_block("B2")
    # Enough short lifetimes to crowd T1 out of the register file while
    # the scan passes through B2 (T1 is not referenced here).
    vals = [b.li(i) for i in range(4)]
    acc = b.li(0)
    for v in vals:
        acc = b.add(acc, v)
    b.print_(acc)
    b.jmp("B4")
    b.new_block("B3")
    b.print_(t1)            # i3: .. <- T1  (second chance: a new register)
    b.li(99, dst=t1)        # i4: T1 <- ..
    b.print_(t1)
    b.jmp("B4")
    b.new_block("B4")
    b.ret()
    module.add_function(fn)
    return module


def main() -> None:
    from repro.allocators.binpack.allocator import BinpackOptions

    machine = tiny(4, 4)  # a starved machine, like the figure's 2 registers
    module = build_figure2()

    print("=== before allocation ===")
    print(print_function(module.functions["main"]))
    reference = simulate(module, machine)

    # Figure 2 opens with "assume that none of the temporaries contain
    # lifetime holes" — so first run with hole packing disabled, which
    # reproduces the figure's events literally.
    print("\n=== allocation WITHOUT lifetime holes (the figure's premise) ===")
    no_holes = run_allocator(
        module, SecondChanceBinpacking(BinpackOptions(use_holes=False)),
        machine)
    for block in no_holes.module.functions["main"].blocks:
        for instr in block.instrs:
            if instr.spill_phase in (SpillPhase.EVICT, SpillPhase.RESOLVE):
                print(f"  {block.label}: {instr}")
    outcome = simulate(no_holes.module, machine)
    assert outcome.output == reference.output
    print("  -> T1 is spilled while the scan sweeps B2 (the figure's i5), "
          "reloaded at its B3 use under a second chance (i6), and the "
          "resolution phase adds the store on the B1->B3 path (i7).")

    # With holes enabled (the full algorithm), T1's value is dead through
    # B2 in the linear order — a block-boundary hole — so the allocator
    # parks other temporaries in T1's register and needs no spill at all.
    print("\n=== allocation WITH lifetime holes (the full algorithm) ===")
    full = run_allocator(module, SecondChanceBinpacking(), machine)
    spills = [(block.label, instr)
              for block in full.module.functions["main"].blocks
              for instr in block.instrs
              if instr.spill_phase in (SpillPhase.EVICT, SpillPhase.RESOLVE)
              and "T1" not in str(instr)]
    outcome_full = simulate(full.module, machine)
    assert outcome_full.output == reference.output
    print(f"  allocator-inserted instructions: "
          f"{sum(1 for _ in spills)} (none touch T1: its hole over B2 "
          f"lets B2's temporaries share the register)")

    print("\n=== behaviour check ===")
    print(f"output before: {reference.output}")
    print(f"output (no holes): {outcome.output}")
    print(f"output (full):     {outcome_full.output}")


if __name__ == "__main__":
    main()
