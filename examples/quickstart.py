"""Quickstart: compile a minic program, allocate registers, run it.

Usage::

    python examples/quickstart.py

Compiles a small program with the paper's second-chance binpacking
allocator, simulates both the virtual and the allocated code, and shows
that behaviour is preserved while every temporary became a machine
register.
"""

from repro import compile_minic, run_allocator, simulate
from repro.allocators import SecondChanceBinpacking
from repro.ir.printer import print_function
from repro.target import alpha

SOURCE = """
global int primes[8] = {2, 3, 5, 7, 11, 13, 17, 19};

func int sum_scaled(int k) {
  int total = 0;
  for (int i = 0; i < 8; i = i + 1) {
    total = total + primes[i] * k;
  }
  return total;
}

func int main() {
  print sum_scaled(1);
  print sum_scaled(10);
  return 0;
}
"""


def main() -> None:
    machine = alpha()
    module = compile_minic(SOURCE, machine)

    print("=== pre-allocation IR (virtual registers) ===")
    print(print_function(module.functions["sum_scaled"]))

    before = simulate(module, machine)
    result = run_allocator(module, SecondChanceBinpacking(), machine)
    after = simulate(result.module, machine)

    print("\n=== post-allocation code (machine registers) ===")
    print(print_function(result.module.functions["sum_scaled"]))

    print("\n=== behaviour check ===")
    print(f"output before allocation: {before.output}")
    print(f"output after  allocation: {after.output}")
    assert before.output == after.output

    print("\n=== statistics ===")
    print(f"dynamic instructions: {before.dynamic_instructions} -> "
          f"{after.dynamic_instructions}")
    print(f"register candidates: {result.stats.candidates}")
    print(f"allocation core time: {result.stats.alloc_seconds * 1000:.2f} ms")
    print(f"moves removed by the peephole: {result.moves_removed}")


if __name__ == "__main__":
    main()
