"""Figure 1: lifetimes and lifetime holes over a linearized CFG.

Usage::

    python examples/figure1_lifetime_holes.py

Reconstructs the paper's Figure 1 — a four-block diamond whose
temporaries exhibit holes once the blocks are laid out linearly — and
renders an ASCII timeline: ``#`` marks live points, ``.`` marks lifetime
holes, and space means outside the lifetime entirely.  The point the
figure makes: "a block boundary can cause a hole to begin or end in the
linear view of the program", and a temporary like T3 fits entirely inside
another's hole, so both can share one register.
"""

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.types import RegClass
from repro.lifetimes.intervals import compute_lifetimes
from repro.target import alpha

G = RegClass.GPR


def build_figure1() -> Function:
    """The Figure 1 CFG: B1 -> {B2, B3} -> B4 with T1..T4's reference
    pattern from the paper."""
    fn = Function("figure1")
    b = FunctionBuilder(fn)
    b.new_block("B1")
    t1, t2, t3, t4 = (b.temp(G, f"T{i}") for i in (1, 2, 3, 4))
    b.li(1, dst=t1)          # (setup so T1 has a value)
    b.li(2, dst=t2)          # T2 <- ..
    b.print_(t1)             # .. <- T1
    b.li(4, dst=t4)          # T4 <- ..
    b.br(t2, "B2", "B3")
    b.new_block("B2")
    b.mov(t2, dst=t3)        # T3 <- T2
    b.print_(t3)             # .. <- T3
    b.li(1, dst=t1)          # T1 <- ..
    b.li(5, dst=t4)          # T4 <- ..
    b.jmp("B4")
    b.new_block("B3")
    b.print_(t1)             # .. <- T1
    b.print_(t4)             # .. <- T4
    b.li(6, dst=t4)          # T4 <- ..
    b.jmp("B4")
    b.new_block("B4")
    b.print_(t1)             # .. <- T1
    b.print_(t4)             # .. <- T4
    b.ret(t4)
    return fn


def main() -> None:
    fn = build_figure1()
    table = compute_lifetimes(fn, alpha())

    print("Linear block layout and point spans:")
    for block in fn.blocks:
        start, end = table.block_span[block.label]
        print(f"  {block.label}: points [{start:2d}, {end:2d})")

    width = table.max_point
    print("\nLifetime timelines ('#' live, '.' hole):")
    header = "        " + "".join(
        "|" if any(span[0] == p for span in table.block_span.values()) else " "
        for p in range(width))
    print(header)
    for temp in sorted(table.temps, key=lambda t: t.name or ""):
        lifetime = table.temps[temp]
        cells = []
        for point in range(width):
            if lifetime.alive_at(point):
                cells.append("#")
            elif lifetime.in_hole(point):
                cells.append(".")
            else:
                cells.append(" ")
        print(f"  {str(temp):6s}" + "".join(cells))

    print("\nHoles:")
    for temp in sorted(table.temps, key=lambda t: t.name or ""):
        holes = table.temps[temp].holes()
        rendered = ", ".join(str(h) for h in holes) or "(none)"
        print(f"  {temp}: {rendered}")

    t3 = next(t for t in table.temps if t.name == "T3")
    t1 = next(t for t in table.temps if t.name == "T1")
    t3_life = table.temps[t3]
    if any(h.start <= t3_life.start and t3_life.end <= h.end
           for h in table.temps[t1].holes()):
        print("\nT3's whole lifetime fits inside a hole of T1 -> "
              "both can share one register (the figure's point).")


if __name__ == "__main__":
    main()
