"""Legacy setuptools shim (the offline environment lacks the `wheel`
package, so PEP 660 editable installs cannot build); metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
