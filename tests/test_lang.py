"""Frontend tests: lexer, parser, sema, and lowering-by-execution."""

import pytest

from repro.lang import compile_minic, parse, tokenize
from repro.lang.lexer import LexError
from repro.lang.lower import LoweringError
from repro.lang.parser import ParseError
from repro.lang.sema import SemaError, check
from repro.ir.validate import validate_module
from repro.sim import simulate
from repro.target import tiny


def run(source: str, machine=None):
    machine = machine or tiny(8, 8)
    module = compile_minic(source, machine)
    validate_module(module)
    return simulate(module, machine)


class TestLexer:
    def test_token_kinds(self):
        toks = tokenize("func int x1 = 3 + 4.5; // comment\nwhile")
        kinds = [(t.kind, t.text) for t in toks]
        assert ("kw", "func") in kinds
        assert ("ident", "x1") in kinds
        assert ("int", "3") in kinds
        assert ("float", "4.5") in kinds
        assert kinds[-1] == ("eof", "")
        assert not any(text == "comment" for _, text in kinds)

    def test_two_char_operators(self):
        toks = tokenize("<= >= == != && ||")
        assert [t.text for t in toks[:-1]] == ["<=", ">=", "==", "!=",
                                               "&&", "||"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 4]

    def test_lex_error(self):
        with pytest.raises(LexError, match="line 2"):
            tokenize("ok\n@")

    def test_scientific_floats(self):
        toks = tokenize("1e3 2.5e-2")
        assert [t.kind for t in toks[:-1]] == ["float", "float"]


class TestParser:
    def test_precedence(self):
        # 2 + 3 * 4 == 14, not 20; comparisons bind looser.
        out = run("func int main() { print 2 + 3 * 4; "
                  "print 1 + 1 == 2; return 0; }")
        assert out.output == [14, 1]

    def test_parenthesized_override(self):
        out = run("func int main() { print (2 + 3) * 4; return 0; }")
        assert out.output == [20]

    def test_else_if_chain(self):
        src = """
        func int classify(int x) {
          if (x < 0) { return 0 - 1; }
          else if (x == 0) { return 0; }
          else { return 1; }
        }
        func int main() {
          print classify(0 - 5); print classify(0); print classify(9);
          return 0;
        }
        """
        assert run(src).output == [-1, 0, 1]

    def test_parse_errors(self):
        for bad in (
            "func int main() { return 0 }",           # missing ;
            "func main() { }",                        # missing type
            "global int a[]; func int main(){return 0;}",
            "func int main() { int = 3; return 0; }",
        ):
            with pytest.raises(ParseError):
                parse(bad)

    def test_for_with_empty_sections(self):
        src = """
        func int main() {
          int n = 0;
          for (; n < 3;) { n = n + 1; }
          print n;
          return 0;
        }
        """
        assert run(src).output == [3]


class TestSema:
    def check_fails(self, src, pattern):
        with pytest.raises(SemaError, match=pattern):
            check(parse(src))

    def test_undeclared_variable(self):
        self.check_fails("func int main() { return x; }", "undeclared")

    def test_duplicate_declaration(self):
        self.check_fails(
            "func int main() { int x = 1; int x = 2; return x; }",
            "duplicate")

    def test_shadowing_in_inner_scope_allowed(self):
        src = """
        func int main() {
          int x = 1;
          if (x == 1) { int x = 2; print x; }
          print x;
          return 0;
        }
        """
        assert run(src).output == [2, 1]

    def test_float_to_int_requires_cast(self):
        self.check_fails("func int main() { int x = 1.5; return x; }",
                         "cannot use float")

    def test_int_to_float_is_implicit(self):
        assert run("func int main() { float f = 3; print f; return 0; }"
                   ).output == [3.0]

    def test_modulo_is_integer_only(self):
        self.check_fails("func int main() { print 1.5 % 2.0; return 0; }",
                         "needs ints")

    def test_condition_must_be_int(self):
        self.check_fails("func int main() { if (1.0) { } return 0; }",
                         "must be int")

    def test_void_as_value_rejected(self):
        self.check_fails(
            "func void f() { return; } "
            "func int main() { int x = f(); return x; }",
            "used as a value")

    def test_arity_checked(self):
        self.check_fails(
            "func int f(int a) { return a; } "
            "func int main() { return f(1, 2); }",
            "takes 1 arguments")

    def test_unknown_function(self):
        self.check_fails("func int main() { return g(); }", "unknown function")

    def test_main_required(self):
        self.check_fails("func int f() { return 0; }", "no 'main'")

    def test_unknown_array(self):
        self.check_fails("func int main() { return a[0]; }", "unknown array")

    def test_return_type_checked(self):
        self.check_fails("func void f() { return 3; } "
                         "func int main() { return 0; }",
                         "returns a value")


class TestExecution:
    def test_recursion(self):
        src = """
        func int fib(int n) {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        func int main() { print fib(12); return 0; }
        """
        assert run(src).output == [144]

    def test_global_arrays_and_loops(self):
        src = """
        global int squares[10];
        func int main() {
          for (int i = 0; i < 10; i = i + 1) { squares[i] = i * i; }
          int total = 0;
          for (int i = 0; i < 10; i = i + 1) { total = total + squares[i]; }
          print total;
          return total;
        }
        """
        assert run(src).output == [285]

    def test_float_arithmetic_and_casts(self):
        src = """
        func int main() {
          float x = 7.0;
          float y = 2.0;
          print x / y;
          print int(x / y);
          print float(3) * 0.5;
          return 0;
        }
        """
        assert run(src).output == [3.5, 3, 1.5]

    def test_logicals_are_normalized(self):
        src = """
        func int main() {
          int a = 7;
          int b = 0;
          print a && a;   // 1, not 7
          print a || b;
          print !a;
          print !(a && b);
          return 0;
        }
        """
        assert run(src).output == [1, 1, 0, 1]

    def test_implicit_return_values(self):
        src = """
        func int weird(int x) { if (x > 0) { return 1; } }
        func int main() { print weird(1); print weird(0 - 1); return 0; }
        """
        assert run(src).output == [1, 0]

    def test_unreachable_code_after_return_dropped(self):
        src = """
        func int main() { return 5; print 99; }
        """
        out = run(src)
        assert out.output == []
        assert out.result == 5

    def test_mixed_class_call(self):
        src = """
        func float scale(int n, float f) { return float(n) * f; }
        func int main() { print scale(4, 2.5); return 0; }
        """
        assert run(src).output == [10.0]

    def test_too_many_params_for_machine(self):
        src = ("func int f(int a, int b, int c) { return a + b + c; } "
               "func int main() { return f(1, 2, 3); }")
        with pytest.raises(LoweringError, match="parameters"):
            compile_minic(src, tiny(8, 8))  # tiny has 2 param regs
