"""Crash safety and multi-writer durability of the result store.

The allocation server (docs/SERVING.md) made these paths load-bearing:
a long-running service and the CLI now routinely share one store
directory, and a crashed soak run must never poison the cache that
survives it.  These tests pin the contract:

* ``index.json`` is written atomically and a corrupt/truncated/garbage
  index is rebuilt from the segments on open — never trusted, never
  fatal;
* a torn final JSONL line (a writer killed mid-append) is skipped with
  a warning, and committed records before it still load;
* ``runs.jsonl`` appends re-align after a torn tail instead of fusing
  two manifests into one unparseable line;
* concurrent processes appending to one store serialize through the
  advisory lock: unique run ids, unique seqs, cleanly parseable
  segments;
* ``kill -9`` mid-run loses nothing that ``finish_run`` committed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import pytest

from repro.results.store import (CellKey, ResultStore, atomic_write_json,
                                 read_jsonl)

KEY_A = CellKey(workload="analog:wc", allocator="second-chance")
KEY_B = CellKey(workload="analog:sort", allocator="coloring")


def _commit(root, key, code_hash="h1", data=None, label="t"):
    store = ResultStore(root)
    store.begin_run(label)
    store.put(key, code_hash, data if data is not None else {"x": 1})
    store.finish_run()
    return store


# ----------------------------------------------------------------------
# index.json: atomic writes, rebuild-not-raise on corruption.
# ----------------------------------------------------------------------
def test_index_written_atomically(tmp_path):
    _commit(tmp_path, KEY_A)
    index = tmp_path / "index.json"
    assert index.is_file()
    doc = json.loads(index.read_text())
    assert doc["records"] == 1 and KEY_A.ident() in doc["cells"]
    # No tempfile droppings survive a successful replace.
    assert not list(tmp_path.glob("index.json.*"))


@pytest.mark.parametrize("corruption", [
    "garbage not json {{{",
    "",                                         # truncated to nothing
    '{"schema": 1, "cells": {"half":',          # torn mid-write
    "[1, 2, 3]",                                # wrong shape entirely
])
def test_corrupt_index_is_rebuilt_from_segments(tmp_path, corruption):
    _commit(tmp_path, KEY_A, data={"x": 41})
    (tmp_path / "index.json").write_text(corruption)
    with pytest.warns(UserWarning, match="rebuilding from segments"):
        reopened = ResultStore(tmp_path)
    # The records were never at risk...
    assert reopened.lookup(KEY_A, "h1").data == {"x": 41}
    assert reopened.metrics.get("results.index.rebuilt") == 1
    # ...and the snapshot is healthy again for external readers.
    doc = json.loads((tmp_path / "index.json").read_text())
    assert doc["cells"][KEY_A.ident()]["seq"] == 1


def test_stale_index_is_refreshed_on_open(tmp_path):
    _commit(tmp_path, KEY_A)
    atomic_write_json(tmp_path / "index.json",
                      {"schema": 1, "records": 0, "runs": 0, "cells": {}})
    with pytest.warns(UserWarning):
        ResultStore(tmp_path)
    doc = json.loads((tmp_path / "index.json").read_text())
    assert KEY_A.ident() in doc["cells"]


# ----------------------------------------------------------------------
# Torn JSONL tails: skip-and-warn, never raise.
# ----------------------------------------------------------------------
def test_torn_segment_tail_is_skipped(tmp_path):
    _commit(tmp_path, KEY_A, data={"x": 1})
    _commit(tmp_path, KEY_B, data={"x": 2})
    segments = sorted((tmp_path / "segments").glob("seg-*.jsonl"))
    with open(segments[-1], "a") as fh:
        fh.write('{"seq": 99, "ident": "half-a-record...')  # no newline
    with pytest.warns(UserWarning, match="torn"):
        reopened = ResultStore(tmp_path)
    assert reopened.lookup(KEY_A, "h1").data == {"x": 1}
    assert reopened.lookup(KEY_B, "h1").data == {"x": 2}
    assert reopened.metrics.get("results.load.torn_lines") == 1


def test_truncated_final_line_is_skipped(tmp_path):
    store = ResultStore(tmp_path)
    store.begin_run("two")
    store.put(KEY_A, "h1", {"x": 1})
    store.put(KEY_B, "h1", {"x": 2})
    store.finish_run()
    segment = next((tmp_path / "segments").glob("seg-*.jsonl"))
    raw = segment.read_bytes()
    segment.write_bytes(raw[:-7])  # chop mid-way through the last record
    # The chop also makes index.json stale, so the reopen both skips the
    # torn line and rebuilds the index — expect the pair.
    with pytest.warns(UserWarning) as caught:
        reopened = ResultStore(tmp_path)
    assert any("torn" in str(w.message) for w in caught)
    assert reopened.lookup(KEY_A, "h1") is not None
    assert reopened.peek(KEY_B) is None  # uncommitted line is simply gone


def test_runs_append_realigns_after_torn_tail(tmp_path):
    _commit(tmp_path, KEY_A, label="first")
    runs = tmp_path / "runs.jsonl"
    runs.write_bytes(runs.read_bytes() + b'{"run": "r9999", "half')
    with pytest.warns(UserWarning, match="torn"):
        _commit(tmp_path, KEY_B, label="second")
    # The torn tail is still skipped, but the new manifest landed on its
    # own line instead of fusing onto the garbage and vanishing with it.
    with pytest.warns(UserWarning, match="torn"):
        docs = list(read_jsonl(runs))
    assert [d["label"] for d in docs] == ["first", "second"]
    with pytest.warns(UserWarning, match="torn"):
        assert [d["label"] for d in ResultStore(tmp_path).runs()] \
            == ["first", "second"]


def test_read_jsonl_skips_interior_garbage_with_warning(tmp_path):
    path = tmp_path / "f.jsonl"
    path.write_text('{"a": 1}\nnot json\n{"b": 2}\n')
    with pytest.warns(UserWarning, match="torn/garbage"):
        docs = list(read_jsonl(path))
    assert docs == [{"a": 1}, {"b": 2}]


# ----------------------------------------------------------------------
# Concurrent writers.
# ----------------------------------------------------------------------
_APPENDER = """\
import sys
sys.path.insert(0, "src")
from repro.results.store import CellKey, ResultStore
root, worker, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
for i in range(count):
    store = ResultStore(root)
    store.begin_run(label=f"w{worker}")
    key = CellKey(workload=f"analog:w{worker}-{i}", allocator="second-chance")
    store.put(key, "h", {"worker": worker, "i": i})
    store.finish_run()
    print(key.ident(), flush=True)
"""


def test_multiprocess_appends_do_not_interleave(tmp_path):
    repo = Path(__file__).resolve().parent.parent
    procs = [subprocess.Popen(
        [sys.executable, "-c", _APPENDER, str(tmp_path), str(w), "4"],
        cwd=repo, stdout=subprocess.PIPE, text=True) for w in range(3)]
    outs = [p.communicate(timeout=120)[0] for p in procs]
    assert all(p.returncode == 0 for p in procs)
    committed = [line for out in outs for line in out.splitlines()]
    assert len(committed) == 12

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # no torn lines anywhere
        store = ResultStore(tmp_path)
    records = list(store.iter_latest())
    assert {r.ident for r in records} == set(committed)
    # Seqs and run ids are globally unique despite three writers.
    seqs = sorted(r.seq for r in records)
    assert seqs == list(range(1, 13))
    assert len({doc["run"] for doc in store.runs()}) == 12
    # Every segment parses cleanly line by line.
    for segment in (tmp_path / "segments").glob("seg-*.jsonl"):
        for line in segment.read_text().splitlines():
            json.loads(line)


def test_kill9_mid_run_loses_no_committed_cells(tmp_path):
    """SIGKILL a committing writer; every cell it reported as committed
    must survive, and the store must reopen without raising."""
    repo = Path(__file__).resolve().parent.parent
    proc = subprocess.Popen(
        [sys.executable, "-c", _APPENDER, str(tmp_path), "k", "200"],
        cwd=repo, stdout=subprocess.PIPE, text=True)
    committed: list[str] = []
    try:
        while len(committed) < 5:
            line = proc.stdout.readline()
            if not line:
                pytest.fail("writer exited before committing anything")
            committed.append(line.strip())
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        # Drain whatever made it out of the pipe before the kill landed.
        committed += [ln.strip() for ln in proc.stdout.read().splitlines()]
    finally:
        proc.stdout.close()
        if proc.poll() is None:  # pragma: no cover
            proc.kill()
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")  # a torn tail is fine; raising is not
        store = ResultStore(tmp_path)
    idents = {r.ident for r in store.iter_latest()}
    assert set(committed) <= idents
    # And the store is fully usable for the next writer.
    _commit(tmp_path, KEY_A)
    assert ResultStore(tmp_path).peek(KEY_A) is not None


def test_begin_run_sees_other_processes_records(tmp_path):
    a = ResultStore(tmp_path)
    _commit(tmp_path, KEY_A, data={"x": 7})  # a second, concurrent opener
    assert a.peek(KEY_A) is None             # not visible yet...
    a.begin_run("later")                     # ...refreshes under the lock
    try:
        assert a.lookup(KEY_A, "h1").data == {"x": 7}
    finally:
        a.abort_run()


def test_abort_run_releases_lock_and_keeps_no_manifest(tmp_path):
    store = ResultStore(tmp_path)
    store.begin_run("doomed")
    store.put(KEY_A, "h1", {"x": 1})
    store.abort_run()
    assert store.runs() == []
    # The lock is free again: a fresh begin_run must not deadlock.
    run_id = store.begin_run("next")
    store.finish_run()
    assert run_id != ""


_KEY_STABILITY_PROBE = """\
import json, sys
sys.path.insert(0, "src")
from repro.results.store import CellKey
key = CellKey(workload="serve:abc123", allocator="coloring",
              machine="tiny:6x6", context="remat", kind="serve")
print(json.dumps(key.ident()))
"""


def test_serve_cell_ident_stable_across_hashseed():
    repo = Path(__file__).resolve().parent.parent
    outs = []
    for seed in ("0", "424242"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        proc = subprocess.run([sys.executable, "-c", _KEY_STABILITY_PROBE],
                              capture_output=True, text=True, env=env,
                              cwd=repo)
        assert proc.returncode == 0, proc.stderr
        outs.append(proc.stdout)
    assert outs[0] == outs[1]
