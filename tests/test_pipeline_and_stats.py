"""The pipeline driver, allocation stats, and the reporting helpers."""

import pytest

from repro.allocators import SecondChanceBinpacking
from repro.allocators.base import SpillSlots, eviction_priority
from repro.ir.instr import SpillKind, SpillPhase
from repro.ir.printer import print_module
from repro.ir.temp import StackSlot, Temp
from repro.ir.types import RegClass
from repro.lang import compile_minic
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.stats.report import format_table
from repro.stats.spill import FIGURE3_CATEGORIES, spill_breakdown
from repro.target import tiny

G = RegClass.GPR

SRC = """
func int helper(int x) { return x * 2; }
func int main() {
  int total = 0;
  for (int i = 0; i < 5; i = i + 1) { total = total + helper(i); }
  print total;
  return total;
}
"""


class TestPipeline:
    def test_original_module_is_untouched(self, tiny_machine):
        module = compile_minic(SRC, tiny_machine)
        before = print_module(module)
        run_allocator(module, SecondChanceBinpacking(), tiny_machine)
        assert print_module(module) == before

    def test_stats_populated(self, tiny_machine):
        module = compile_minic(SRC, tiny_machine)
        result = run_allocator(module, SecondChanceBinpacking(), tiny_machine)
        stats = result.stats
        assert stats.allocator == "second-chance binpacking"
        assert stats.alloc_seconds > 0
        assert set(stats.candidates) == {"helper", "main"}
        assert stats.total_candidates() == sum(stats.candidates.values())
        assert all(v >= 0 for v in stats.callee_saved_used.values())

    def test_dce_and_peephole_counted(self, tiny_machine):
        source = "func int main() { int dead = 1 + 2; print 7; return 0; }"
        module = compile_minic(source, tiny_machine)
        result = run_allocator(module, SecondChanceBinpacking(), tiny_machine)
        assert result.dce_removed >= 2  # the adds/li chain for `dead`
        assert simulate(result.module, tiny_machine).output == [7]

    def test_pipeline_can_skip_stages(self, tiny_machine):
        module = compile_minic(SRC, tiny_machine)
        result = run_allocator(module, SecondChanceBinpacking(), tiny_machine,
                               dce=False, peephole=False)
        assert result.dce_removed == 0
        assert result.moves_removed == 0
        assert simulate(result.module, tiny_machine).output == [20]


class TestSpillSlots:
    def test_home_is_stable_and_class_tagged(self):
        slots = SpillSlots()
        t_int = Temp(G, 0)
        t_float = Temp(RegClass.FPR, 1)
        home = slots.home(t_int)
        assert slots.home(t_int) is home
        assert home.regclass is G
        assert slots.home(t_float).regclass is RegClass.FPR
        assert len(slots) == 2
        assert set(slots.spilled_temps()) == {t_int, t_float}

    def test_fresh_slots_are_distinct(self):
        slots = SpillSlots()
        a = slots.fresh(G)
        b = slots.fresh(G)
        assert a != b


class TestEvictionPriority:
    def test_farther_reference_means_lower_priority(self, tiny_machine):
        module = compile_minic(SRC, tiny_machine)
        from repro.allocators.base import SharedAnalyses
        fn = module.functions["main"]
        shared = SharedAnalyses.build(fn, tiny_machine)
        table = shared.lifetimes
        temps = [t for t in table.temps if table.ref_points[t]]
        t = temps[0]
        first_ref = table.ref_points[t][0]
        early = eviction_priority(table, t, max(first_ref - 1, 0))
        nothing_left = eviction_priority(table, t, 10 ** 9)
        assert early > nothing_left == 0.0


class TestSpillBreakdown:
    def test_breakdown_matches_outcome(self, tiny_machine):
        source = """
        func int main() {
          int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
          int f = 6; int g = 7; int h = 8;
          print a + b + c + d + e + f + g + h;
          print a; print h;
          return 0;
        }
        """
        module = compile_minic(source, tiny(4, 4))
        result = run_allocator(module, SecondChanceBinpacking(), tiny(4, 4))
        outcome = simulate(result.module, tiny(4, 4))
        breakdown = spill_breakdown(outcome)
        assert breakdown.total_spill == outcome.spill_instructions
        assert breakdown.fraction() == outcome.spill_fraction()
        assert len(breakdown.counts) == len(FIGURE3_CATEGORIES) == 6
        for phase, kind in FIGURE3_CATEGORIES:
            assert breakdown.category(phase, kind) >= 0

    def test_normalization(self):
        from repro.stats.spill import SpillBreakdown
        a = SpillBreakdown((2, 2, 0, 0, 0, 0), 100)
        b = SpillBreakdown((1, 1, 0, 0, 0, 0), 100)
        assert b.normalized_to(a) == [0.25, 0.25, 0, 0, 0, 0]
        assert sum(a.normalized_to(a)) == pytest.approx(1.0)

    def test_normalized_to_zero_baseline_is_none(self):
        """A spill-free baseline has nothing to normalize against; the
        old ``or 1`` fallback silently reported absolute counts as
        ratios, which inflated spill-free rows in Figure 3."""
        from repro.stats.spill import SpillBreakdown
        empty = SpillBreakdown((0, 0, 0, 0, 0, 0), 100)
        spilled = SpillBreakdown((3, 1, 0, 0, 0, 0), 100)
        assert spilled.normalized_to(empty) is None
        assert empty.normalized_to(empty) is None
        # A non-zero baseline still yields ratios.
        assert spilled.normalized_to(spilled) is not None

    def test_remat_counts(self):
        from repro.stats.spill import REMAT_CATEGORIES, SpillBreakdown
        bd = SpillBreakdown((1, 2, 3, 0, 0, 0), 100, remat_counts=(4, 5))
        assert bd.remat == 9
        assert bd.total_spill == 6 + 9
        for (phase, kind), want in zip(REMAT_CATEGORIES, (4, 5)):
            assert bd.category(phase, kind) == want


class TestFormatTable:
    def test_alignment_and_rendering(self):
        text = format_table(
            ["name", "count", "ratio"],
            [["alpha", 12345, 1.0345], ["b", 7, 0.5]],
            title="Demo")
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "12,345" in text
        assert "1.034" in text or "1.035" in text
        # Header and rows align on the separator width.
        assert len(lines[2]) >= len(lines[1].rstrip()) - 2

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_numeric_column_detection_is_per_column(self):
        """A column is numeric only when *every* non-empty cell is — a
        digit-leading name like ``2nd-chance`` must not drag its column
        into right-alignment, while %/unit-suffixed numbers still count."""
        text = format_table(
            ["allocator", "spill%", "time"],
            [["2nd-chance", "3.20%", "1.5 ms"],
             ["coloring-x", "11.00%", "12.0 ms"]])
        lines = text.splitlines()
        # Column 1: left-aligned despite the leading digit.
        assert lines[2].startswith("2nd-chance")
        # Columns 2/3: right-aligned numbers (narrow cells padded left).
        assert "  3.20%" in lines[2]
        assert " 1.5 ms" in lines[2]

    def test_mixed_text_and_numbers_left_aligns(self):
        text = format_table(["k", "v"], [["a", 1], ["b", "n/a"]])
        # "n/a" makes the value column non-numeric -> left-aligned.
        assert text.splitlines()[2].startswith("a  1")

    def test_empty_cells_do_not_veto_numeric(self):
        text = format_table(["k", "v"], [["a", 7], ["b", ""], ["c", 123]])
        lines = text.splitlines()
        assert lines[2].startswith("a    7")  # right-aligned to width 3
