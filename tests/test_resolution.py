"""Resolution machinery: parallel-move sequentialization and placement.

The paper (Section 2.4): "we are careful to model the data movement
across the edge in a manner that produces the correct resolution
instructions in the semantically-correct order, even in the case where
two (or more) temporaries swap their allocated registers."
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocators.base import AllocationStats, SharedAnalyses, SpillSlots
from repro.allocators.binpack.resolution import (_place_batch, edge_traffic,
                                                 sequentialize_moves)
from repro.allocators.binpack.state import MEM, BlockRecord
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Op
from repro.ir.temp import PhysReg, Temp
from repro.ir.types import RegClass
from repro.spill import DEFAULT_CONTEXT, SpillCodeEmitter
from repro.target import tiny

G = RegClass.GPR
F = RegClass.FPR


def _emitter(stats):
    """A default-context emitter over an empty function: exactly the
    slot-assignment + accounting behaviour the old bare SpillSlots had."""
    return SpillCodeEmitter(Function("seq"), tiny(16, 16), DEFAULT_CONTEXT,
                            SpillSlots(), stats)


def execute_moves(instrs, initial):
    """Interpret the emitted loads/stores/moves over a register file."""
    regs = dict(initial)
    slots = {}
    for instr in instrs:
        if instr.op in (Op.MOV, Op.FMOV):
            regs[instr.defs[0]] = regs[instr.uses[0]]
        elif instr.op is Op.STS:
            slots[instr.slot] = regs[instr.uses[0]]
        elif instr.op is Op.LDS:
            regs[instr.defs[0]] = slots[instr.slot]
        else:  # pragma: no cover
            raise AssertionError(instr)
    return regs


def check_permutation(mapping):
    """``mapping``: dst_index -> src_index over GPRs."""
    temps = {}
    moves = []
    for i, (dst, src) in enumerate(mapping.items()):
        temp = Temp(G, i)
        moves.append((PhysReg(G, src), PhysReg(G, dst), temp))
    stats = AllocationStats("test")
    instrs = sequentialize_moves(moves, _emitter(stats), stats)
    initial = {PhysReg(G, i): f"v{i}" for i in range(16)}
    final = execute_moves(instrs, initial)
    for dst, src in mapping.items():
        assert final[PhysReg(G, dst)] == f"v{src}", (mapping, instrs)
    return instrs


class TestSequentializeMoves:
    def test_independent_moves(self):
        check_permutation({1: 0, 3: 2})

    def test_chain(self):
        # 0 -> 1 -> 2 must emit 2<-1 before 1<-0.
        instrs = check_permutation({2: 1, 1: 0})
        assert all(i.op is Op.MOV for i in instrs)
        assert len(instrs) == 2

    def test_swap_uses_memory_detour(self):
        instrs = check_permutation({0: 1, 1: 0})
        ops = [i.op for i in instrs]
        assert Op.STS in ops and Op.LDS in ops
        assert len(instrs) == 3  # store, move, load

    def test_three_cycle(self):
        instrs = check_permutation({1: 0, 2: 1, 0: 2})
        assert len(instrs) == 4  # one detour + two moves

    def test_two_disjoint_swaps(self):
        check_permutation({0: 1, 1: 0, 2: 3, 3: 2})

    def test_self_moves_dropped(self):
        stats = AllocationStats("test")
        reg = PhysReg(G, 1)
        assert sequentialize_moves([(reg, reg, Temp(G, 0))],
                                   _emitter(stats), stats) == []

    def test_float_moves_use_fmov(self):
        stats = AllocationStats("test")
        moves = [(PhysReg(F, 0), PhysReg(F, 1), Temp(F, 0))]
        instrs = sequentialize_moves(moves, _emitter(stats), stats)
        assert [i.op for i in instrs] == [Op.FMOV]

    @pytest.mark.parametrize("perm", list(itertools.permutations(range(4))))
    def test_all_permutations_of_four(self, perm):
        mapping = {dst: src for dst, src in enumerate(perm)}
        check_permutation(mapping)

    @given(st.permutations(list(range(8))))
    @settings(max_examples=60, deadline=None)
    def test_random_permutations(self, perm):
        mapping = {dst: src for dst, src in enumerate(perm)}
        check_permutation(mapping)

    @given(st.dictionaries(st.integers(0, 11), st.integers(0, 11),
                           max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_src_maps(self, mapping):
        # Destinations are dict keys (distinct); sources may repeat only
        # if distinct values... filter: sources must be distinct too, as
        # in real resolution (one value per register at the predecessor).
        if len(set(mapping.values())) != len(mapping):
            return
        check_permutation(mapping)

    def test_stats_are_counted(self):
        stats = AllocationStats("test")
        moves = [(PhysReg(G, 0), PhysReg(G, 1), Temp(G, 0)),
                 (PhysReg(G, 1), PhysReg(G, 0), Temp(G, 1))]
        sequentialize_moves(moves, _emitter(stats), stats)
        from repro.ir.instr import SpillPhase
        assert stats.spill_static[(SpillPhase.RESOLVE, "store")] == 1
        assert stats.spill_static[(SpillPhase.RESOLVE, "load")] == 1
        assert stats.spill_static[(SpillPhase.RESOLVE, "move")] == 1

    def test_two_swap_cycles_plus_chain_on_one_edge(self):
        """One edge carrying two independent swaps and a chain: each
        cycle takes its own memory detour, the chain stays a plain move,
        and the deferred cycle-closing loads drain after every move."""
        mapping = {0: 1, 1: 0,  # swap cycle A
                   2: 3, 3: 2,  # swap cycle B
                   5: 4}        # independent chain 4 -> 5
        instrs = check_permutation(mapping)  # asserts final register file
        ops = [i.op for i in instrs]
        assert ops.count(Op.STS) == 2  # one detour store per cycle
        assert ops.count(Op.LDS) == 2
        assert ops.count(Op.MOV) == 3  # one surviving move per cycle + chain
        # The detour loads complete each cycle only after every pending
        # move has drained, so every store precedes every load.
        assert (max(i for i, op in enumerate(ops) if op is Op.STS)
                < min(i for i, op in enumerate(ops) if op is Op.LDS))
        # The two detours use distinct homes (one per cycle's temp).
        stored_slots = [i.slot for i in instrs if i.op is Op.STS]
        assert len(set(stored_slots)) == 2


class _LivenessStub:
    def __init__(self, live_in):
        self._live_in = live_in

    def live_in_temps(self, label):
        return self._live_in[label]


class TestEdgeTraffic:
    def test_missing_boundary_records_default_to_memory(self):
        """A temp live into ``succ`` that the scan never placed at one of
        the boundaries is carried via its memory home, not a KeyError."""
        t0, t1, t2 = Temp(G, 0), Temp(G, 1), Temp(G, 2)
        records = {
            "pred": BlockRecord(bottom_loc={t0: PhysReg(G, 3)}),
            "succ": BlockRecord(top_loc={t0: PhysReg(G, 4),
                                         t1: PhysReg(G, 5)}),
        }
        liveness = _LivenessStub({"succ": [t0, t1, t2]})
        traffic = dict((temp, (src, dst)) for temp, src, dst in
                       edge_traffic(records, liveness, "pred", "succ"))
        assert traffic[t0] == (PhysReg(G, 3), PhysReg(G, 4))
        assert traffic[t1] == (MEM, PhysReg(G, 5))  # no bottom record
        assert traffic[t2] == (MEM, MEM)  # no record at either boundary


def _diamond():
    """entry -> (left | right) -> join, with join having two preds."""
    fn = Function("f")
    b = FunctionBuilder(fn)
    b.new_block("entry")
    cond = b.li(1)
    b.br(cond, "left", "right")
    b.new_block("left")
    b.jmp("join")
    b.new_block("right")
    b.jmp("join")
    b.new_block("join")
    b.ret()
    shared = SharedAnalyses.build(fn, tiny(4, 4))
    return fn, shared


def _mov(dst, src):
    return Instr(Op.MOV, defs=[PhysReg(G, dst)], uses=[PhysReg(G, src)])


class TestPlaceBatch:
    def test_clean_bottom_placement(self):
        fn, shared = _diamond()
        _place_batch(fn, shared, "left", "join", [_mov(1, 0)], {})
        left = fn.block("left")
        assert [i.op for i in left.instrs] == [Op.MOV, Op.JMP]
        assert len(fn.blocks) == 4  # no split needed

    def test_terminator_reading_batch_write_forces_split(self):
        fn, shared = _diamond()
        fn.block("left").terminator.uses.append(PhysReg(G, 1))
        _place_batch(fn, shared, "left", "join", [_mov(1, 0)], {})
        assert len(fn.blocks) == 5  # split block carries the batch
        assert fn.block("left").instrs[0].op is not Op.MOV

    def test_terminator_defining_batch_read_forces_split(self):
        """Bottom code runs *before* the terminator, so a batch reading a
        register the terminator defines would see the stale value."""
        fn, shared = _diamond()
        fn.block("left").terminator.defs.append(PhysReg(G, 2))
        _place_batch(fn, shared, "left", "join", [_mov(3, 2)], {})
        assert len(fn.blocks) == 5
        assert fn.block("left").instrs[0].op is not Op.MOV

    def test_stacked_batches_with_conflict_force_split(self):
        """A second batch at the same bottom must not observe registers
        the first batch wrote."""
        fn, shared = _diamond()
        bottom_written = {}
        _place_batch(fn, shared, "left", "join", [_mov(1, 0)], bottom_written)
        assert len(fn.blocks) == 4
        # Second batch reads r1, which the first batch just wrote.
        _place_batch(fn, shared, "left", "join", [_mov(2, 1)], bottom_written)
        assert len(fn.blocks) == 5
        left = fn.block("left")
        assert sum(1 for i in left.instrs if i.op is Op.MOV) == 1

    def test_stacked_batches_without_conflict_share_the_bottom(self):
        fn, shared = _diamond()
        bottom_written = {}
        _place_batch(fn, shared, "left", "join", [_mov(1, 0)], bottom_written)
        _place_batch(fn, shared, "left", "join", [_mov(3, 2)], bottom_written)
        assert len(fn.blocks) == 4  # both batches fit at left's bottom
        left = fn.block("left")
        assert sum(1 for i in left.instrs if i.op is Op.MOV) == 2

    def test_single_pred_successor_gets_top_placement(self):
        fn, shared = _diamond()
        # left has exactly one predecessor (entry), so the batch hoists
        # to its top and no placement hazard can arise.
        _place_batch(fn, shared, "entry", "left", [_mov(1, 0)], {})
        assert fn.block("left").instrs[0].op is Op.MOV
        assert len(fn.blocks) == 4
