"""Resolution machinery: parallel-move sequentialization and placement.

The paper (Section 2.4): "we are careful to model the data movement
across the edge in a manner that produces the correct resolution
instructions in the semantically-correct order, even in the case where
two (or more) temporaries swap their allocated registers."
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocators.base import AllocationStats, SpillSlots
from repro.allocators.binpack.resolution import sequentialize_moves
from repro.ir.instr import Op
from repro.ir.temp import PhysReg, Temp
from repro.ir.types import RegClass

G = RegClass.GPR
F = RegClass.FPR


def execute_moves(instrs, initial):
    """Interpret the emitted loads/stores/moves over a register file."""
    regs = dict(initial)
    slots = {}
    for instr in instrs:
        if instr.op in (Op.MOV, Op.FMOV):
            regs[instr.defs[0]] = regs[instr.uses[0]]
        elif instr.op is Op.STS:
            slots[instr.slot] = regs[instr.uses[0]]
        elif instr.op is Op.LDS:
            regs[instr.defs[0]] = slots[instr.slot]
        else:  # pragma: no cover
            raise AssertionError(instr)
    return regs


def check_permutation(mapping):
    """``mapping``: dst_index -> src_index over GPRs."""
    temps = {}
    moves = []
    for i, (dst, src) in enumerate(mapping.items()):
        temp = Temp(G, i)
        moves.append((PhysReg(G, src), PhysReg(G, dst), temp))
    stats = AllocationStats("test")
    instrs = sequentialize_moves(moves, SpillSlots(), stats)
    initial = {PhysReg(G, i): f"v{i}" for i in range(16)}
    final = execute_moves(instrs, initial)
    for dst, src in mapping.items():
        assert final[PhysReg(G, dst)] == f"v{src}", (mapping, instrs)
    return instrs


class TestSequentializeMoves:
    def test_independent_moves(self):
        check_permutation({1: 0, 3: 2})

    def test_chain(self):
        # 0 -> 1 -> 2 must emit 2<-1 before 1<-0.
        instrs = check_permutation({2: 1, 1: 0})
        assert all(i.op is Op.MOV for i in instrs)
        assert len(instrs) == 2

    def test_swap_uses_memory_detour(self):
        instrs = check_permutation({0: 1, 1: 0})
        ops = [i.op for i in instrs]
        assert Op.STS in ops and Op.LDS in ops
        assert len(instrs) == 3  # store, move, load

    def test_three_cycle(self):
        instrs = check_permutation({1: 0, 2: 1, 0: 2})
        assert len(instrs) == 4  # one detour + two moves

    def test_two_disjoint_swaps(self):
        check_permutation({0: 1, 1: 0, 2: 3, 3: 2})

    def test_self_moves_dropped(self):
        stats = AllocationStats("test")
        reg = PhysReg(G, 1)
        assert sequentialize_moves([(reg, reg, Temp(G, 0))],
                                   SpillSlots(), stats) == []

    def test_float_moves_use_fmov(self):
        stats = AllocationStats("test")
        moves = [(PhysReg(F, 0), PhysReg(F, 1), Temp(F, 0))]
        instrs = sequentialize_moves(moves, SpillSlots(), stats)
        assert [i.op for i in instrs] == [Op.FMOV]

    @pytest.mark.parametrize("perm", list(itertools.permutations(range(4))))
    def test_all_permutations_of_four(self, perm):
        mapping = {dst: src for dst, src in enumerate(perm)}
        check_permutation(mapping)

    @given(st.permutations(list(range(8))))
    @settings(max_examples=60, deadline=None)
    def test_random_permutations(self, perm):
        mapping = {dst: src for dst, src in enumerate(perm)}
        check_permutation(mapping)

    @given(st.dictionaries(st.integers(0, 11), st.integers(0, 11),
                           max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_src_maps(self, mapping):
        # Destinations are dict keys (distinct); sources may repeat only
        # if distinct values... filter: sources must be distinct too, as
        # in real resolution (one value per register at the predecessor).
        if len(set(mapping.values())) != len(mapping):
            return
        check_permutation(mapping)

    def test_stats_are_counted(self):
        stats = AllocationStats("test")
        moves = [(PhysReg(G, 0), PhysReg(G, 1), Temp(G, 0)),
                 (PhysReg(G, 1), PhysReg(G, 0), Temp(G, 1))]
        sequentialize_moves(moves, SpillSlots(), stats)
        from repro.ir.instr import SpillPhase
        assert stats.spill_static[(SpillPhase.RESOLVE, "store")] == 1
        assert stats.spill_static[(SpillPhase.RESOLVE, "load")] == 1
        assert stats.spill_static[(SpillPhase.RESOLVE, "move")] == 1
