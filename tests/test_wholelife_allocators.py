"""Two-pass binpacking and Poletto linear scan behaviour tests."""

import pytest

from repro.allocators import PolettoLinearScan, SecondChanceBinpacking, TwoPassBinpacking
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, SpillPhase
from repro.ir.module import Module
from repro.ir.types import RegClass
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.sim.machine import outputs_equal
from repro.target import tiny

G = RegClass.GPR


def call_loop_module(machine, n_live: int):
    """``n_live`` ints live across a call inside a loop — the Section 3.1
    wc scenario in miniature."""
    module = Module()
    helper = Function("io")
    hb = FunctionBuilder(helper)
    hb.new_block("entry")
    hb.ret()
    module.add_function(helper)
    fn = Function("main")
    b = FunctionBuilder(fn)
    b.new_block("entry")
    live = [b.li(i * 3 + 1) for i in range(n_live)]
    counter = b.li(4)
    b.jmp("head")
    b.new_block("head")
    b.br(b.slt(b.li(0), counter), "body", "out")
    b.new_block("body")
    b.call("io")
    # Each crossing value is read several times per iteration: a
    # register-resident copy amortizes, a memory-resident one reloads at
    # every use (the two-pass penalty of Section 3.1).
    acc = b.li(0)
    for v in live:
        acc = b.add(acc, v)
    for v in live:
        acc = b.xor(acc, v)
    for v in live:
        acc = b.sub(acc, v)
    b.print_(acc)
    b.mov(b.addi(counter, -1), dst=counter)
    b.jmp("head")
    b.new_block("out")
    b.ret()
    module.add_function(fn)
    return module


class TestTwoPass:
    def test_correct_on_call_loop(self):
        machine = tiny(6, 4)
        module = call_loop_module(machine, 5)
        reference = simulate(module, machine)
        result = run_allocator(module, TwoPassBinpacking(), machine)
        outcome = simulate(result.module, machine)
        assert outputs_equal(outcome.output, reference.output)

    def test_no_resolution_code_ever(self):
        """Whole-lifetime homes never disagree across edges."""
        machine = tiny(5, 4)
        module = call_loop_module(machine, 6)
        result = run_allocator(module, TwoPassBinpacking(), machine)
        assert not any(phase is SpillPhase.RESOLVE
                       for phase, _ in result.stats.spill_static)

    def test_second_chance_reloads_less_than_two_pass(self):
        """Two-pass reloads a memory-resident value at *every* use; second
        chance reloads once and stays resident until the next eviction
        ("we do not have to reload u if we make another reference to it in
        the near future", Section 2.3).  With each crossing value read
        three times per iteration, the load counts must separate."""
        machine = tiny(6, 4)
        module = call_loop_module(machine, 6)
        two_pass = run_allocator(module, TwoPassBinpacking(), machine)
        second = run_allocator(module, SecondChanceBinpacking(), machine)
        tp_out = simulate(two_pass.module, machine)
        sc_out = simulate(second.module, machine)
        assert outputs_equal(tp_out.output, sc_out.output)
        from repro.ir.instr import SpillKind
        tp_loads = tp_out.spill_counts.get((SpillPhase.EVICT, SpillKind.LOAD), 0)
        sc_loads = (sc_out.spill_counts.get((SpillPhase.EVICT, SpillKind.LOAD), 0)
                    + sc_out.spill_counts.get((SpillPhase.RESOLVE, SpillKind.LOAD), 0))
        assert sc_loads < tp_loads

    def test_stores_after_every_def_of_spilled(self):
        """Two-pass 'does not avoid unnecessary stores' (Section 3.1)."""
        machine = tiny(4, 4)
        module = Module()
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        vals = [b.li(i) for i in range(8)]
        acc = b.li(0)
        for v in vals:
            acc = b.add(acc, v)
        b.print_(acc)
        b.ret(acc)
        module.add_function(fn)
        result = run_allocator(module, TwoPassBinpacking(), machine)
        stores = result.stats.spill_static.get((SpillPhase.EVICT, "store"), 0)
        loads = result.stats.spill_static.get((SpillPhase.EVICT, "load"), 0)
        assert stores > 0 and loads > 0
        assert simulate(result.module, machine).output == [28]


class TestPoletto:
    def test_correct_under_pressure(self):
        machine = tiny(4, 4)
        module = call_loop_module(machine, 7)
        reference = simulate(module, machine)
        result = run_allocator(module, PolettoLinearScan(), machine)
        outcome = simulate(result.module, machine)
        assert outputs_equal(outcome.output, reference.output)

    def test_ignores_holes_entirely(self):
        """A temp with a huge hole still blocks its register for the whole
        interval: with one usable register and an interleaved pair, the
        Poletto allocator must spill where hole-aware binpacking neednt."""
        machine = tiny(4, 4)
        module = Module()
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        t1 = b.temp(G, "T1")
        b.li(5, dst=t1)
        b.print_(t1)
        fillers = [b.li(10 + i) for i in range(3)]
        for f in fillers:
            b.print_(f)
        b.li(6, dst=t1)  # T1 resumes after a long hole
        b.print_(t1)
        b.ret()
        module.add_function(fn)
        poletto = run_allocator(module, PolettoLinearScan(), machine)
        second = run_allocator(module, SecondChanceBinpacking(), machine)
        p_spill = sum(poletto.stats.spill_static.values())
        s_spill = sum(second.stats.spill_static.values())
        assert p_spill >= s_spill
        assert (simulate(poletto.module, machine).output
                == simulate(second.module, machine).output)

    def test_spills_longest_interval_first(self):
        """The furthest-ending active interval is demoted on pressure."""
        machine = tiny(4, 4)
        module = Module()
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        long_lived = b.li(999)           # ends at the very bottom
        shorts = [b.li(i) for i in range(5)]
        acc = b.li(0)
        for v in shorts:
            acc = b.add(acc, v)
        b.print_(acc)
        b.print_(long_lived)
        b.ret()
        module.add_function(fn)
        result = run_allocator(module, PolettoLinearScan(), machine)
        assert simulate(result.module, machine).output == [10, 999]
