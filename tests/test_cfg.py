"""CFG construction, traversal orders, edge splitting, dominators, loops."""

import networkx as nx
import pytest

from repro.cfg.cfg import CFG, split_edge
from repro.cfg.dominators import DominatorTree
from repro.cfg.loops import LoopInfo
from repro.cfg.order import reorder_reverse_postorder
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, make
from repro.ir.temp import Temp
from repro.ir.types import RegClass
from repro.ir.validate import validate_function

G = RegClass.GPR


def build_fn(edges: dict[str, list[str]], entry: str = "a") -> Function:
    """A function whose control flow matches ``edges`` (0/1/2 successors)."""
    fn = Function("f")
    order = [entry] + [label for label in edges if label != entry]
    cond = Temp(G, 0)
    for label in order:
        succs = edges[label]
        block = BasicBlock(label)
        if not succs:
            block.append(Instr(Op.RET))
        elif len(succs) == 1:
            block.append(make(Op.JMP, targets=[succs[0]]))
        else:
            block.append(Instr(Op.BR, uses=[cond], targets=list(succs)))
        fn.add_block(block)
    return fn


DIAMOND = {"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []}
LOOP = {"a": ["h"], "h": ["b", "x"], "b": ["h"], "x": []}
NESTED = {"a": ["h1"], "h1": ["h2", "x"], "h2": ["b", "h1"], "b": ["h2"],
          "x": []}


class TestCFG:
    def test_diamond_adjacency(self):
        cfg = CFG.build(build_fn(DIAMOND))
        assert cfg.succs["a"] == ["b", "c"]
        assert sorted(cfg.preds["d"]) == ["b", "c"]
        assert cfg.entry == "a"

    def test_parallel_edges_collapse(self):
        fn = build_fn({"a": ["b", "b"], "b": []})
        cfg = CFG.build(fn)
        assert cfg.succs["a"] == ["b"]
        assert cfg.preds["b"] == ["a"]

    def test_edges_enumeration(self):
        cfg = CFG.build(build_fn(DIAMOND))
        assert set(cfg.edges()) == {("a", "b"), ("a", "c"), ("b", "d"),
                                    ("c", "d")}

    def test_critical_edge_detection(self):
        # a->d is critical in: a has 2 succs, d has 2 preds.
        edges = {"a": ["b", "d"], "b": ["d"], "d": []}
        cfg = CFG.build(build_fn(edges))
        assert cfg.is_critical("a", "d")
        assert not cfg.is_critical("b", "d")

    def test_reachable_excludes_orphans(self):
        edges = {"a": ["b"], "b": [], "orphan": ["b"]}
        cfg = CFG.build(build_fn(edges))
        assert cfg.reachable() == {"a", "b"}

    def test_reverse_postorder_is_topological_on_dag(self):
        cfg = CFG.build(build_fn(DIAMOND))
        rpo = cfg.reverse_postorder()
        assert rpo[0] == "a"
        assert rpo.index("b") < rpo.index("d")
        assert rpo.index("c") < rpo.index("d")

    def test_postorder_visits_entry_last(self):
        cfg = CFG.build(build_fn(LOOP))
        assert cfg.postorder()[-1] == "a"


class TestSplitEdge:
    def test_split_rewires_terminator_and_maps(self):
        fn = build_fn({"a": ["b", "d"], "b": ["d"], "d": []})
        cfg = CFG.build(fn)
        new = split_edge(fn, cfg, "a", "d")
        validate_function(fn)
        assert fn.block("a").terminator.targets == ["b", new.label]
        assert cfg.succs["a"] == ["b", new.label]
        assert cfg.preds["d"] == [new.label, "b"] or set(cfg.preds["d"]) == {new.label, "b"}
        assert cfg.succs[new.label] == ["d"]
        # The new block holds only a jump, so code can go before it.
        assert new.terminator.op is Op.JMP

    def test_split_preserves_execution_paths(self):
        fn = build_fn(DIAMOND)
        cfg = CFG.build(fn)
        split_edge(fn, cfg, "a", "c")
        rebuilt = CFG.build(fn)
        assert "c" in {s for s in rebuilt.reachable()}


class TestDominators:
    @pytest.mark.parametrize("edges", [DIAMOND, LOOP, NESTED])
    def test_matches_networkx(self, edges):
        cfg = CFG.build(build_fn(edges))
        tree = DominatorTree.build(cfg)
        graph = nx.DiGraph()
        graph.add_nodes_from(edges)
        for src, dsts in edges.items():
            for dst in dsts:
                graph.add_edge(src, dst)
        expected = nx.immediate_dominators(graph, "a")
        for node in cfg.reachable():
            # (some networkx versions omit the start node from the map)
            assert tree.idom.get(node, node) == expected.get(node, node), node

    def test_dominates_is_reflexive_and_entry_dominates_all(self):
        cfg = CFG.build(build_fn(NESTED))
        tree = DominatorTree.build(cfg)
        for node in cfg.reachable():
            assert tree.dominates(node, node)
            assert tree.dominates("a", node)

    def test_dominators_of_chain(self):
        cfg = CFG.build(build_fn(NESTED))
        tree = DominatorTree.build(cfg)
        assert tree.dominators_of("b") == ["b", "h2", "h1", "a"]


class TestLoops:
    def test_single_loop_body_and_depth(self):
        info = LoopInfo.build(CFG.build(build_fn(LOOP)))
        assert len(info.loops) == 1
        loop = info.loops[0]
        assert loop.header == "h"
        assert loop.body == {"h", "b"}
        assert info.depth_of("b") == 1
        assert info.depth_of("x") == 0
        assert info.depth_of("a") == 0

    def test_nested_loops_have_additive_depth(self):
        info = LoopInfo.build(CFG.build(build_fn(NESTED)))
        assert info.depth_of("b") == 2
        assert info.depth_of("h2") == 2
        assert info.depth_of("h1") == 1
        assert info.depth_of("x") == 0

    def test_acyclic_graph_has_no_loops(self):
        info = LoopInfo.build(CFG.build(build_fn(DIAMOND)))
        assert info.loops == []
        assert all(d == 0 for d in info.depth.values())

    def test_contains(self):
        info = LoopInfo.build(CFG.build(build_fn(LOOP)))
        assert "b" in info.loops[0]
        assert "x" not in info.loops[0]


class TestReorder:
    def test_rpo_reorder_keeps_entry_and_all_blocks(self):
        fn = build_fn({"a": ["c"], "c": ["b"], "b": [], "orphan": []})
        reorder_reverse_postorder(fn)
        labels = [b.label for b in fn.blocks]
        assert labels[0] == "a"
        assert set(labels) == {"a", "b", "c", "orphan"}
        assert labels.index("c") < labels.index("b")
        assert labels[-1] == "orphan"  # unreachables last
