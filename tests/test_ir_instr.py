"""Unit tests for instructions: signatures, the checked constructor,
spill tagging, and operand rewriting."""

import pytest

from repro.ir.instr import OP_INFO, Instr, Op, SpillKind, SpillPhase, make
from repro.ir.temp import PhysReg, StackSlot, Temp
from repro.ir.types import RegClass

G = RegClass.GPR
F = RegClass.FPR


def t(i, cls=G):
    return Temp(cls, i)


class TestOpInfo:
    def test_every_opcode_has_a_signature(self):
        assert set(OP_INFO) == set(Op)

    def test_terminators(self):
        terminators = {op for op, info in OP_INFO.items() if info.terminator}
        assert terminators == {Op.JMP, Op.BR, Op.RET}

    def test_commutativity_flags(self):
        assert OP_INFO[Op.ADD].commutative
        assert not OP_INFO[Op.SUB].commutative
        assert OP_INFO[Op.FMUL].commutative
        assert not OP_INFO[Op.FDIV].commutative

    def test_float_compares_define_gprs(self):
        for op in (Op.FSLT, Op.FSLE, Op.FSEQ, Op.FSNE):
            info = OP_INFO[op]
            assert info.def_classes == (G,)
            assert info.use_classes == (F, F)


class TestMake:
    def test_simple_binop(self):
        instr = make(Op.ADD, defs=[t(0)], uses=[t(1), t(2)])
        assert instr.defs == [t(0)]
        assert instr.uses == [t(1), t(2)]
        assert not instr.is_terminator

    def test_wrong_def_count_rejected(self):
        with pytest.raises(ValueError, match="expected 1 defs"):
            make(Op.ADD, defs=[], uses=[t(1), t(2)])

    def test_wrong_use_count_rejected(self):
        with pytest.raises(ValueError, match="expected 2 uses"):
            make(Op.ADD, defs=[t(0)], uses=[t(1)])

    def test_missing_immediate_rejected(self):
        with pytest.raises(ValueError, match="missing immediate"):
            make(Op.LI, defs=[t(0)])

    def test_missing_targets_rejected(self):
        with pytest.raises(ValueError, match="targets"):
            make(Op.BR, uses=[t(0)], targets=["one"])

    def test_missing_callee_rejected(self):
        with pytest.raises(ValueError, match="callee"):
            make(Op.CALL)

    def test_missing_slot_rejected(self):
        with pytest.raises(ValueError, match="stack slot"):
            make(Op.LDS, defs=[t(0)])


class TestSpillTagging:
    def test_untagged_instruction_has_no_kind(self):
        assert make(Op.NOP).spill_kind() is None

    def test_kinds_follow_opcode(self):
        slot = StackSlot(0, G)
        load = Instr(Op.LDS, defs=[t(0)], slot=slot,
                     spill_phase=SpillPhase.EVICT)
        store = Instr(Op.STS, uses=[t(0)], slot=slot,
                      spill_phase=SpillPhase.RESOLVE)
        move = Instr(Op.MOV, defs=[t(0)], uses=[t(1)],
                     spill_phase=SpillPhase.EVICT)
        assert load.spill_kind() is SpillKind.LOAD
        assert store.spill_kind() is SpillKind.STORE
        assert move.spill_kind() is SpillKind.MOVE

    def test_non_spill_opcode_with_tag_rejected(self):
        instr = Instr(Op.ADD, defs=[t(0)], uses=[t(1), t(2)],
                      spill_phase=SpillPhase.EVICT)
        with pytest.raises(ValueError):
            instr.spill_kind()


class TestOperandAccess:
    def test_regs_and_temps(self):
        instr = make(Op.ST, uses=[t(1), PhysReg(G, 3)], imm=0)
        assert instr.regs() == [t(1), PhysReg(G, 3)]
        assert instr.temps() == [t(1)]

    def test_replace_reg_rewrites_all_slots(self):
        instr = make(Op.ADD, defs=[t(0)], uses=[t(1), t(1)])
        count = instr.replace_reg(t(1), PhysReg(G, 2))
        assert count == 2
        assert instr.uses == [PhysReg(G, 2), PhysReg(G, 2)]

    def test_copy_is_independent(self):
        instr = make(Op.ADD, defs=[t(0)], uses=[t(1), t(2)])
        dup = instr.copy()
        dup.uses[0] = t(9)
        assert instr.uses[0] == t(1)
        assert dup is not instr

    def test_identity_semantics(self):
        a = make(Op.NOP)
        b = make(Op.NOP)
        assert a != b
        assert len({a, b}) == 2

    def test_move_predicate(self):
        assert make(Op.MOV, defs=[t(0)], uses=[t(1)]).is_move
        assert make(Op.FMOV, defs=[t(0, F)], uses=[t(1, F)]).is_move
        assert not make(Op.ADD, defs=[t(0)], uses=[t(1), t(2)]).is_move

    def test_call_predicate(self):
        assert Instr(Op.CALL, callee="f").is_call
        assert not make(Op.NOP).is_call
