"""Shared fixtures and the oracle helper used across the test suite."""

from __future__ import annotations

import pytest

from repro.allocators import (
    GraphColoring,
    PolettoLinearScan,
    SecondChanceBinpacking,
    TwoPassBinpacking,
)
from repro.ir.module import Module
from repro.pipeline import run_allocator
from repro.sim.machine import outputs_equal, simulate
from repro.target import alpha, tiny
from repro.target.machine import MachineDescription

#: One constructor per allocator, keyed by the id used in parametrized tests.
ALLOCATOR_FACTORIES = {
    "second-chance": SecondChanceBinpacking,
    "two-pass": TwoPassBinpacking,
    "coloring": GraphColoring,
    "poletto": PolettoLinearScan,
}


@pytest.fixture(params=list(ALLOCATOR_FACTORIES), ids=list(ALLOCATOR_FACTORIES))
def any_allocator(request):
    """Parametrized fixture yielding a fresh instance of each allocator."""
    return ALLOCATOR_FACTORIES[request.param]()


@pytest.fixture
def tiny_machine() -> MachineDescription:
    return tiny(6, 6)


@pytest.fixture
def alpha_machine() -> MachineDescription:
    return alpha()


def assert_allocation_preserves_semantics(
        module: Module, allocator, machine: MachineDescription, *,
        max_steps: int = 4_000_000) -> tuple:
    """The oracle: allocated code must behave exactly like the original.

    Returns ``(reference_outcome, allocated_outcome, pipeline_result)``
    so callers can make additional assertions about counts or stats.
    """
    reference = simulate(module, machine, max_steps=max_steps)
    result = run_allocator(module, allocator, machine)
    outcome = simulate(result.module, machine, max_steps=max_steps)
    assert outputs_equal(outcome.output, reference.output), (
        f"{allocator.name} changed observable output:\n"
        f"  expected {reference.output[:10]}\n"
        f"  got      {outcome.output[:10]}")
    assert outcome.result == reference.result or (
        outcome.result != outcome.result and reference.result != reference.result)
    return reference, outcome, result
