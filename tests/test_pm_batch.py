"""The batch-compilation driver: ordering, determinism, fuzz fan-out.

Process pools are where nondeterminism sneaks in, so the contract is
strict: ``run_batch`` returns results in payload order regardless of
completion order, and a parallel ``compare_allocators`` is byte-identical
to the serial shared-session path (which is also what
``tools/check_batch_determinism.py`` enforces in CI on bigger inputs).
"""

import pytest

from repro.allocators import ALLOCATOR_FACTORIES
from repro.fuzz.harness import fuzz
from repro.pm.batch import compare_allocators, run_batch
from repro.target import tiny
from repro.workloads.programs import build_program

CHECKED_FIELDS = ("allocator", "dynamic_instructions", "cycles",
                  "spill_fraction", "output", "result", "module_text")


def _square(payload):
    # Top-level so it pickles into pool workers.
    return payload * payload


class TestRunBatch:
    def test_serial_inline(self):
        assert run_batch(_square, [3, 1, 4, 1, 5], jobs=1) == [9, 1, 16, 1, 25]

    def test_single_payload_runs_inline_even_with_jobs(self):
        assert run_batch(_square, [7], jobs=4) == [49]

    def test_parallel_preserves_payload_order(self):
        payloads = list(range(12))
        assert run_batch(_square, payloads, jobs=3) == [p * p for p in payloads]

    def test_empty_batch(self):
        assert run_batch(_square, [], jobs=2) == []


class TestCompareAllocators:
    def test_serial_covers_every_allocator_in_registry_order(self):
        machine = tiny(8, 8)
        module = build_program("wc", machine)
        cells = compare_allocators(module, machine, jobs=1)
        assert [c.allocator for c in cells] == list(ALLOCATOR_FACTORIES)
        reference = cells[0]
        for cell in cells:
            assert cell.output == reference.output
            assert cell.module_text  # allocated text captured per cell

    def test_parallel_matches_serial_byte_for_byte(self):
        machine = tiny(8, 8)
        module = build_program("wc", machine)
        serial = compare_allocators(module, machine, jobs=1)
        parallel = compare_allocators(module, machine, jobs=2)
        assert len(serial) == len(parallel)
        for s, p in zip(serial, parallel):
            for field in CHECKED_FIELDS:
                assert getattr(s, field) == getattr(p, field), field

    def test_name_subset_and_spill_cleanup(self):
        machine = tiny(8, 8)
        module = build_program("wc", machine)
        cells = compare_allocators(module, machine,
                                   names=["coloring", "second-chance"],
                                   spill_cleanup=True, jobs=2)
        assert [c.allocator for c in cells] == ["coloring", "second-chance"]

    def test_unknown_allocator_name_rejected(self):
        machine = tiny(8, 8)
        module = build_program("wc", machine)
        with pytest.raises(ValueError, match="unknown allocator"):
            compare_allocators(module, machine, names=["chaitin"])


class TestFuzzJobs:
    def test_parallel_fuzz_matches_serial_counts(self):
        seeds = range(1000, 1004)
        serial = fuzz(seeds, shrink=False)
        parallel = fuzz(seeds, shrink=False, jobs=2)
        assert serial.ok and parallel.ok
        assert parallel.seeds == serial.seeds == len(seeds)
        assert parallel.checks == serial.checks
        assert parallel.skips == serial.skips
        assert parallel.invalid_seeds == serial.invalid_seeds
