"""The path-sensitive dataflow verifier (passes/verify_alloc.py).

Three properties pin the verifier's value:

* **Soundness on correct code** — every allocator, across machines and
  random programs, passes with zero reported errors (no false
  positives).  This is the property the copy-set abstract domain exists
  for: the allocators legitimately exploit copies (call-argument moves,
  move elimination) and a single-variable domain would flag them.
* **Sensitivity** — an intentionally injected clobber (retargeting a def
  to the wrong register) is caught with a precise message; in
  particular, every mutation the *simulator* can observe misbehaving is
  also caught statically (mutation self-test).
* **Pipeline wiring** — ``run_allocator(verify_dataflow=True)``
  snapshots after DCE and verifies right after allocation.
"""

from __future__ import annotations

import copy

import pytest

from repro.allocators.base import allocate_module
from repro.ir.instr import Op
from repro.ir.temp import PhysReg
from repro.passes.dce import eliminate_dead_code_module
from repro.passes.verify_alloc import (AllocationVerifyError,
                                       snapshot_module, verify_dataflow,
                                       verify_dataflow_module)
from repro.pipeline import run_allocator
from repro.sim import SimulationError, outputs_equal, simulate
from repro.target import alpha, tiny
from repro.workloads.synthetic import random_module
from tests.conftest import ALLOCATOR_FACTORIES


def _allocated_with_snapshot(seed, machine, allocator_name, size=30):
    """(allocated module, snapshots) for one random program."""
    module = random_module(seed, machine, size=size)
    working = copy.deepcopy(module)
    eliminate_dead_code_module(working)
    snapshots = snapshot_module(working)
    allocate_module(working, ALLOCATOR_FACTORIES[allocator_name](), machine)
    return module, working, snapshots


class TestSoundness:
    @pytest.mark.parametrize("allocator", list(ALLOCATOR_FACTORIES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_false_positives_tiny(self, allocator, seed):
        machine = tiny(5, 5)
        _, working, snapshots = _allocated_with_snapshot(
            seed, machine, allocator)
        verify_dataflow_module(working, machine, snapshots)

    @pytest.mark.parametrize("allocator", list(ALLOCATOR_FACTORIES))
    def test_no_false_positives_alpha(self, allocator):
        machine = alpha()
        _, working, snapshots = _allocated_with_snapshot(
            7, machine, allocator)
        verify_dataflow_module(working, machine, snapshots)


class TestSensitivity:
    def test_injected_clobber_is_caught(self):
        """Retargeting a def whose value is later read must be flagged."""
        machine = tiny(5, 5)
        _, working, snapshots = _allocated_with_snapshot(
            3, machine, "second-chance")
        verify_dataflow_module(working, machine, snapshots)  # clean baseline

        fn = working.functions["main"]
        caught = 0
        tried = 0
        for block in fn.blocks:
            for instr in block.instrs:
                if tried >= 12:
                    break
                if (instr.spill_phase is not None or not instr.defs
                        or instr.op is Op.CALL):
                    continue
                old = instr.defs[0]
                if not isinstance(old, PhysReg):
                    continue
                alt = PhysReg(old.regclass,
                              (old.index + 1) % machine.file_size(old.regclass))
                tried += 1
                instr.defs[0] = alt
                try:
                    verify_dataflow_module(working, machine, snapshots)
                except AllocationVerifyError as exc:
                    caught += 1
                    assert "main/" in str(exc)
                finally:
                    instr.defs[0] = old
        assert tried > 0
        assert caught >= tried // 2  # most single-register retargets break

    def test_verifier_catches_everything_the_simulator_does(self):
        """Mutation self-test: any def-retarget the oracle can observe
        misbehaving must also fail dataflow verification."""
        machine = tiny(5, 5)
        module, working, snapshots = _allocated_with_snapshot(
            4, machine, "second-chance")
        reference = simulate(module, machine)
        sim_observable = 0
        for fn in working.functions.values():
            for block in fn.blocks:
                for instr in block.instrs:
                    if (instr.spill_phase is not None or not instr.defs
                            or instr.op is Op.CALL):
                        continue
                    old = instr.defs[0]
                    if not isinstance(old, PhysReg):
                        continue
                    alt = PhysReg(old.regclass, (old.index + 1)
                                  % machine.file_size(old.regclass))
                    instr.defs[0] = alt
                    try:
                        try:
                            out = simulate(working, machine,
                                           max_steps=2_000_000)
                            diverges = not outputs_equal(
                                reference.output, out.output)
                        except SimulationError:
                            diverges = True
                        if diverges:
                            sim_observable += 1
                            with pytest.raises(AllocationVerifyError):
                                verify_dataflow_module(
                                    working, machine, snapshots)
                    finally:
                        instr.defs[0] = old
        assert sim_observable > 10  # the program must actually exercise regs

    def test_missing_spill_store_is_caught(self):
        """Deleting a spill store whose slot is later loaded is flagged."""
        machine = tiny(4, 4)
        _, working, snapshots = _allocated_with_snapshot(
            0, machine, "second-chance")
        loaded_slots = {instr.slot
                        for fn in working.functions.values()
                        for instr in fn.instructions()
                        if instr.op is Op.LDS}
        removed = 0
        for fn in working.functions.values():
            for block in fn.blocks:
                for i, instr in enumerate(block.instrs):
                    if (instr.op is Op.STS and instr.spill_phase is not None
                            and instr.slot in loaded_slots):
                        saved = block.instrs.pop(i)
                        try:
                            verify_dataflow_module(working, machine, snapshots)
                        except AllocationVerifyError:
                            removed += 1
                        finally:
                            block.instrs.insert(i, saved)
                        if removed:
                            return  # one caught deletion proves the point
        pytest.fail("no spill-store deletion was caught")


class TestPipelineWiring:
    @pytest.mark.parametrize("allocator", list(ALLOCATOR_FACTORIES))
    def test_run_allocator_flag(self, allocator):
        machine = tiny(6, 6)
        module = random_module(5, machine, size=25)
        result = run_allocator(module, ALLOCATOR_FACTORIES[allocator](),
                               machine, verify_dataflow=True)
        # The flag must not change the produced code, only check it.
        plain = run_allocator(module, ALLOCATOR_FACTORIES[allocator](),
                              machine)
        ref = simulate(module, machine)
        out = simulate(result.module, machine)
        assert outputs_equal(ref.output, out.output)
        assert (result.module.functions.keys()
                == plain.module.functions.keys())

    def test_verify_runs_before_peephole(self):
        """Move elimination leaves identity moves the peephole deletes;
        the verifier must see them (their defs re-establish variables),
        so ``verify_dataflow=True`` together with ``peephole=True`` must
        not produce false positives."""
        machine = tiny(4, 4)
        module = random_module(1, machine, size=35)
        run_allocator(module, ALLOCATOR_FACTORIES["second-chance"](),
                      machine, verify_dataflow=True, peephole=True)
