"""Report rendering and run-to-run diffs over hand-built stores.

The renderers are pure functions of store records, so they can be tested
against tiny synthetic stores — no allocation, no simulation.  The
benchmark wrappers exercise the same renderers against real cells; here
we pin the plumbing: missing-cell errors, diff semantics, trajectory
folding, and the perf-bench trajectory-file auto-naming.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.results.report import (MissingCells, diff_runs, render_figure3,
                                  render_perf_trajectory, render_runs,
                                  render_table1, render_table2, table1_rows)
from repro.results.store import CellKey, ResultStore

NAMES = ["alpha-prog", "beta-prog"]


def _quality_data(instrs: int, spill: int = 0, sha: str = "aa") -> dict:
    categories = {key: 0 for key in ("evict.load", "evict.store",
                                     "evict.move", "resolve.load",
                                     "resolve.store", "resolve.move")}
    categories["evict.load"] = spill
    return {"dynamic_instructions": instrs, "cycles": instrs + 7,
            "result": 1, "total_spill": spill,
            "spill_categories": categories, "allocated_sha": sha}


def _seed_store(root, scale=1.0) -> ResultStore:
    store = ResultStore(root)
    store.begin_run("seed")
    for i, name in enumerate(NAMES):
        base = 1000 * (i + 1)
        store.put(CellKey(f"analog:{name}", "second-chance"), "h",
                  _quality_data(int(base * scale), spill=10 * (i + 1)))
        store.put(CellKey(f"analog:{name}", "coloring"), "h",
                  _quality_data(base, spill=0))
    store.finish_run({"cells": 4, "computed": 4, "hits": 0,
                      "invalidated": 0})
    return store


def test_table_renderers_on_synthetic_cells(tmp_path):
    store = _seed_store(tmp_path, scale=1.1)
    rows = table1_rows(store, NAMES)
    assert [row[0] for row in rows] == NAMES
    assert all(abs(row[3] - 1.1) < 1e-9 for row in rows)
    text = render_table1(store, NAMES)
    assert "Table 1" in text and "alpha-prog" in text
    assert "0.909%" in render_table2(store, NAMES)  # 10 / 1100
    figure = render_figure3(store, NAMES)
    assert "alpha-prog-b" in figure and "evict.loads" in figure


def test_missing_cells_is_a_clear_error(tmp_path):
    store = _seed_store(tmp_path)
    with pytest.raises(MissingCells) as exc:
        table1_rows(store, NAMES + ["gamma-prog"])
    assert "gamma-prog" in str(exc.value)
    assert "repro suite" in str(exc.value)


def test_diff_runs_reports_moved_values(tmp_path):
    store = _seed_store(tmp_path)
    store.begin_run("second")
    # One cell regresses by 2x, the rest carry over as hits.
    key = CellKey(f"analog:{NAMES[0]}", "second-chance")
    store.put(key, "h", _quality_data(2000, spill=10, sha="bb"))
    for name in NAMES:
        for allocator in ("second-chance", "coloring"):
            other = CellKey(f"analog:{name}", allocator)
            if other.ident() != key.ident():
                store.note_hit(other, store.peek(other))
    store.finish_run({"cells": 4, "computed": 1, "hits": 3,
                      "invalidated": 0})

    text = diff_runs(store, "r0001", "r0002")
    assert "4 shared cell(s), 3 identical" in text
    assert "dynamic_instructions" in text and "2.000" in text
    assert "allocated_sha" in text  # the hash moved too
    with pytest.raises(LookupError):
        diff_runs(store, "r0001", "r9999")
    runs = render_runs(store)
    assert "r0001" in runs and "r0002" in runs and "seed" in runs


def test_perf_trajectory_folds_bench_files_and_store(tmp_path):
    doc = {"before": {"mode": "full", "groups": {"sim": 2.0}},
           "after": {"mode": "full", "groups": {"sim": 1.0}},
           "speedup": {"sim": 2.0}}
    (tmp_path / "BENCH_1.json").write_text(json.dumps(doc))
    store = ResultStore(tmp_path / "store")
    store.begin_run("perf-bench")
    store.put(CellKey("perf:quick", "suite", machine="host", kind="perf",
                      reps=1),
              "h", {"mode": "quick", "groups": {"sim": 0.5}})
    store.finish_run()
    text = render_perf_trajectory(store, tmp_path)
    assert "BENCH_1.json" in text and "store:r0001" in text
    assert "2.00x" in text
    empty = render_perf_trajectory(None, tmp_path / "nowhere")
    assert "no BENCH_*.json" in empty


def test_perf_trajectory_renders_sim_cells(tmp_path):
    """The per-cell sim table follows each sim.* benchmark across points
    and computes per-cell speedups where both phases exist."""
    doc = {"before": {"mode": "full", "groups": {"sim": 2.0},
                      "benchmarks": {"sim.wc": {"median_s": 2.0, "reps": 3},
                                     "e2e.doduc": {"median_s": 1.0,
                                                   "reps": 3}}},
           "after": {"mode": "full", "groups": {"sim": 0.5},
                     "benchmarks": {"sim.wc": {"median_s": 0.5, "reps": 3}}}}
    (tmp_path / "BENCH_2.json").write_text(json.dumps(doc))
    text = render_perf_trajectory(None, tmp_path)
    assert "Simulator trajectory" in text
    assert "sim.wc (ms)" in text
    assert "4.00x" in text
    # e2e cells stay out of the sim detail table.
    assert "e2e.doduc (ms)" not in text


def _load_perf_bench():
    root = Path(__file__).resolve().parent.parent
    spec = importlib.util.spec_from_file_location(
        "perf_bench", root / "tools" / "perf_bench.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_perf_bench_auto_record_naming(tmp_path):
    perf_bench = _load_perf_bench()
    resolve = perf_bench.resolve_record_path
    # Empty repo: both phases start BENCH_1.
    assert resolve("auto", "before", tmp_path).endswith("BENCH_1.json")
    assert resolve("auto", "after", tmp_path).endswith("BENCH_1.json")
    (tmp_path / "BENCH_2.json").write_text("{}")
    (tmp_path / "BENCH_10.json").write_text("{}")  # numeric, not lexical
    assert resolve("auto", "before", tmp_path).endswith("BENCH_11.json")
    assert resolve("auto", "after", tmp_path).endswith("BENCH_10.json")
    # Explicit paths pass through untouched.
    assert resolve("BENCH_7.json", "before", tmp_path) == "BENCH_7.json"


def test_perf_bench_check_reads_store_baselines(tmp_path, capsys):
    perf_bench = _load_perf_bench()
    run = {"schema": 1, "mode": "quick", "reps": 1,
           "benchmarks": {"sim.wc": {"median_s": 0.010, "reps": 1},
                          "lifetimes": {"median_s": 0.020, "reps": 1}},
           "groups": {"sim": 0.010, "lifetimes": 0.020}}
    perf_bench.store_run(str(tmp_path), run)
    baseline = perf_bench._load_baseline(str(tmp_path))
    assert baseline["benchmarks"] == run["benchmarks"]
    # A matching run checks clean against its own recorded medians.
    failures = perf_bench.check_against(str(tmp_path), run, 1.5)
    assert failures == []
    # A store with no perf records is an explicit error.
    with pytest.raises(FileNotFoundError):
        perf_bench._load_baseline(str(tmp_path / "empty"))
