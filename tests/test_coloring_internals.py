"""Coloring internals: the ordered set, spill choice, and determinism."""

import pytest

from repro.allocators import GraphColoring
from repro.allocators.coloring.george_appel import _OrderedSet
from repro.ir.printer import print_module
from repro.pipeline import run_allocator
from repro.target import alpha, tiny
from repro.workloads.synthetic import random_module, scaled_module


class TestOrderedSet:
    def test_insertion_order_iteration(self):
        s = _OrderedSet()
        for item in (3, 1, 2):
            s.add(item)
        assert list(s) == [3, 1, 2]

    def test_pop_first_is_fifo(self):
        s = _OrderedSet([5, 6, 7])
        assert s.pop_first() == 5
        assert s.pop_first() == 6
        assert len(s) == 1

    def test_add_is_idempotent_for_order(self):
        s = _OrderedSet([1, 2])
        s.add(1)
        assert list(s) == [1, 2]

    def test_discard_missing_is_noop(self):
        s = _OrderedSet([1])
        s.discard(99)
        assert 1 in s and bool(s)

    def test_empty_pop_raises(self):
        with pytest.raises(StopIteration):
            _OrderedSet().pop_first()


class TestDeterminism:
    @pytest.mark.parametrize("seed", [5, 17])
    def test_same_input_same_output(self, seed):
        machine = tiny(5, 5)
        module = random_module(seed, machine, size=20)
        first = run_allocator(module, GraphColoring(), machine)
        second = run_allocator(module, GraphColoring(), machine)
        assert print_module(first.module) == print_module(second.module)

    def test_binpack_is_deterministic_too(self):
        from repro.allocators import SecondChanceBinpacking
        machine = tiny(5, 5)
        module = random_module(23, machine, size=20)
        first = run_allocator(module, SecondChanceBinpacking(), machine)
        second = run_allocator(module, SecondChanceBinpacking(), machine)
        assert print_module(first.module) == print_module(second.module)


class TestSpillChoice:
    def test_loop_temporaries_survive_spilling(self):
        """Loop-nested values have 10**depth-weighted costs, so under
        pressure the allocator spills the loop-invariant values first:
        the dynamic count with correct weighting must beat a run where
        all costs are equal (approximated by depth-0-only code)."""
        from repro.ir.builder import FunctionBuilder
        from repro.ir.function import Function
        from repro.ir.module import Module
        from repro.ir.types import RegClass
        from repro.sim import simulate

        machine = tiny(4, 4)
        module = Module()
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        cold = [b.li(i) for i in range(5)]   # used once, at the end
        hot = b.li(100)                       # used every iteration
        counter = b.li(50)
        b.jmp("head")
        b.new_block("head")
        b.br(b.slt(b.li(0), counter), "body", "out")
        b.new_block("body")
        b.mov(b.add(hot, counter), dst=hot)
        b.mov(b.addi(counter, -1), dst=counter)
        b.jmp("head")
        b.new_block("out")
        acc = b.li(0)
        for v in cold:
            acc = b.add(acc, v)
        b.print_(acc)
        b.print_(hot)
        b.ret()
        module.add_function(fn)
        result = run_allocator(module, GraphColoring(), machine)
        outcome = simulate(result.module, machine)
        assert outcome.output == [10, 100 + sum(range(1, 51))]
        # The hot loop must not contain spill code for `hot`/`counter`:
        # no more than a handful of dynamic spill instructions total.
        assert outcome.spill_instructions < 30


class TestTriangularBitMatrixPopcount:
    def test_popcount_counts_distinct_pairs(self):
        from repro.allocators.coloring.ifgraph import TriangularBitMatrix
        m = TriangularBitMatrix(40)
        pairs = {(i, j) for i in range(40) for j in range(i) if (i * 7 + j) % 5 == 0}
        for i, j in pairs:
            m.set(i, j)
            m.set(j, i)  # symmetric: stored once
        assert m.popcount() == len(pairs)

    def test_popcount_empty_and_full(self):
        from repro.allocators.coloring.ifgraph import TriangularBitMatrix
        m = TriangularBitMatrix(9)
        assert m.popcount() == 0
        for i in range(9):
            for j in range(i):
                m.set(i, j)
        assert m.popcount() == 9 * 8 // 2


class TestMaskEdgeBuild:
    """The bulk mask-based edge add against the pairwise reference."""

    def _fresh_graph(self):
        from repro.allocators.coloring.ifgraph import InterferenceGraph
        from repro.ir.temp import PhysReg, Temp
        from repro.ir.types import RegClass
        pre = [PhysReg(RegClass.GPR, i) for i in range(3)]
        temps = [Temp(RegClass.GPR, i) for i in range(8)]
        return InterferenceGraph(pre, temps), pre, temps

    def test_bulk_add_matches_pairwise(self):
        bulk, pre_b, temps_b = self._fresh_graph()
        pair, pre_p, temps_p = self._fresh_graph()
        rounds = [
            (temps_b[0], [temps_b[1], temps_b[2], pre_b[0]]),
            (temps_b[1], [temps_b[2], temps_b[3]]),
            (pre_b[1], [temps_b[0], temps_b[4]]),
            (temps_b[0], [temps_b[2], temps_b[5]]),  # partially repeated
        ]
        for d, live in rounds:
            mask = 0
            for l in live:
                mask |= 1 << bulk.index[l]
            bulk.add_edges_from_mask(d, mask)
        for d, live in rounds:
            for l in sorted(live, key=pair.index.__getitem__):
                pair.add_edge(l, d)
        assert bulk.adj_mask == pair.adj_mask
        assert bulk.degree == pair.degree
        assert bulk.edge_count() == pair.edge_count()
        # Byte-identical adjacency iteration order, not just equal sets.
        assert [(n, list(bulk.adj_list[n])) for n in bulk.adj_list] == \
               [(n, list(pair.adj_list[n])) for n in pair.adj_list]

    def test_self_and_known_edges_masked_out(self):
        graph, pre, temps = self._fresh_graph()
        d = temps[0]
        mask = (1 << graph.index[d]) | (1 << graph.index[temps[1]])
        graph.add_edges_from_mask(d, mask)
        graph.add_edges_from_mask(d, mask)  # fully redundant second call
        assert graph.degree[d] == 1
        assert graph.degree[temps[1]] == 1
        assert graph.edge_count() == 1
        assert not graph.interferes(d, d)


class TestInterferenceEdgePins:
    """End-to-end edge counts on fixed inputs: any change to liveness,
    the mask build, or the bit matrix that perturbs the graph shows up
    here as a changed constant."""

    def test_analog_edge_counts(self):
        from repro.allocators import GraphColoring
        from repro.workloads.programs import build_program
        machine = alpha()
        for name, expected in (("doduc", {"advance": 18, "main": 1270}),
                               ("compress", {"main": 518})):
            module = build_program(name, machine)
            result = run_allocator(module, GraphColoring(), machine)
            assert dict(result.stats.interference_edges) == expected, name
