"""Coloring internals: the ordered set, spill choice, and determinism."""

import pytest

from repro.allocators import GraphColoring
from repro.allocators.coloring.george_appel import _OrderedSet
from repro.ir.printer import print_module
from repro.pipeline import run_allocator
from repro.target import alpha, tiny
from repro.workloads.synthetic import random_module, scaled_module


class TestOrderedSet:
    def test_insertion_order_iteration(self):
        s = _OrderedSet()
        for item in (3, 1, 2):
            s.add(item)
        assert list(s) == [3, 1, 2]

    def test_pop_first_is_fifo(self):
        s = _OrderedSet([5, 6, 7])
        assert s.pop_first() == 5
        assert s.pop_first() == 6
        assert len(s) == 1

    def test_add_is_idempotent_for_order(self):
        s = _OrderedSet([1, 2])
        s.add(1)
        assert list(s) == [1, 2]

    def test_discard_missing_is_noop(self):
        s = _OrderedSet([1])
        s.discard(99)
        assert 1 in s and bool(s)

    def test_empty_pop_raises(self):
        with pytest.raises(StopIteration):
            _OrderedSet().pop_first()


class TestDeterminism:
    @pytest.mark.parametrize("seed", [5, 17])
    def test_same_input_same_output(self, seed):
        machine = tiny(5, 5)
        module = random_module(seed, machine, size=20)
        first = run_allocator(module, GraphColoring(), machine)
        second = run_allocator(module, GraphColoring(), machine)
        assert print_module(first.module) == print_module(second.module)

    def test_binpack_is_deterministic_too(self):
        from repro.allocators import SecondChanceBinpacking
        machine = tiny(5, 5)
        module = random_module(23, machine, size=20)
        first = run_allocator(module, SecondChanceBinpacking(), machine)
        second = run_allocator(module, SecondChanceBinpacking(), machine)
        assert print_module(first.module) == print_module(second.module)


class TestSpillChoice:
    def test_loop_temporaries_survive_spilling(self):
        """Loop-nested values have 10**depth-weighted costs, so under
        pressure the allocator spills the loop-invariant values first:
        the dynamic count with correct weighting must beat a run where
        all costs are equal (approximated by depth-0-only code)."""
        from repro.ir.builder import FunctionBuilder
        from repro.ir.function import Function
        from repro.ir.module import Module
        from repro.ir.types import RegClass
        from repro.sim import simulate

        machine = tiny(4, 4)
        module = Module()
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        cold = [b.li(i) for i in range(5)]   # used once, at the end
        hot = b.li(100)                       # used every iteration
        counter = b.li(50)
        b.jmp("head")
        b.new_block("head")
        b.br(b.slt(b.li(0), counter), "body", "out")
        b.new_block("body")
        b.mov(b.add(hot, counter), dst=hot)
        b.mov(b.addi(counter, -1), dst=counter)
        b.jmp("head")
        b.new_block("out")
        acc = b.li(0)
        for v in cold:
            acc = b.add(acc, v)
        b.print_(acc)
        b.print_(hot)
        b.ret()
        module.add_function(fn)
        result = run_allocator(module, GraphColoring(), machine)
        outcome = simulate(result.module, machine)
        assert outcome.output == [10, 100 + sum(range(1, 51))]
        # The hot loop must not contain spill code for `hot`/`counter`:
        # no more than a handful of dynamic spill instructions total.
        assert outcome.spill_instructions < 30
