"""The pre-decoded simulator against the retained reference interpreter.

:mod:`repro.sim.machine` compiles each block into a flat tuple program
and dispatches through bound handlers; :mod:`repro.sim.reference` is the
original module-walking interpreter, kept verbatim as the semantic
oracle.  These tests demand the two agree *exactly* — outputs, results,
dynamic instruction counts, cycles, per-opcode counts, spill counts, and
faults (type and message) — over the benchmark analogs, allocated code,
and a broad fuzz corpus, so any fast-path change that perturbs semantics
fails here before it can skew a paper table.
"""

import pytest

from repro.allocators import ALLOCATOR_FACTORIES, make_allocator
from repro.fuzz.generate import program_for_seed
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Op
from repro.ir.module import Module
from repro.obs import MetricsRegistry
from repro.pm.session import CompilationSession
from repro.sim import (SimulationError, outputs_equal, reference_simulate,
                       simulate)
from repro.target import alpha, tiny
from repro.workloads.programs import PROGRAM_NAMES, build_program


def run_both(module, machine, **kwargs):
    """Run both interpreters; return comparable (kind, payload) verdicts."""

    def observe(run):
        try:
            o = run(module, machine, **kwargs)
        except SimulationError as exc:
            return ("fault", str(exc))
        except Exception as exc:  # noqa: BLE001 — compare crash identity too
            return ("crash", type(exc).__name__, str(exc))
        return ("ok", o.output, o.result, o.dynamic_instructions, o.cycles,
                dict(o.op_counts), dict(o.spill_counts))

    return observe(simulate), observe(reference_simulate)


def assert_equivalent(module, machine, **kwargs):
    fast, ref = run_both(module, machine, **kwargs)
    if fast[0] == ref[0] == "ok":
        # outputs compared NaN-tolerantly, everything else exactly
        assert outputs_equal(fast[1], ref[1])
        assert fast[2:] == ref[2:]
    else:
        assert fast == ref


class TestAnalogEquivalence:
    @pytest.mark.parametrize("name", PROGRAM_NAMES)
    def test_virtual_code_matches_reference(self, name):
        machine = alpha()
        assert_equivalent(build_program(name, machine), machine)

    @pytest.mark.parametrize("alloc_name", sorted(ALLOCATOR_FACTORIES))
    def test_allocated_code_matches_reference(self, alloc_name):
        machine = alpha()
        module = build_program("doduc", machine)
        session = CompilationSession(module, machine)
        result = session.run(make_allocator(alloc_name))
        assert_equivalent(result.module, machine, trap_poison=True)


class TestFuzzCorpusEquivalence:
    """100 deterministic fuzz seeds: same results, op counts, and faults."""

    @pytest.mark.parametrize("seed", range(100))
    def test_seed_matches_reference(self, seed):
        program = program_for_seed(seed)
        assert_equivalent(program.module, program.machine, trap_poison=True)


class TestFaultEquivalence:
    """Faults must match in both message and accounting."""

    def _module(self, machine, instrs, extra_fn=None):
        module = Module()
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        for instr in instrs:
            b.emit(instr)
        module.add_function(fn)
        if extra_fn is not None:
            module.add_function(extra_fn)
        return module

    def test_fell_off_block_fault(self):
        machine = tiny(4, 4)
        module = self._module(machine, [Instr(Op.NOP)])
        fast, ref = run_both(module, machine)
        assert fast == ref
        assert fast[0] == "fault" and "fell off block" in fast[1]

    def test_unknown_jump_target_fault(self):
        machine = tiny(4, 4)
        module = self._module(machine, [Instr(Op.JMP, targets=["nowhere"])])
        fast, ref = run_both(module, machine)
        assert fast == ref
        assert fast[0] == "crash" and fast[1] == "KeyError"

    def test_division_by_zero_fault(self):
        machine = tiny(4, 4)
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        x = fn.new_temp(machine.gprs[0].regclass)
        y = fn.new_temp(machine.gprs[0].regclass)
        z = fn.new_temp(machine.gprs[0].regclass)
        b.emit(Instr(Op.LI, defs=[x], imm=7))
        b.emit(Instr(Op.LI, defs=[y], imm=0))
        b.emit(Instr(Op.DIV, defs=[z], uses=[x, y]))
        b.emit(Instr(Op.RET))
        module = Module()
        module.add_function(fn)
        fast, ref = run_both(module, machine)
        assert fast == ref
        assert fast == ("fault", "main: division by zero")

    def test_step_budget_fault_at_same_step(self):
        machine = tiny(4, 4)
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("loop")
        b.emit(Instr(Op.JMP, targets=["loop"]))
        module = Module()
        module.add_function(fn)
        fast, ref = run_both(module, machine, max_steps=1234)
        assert fast == ref
        assert fast == ("fault", "step budget exceeded in main")


class TestDecodeCache:
    """Block pre-decode must compile each function once and then hit its
    cache on every further call (observable as ``sim.decode.*``)."""

    def test_cache_metrics_published(self):
        machine = alpha()
        module = build_program("doduc", machine)  # main + one callee
        metrics = MetricsRegistry()
        outcome = simulate(module, machine, metrics=metrics)
        compiled = metrics.get("sim.decode.compiled")
        cached = metrics.get("sim.decode.cached")
        assert compiled == outcome.decode_compiled
        assert cached == outcome.decode_cached
        # Every function the run entered was decoded exactly once ...
        assert 1 <= compiled <= len(module.functions)
        # ... and doduc's helper is called in a loop, so nearly every
        # call must be served from the cache.
        assert cached > 10 * compiled

    def test_reference_interpreter_never_decodes(self):
        machine = alpha()
        module = build_program("compress", machine)
        outcome = reference_simulate(module, machine)
        assert outcome.decode_compiled == 0
        assert outcome.decode_cached == 0
