"""The pre-decoded simulator against the retained reference interpreter.

:mod:`repro.sim.machine` compiles each block into a flat tuple program
and dispatches through bound handlers; :mod:`repro.sim.reference` is the
original module-walking interpreter, kept verbatim as the semantic
oracle.  These tests demand the two agree *exactly* — outputs, results,
dynamic instruction counts, cycles, per-opcode counts, spill counts, and
faults (type and message) — over the benchmark analogs, allocated code,
and a broad fuzz corpus, so any fast-path change that perturbs semantics
fails here before it can skew a paper table.
"""

import pytest

from repro.allocators import ALLOCATOR_FACTORIES, make_allocator
from repro.fuzz.generate import program_for_seed
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Op
from repro.ir.module import Module
from repro.obs import MetricsRegistry
from repro.pm.session import CompilationSession
from repro.sim import (SimulationError, outputs_equal, reference_simulate,
                       simulate)
from repro.target import alpha, tiny
from repro.workloads.programs import PROGRAM_NAMES, build_program


def run_both(module, machine, **kwargs):
    """Run both interpreters; return comparable (kind, payload) verdicts."""

    def observe(run):
        try:
            o = run(module, machine, **kwargs)
        except SimulationError as exc:
            return ("fault", str(exc))
        except Exception as exc:  # noqa: BLE001 — compare crash identity too
            return ("crash", type(exc).__name__, str(exc))
        return ("ok", o.output, o.result, o.dynamic_instructions, o.cycles,
                dict(o.op_counts), dict(o.spill_counts))

    return observe(simulate), observe(reference_simulate)


def assert_equivalent(module, machine, **kwargs):
    fast, ref = run_both(module, machine, **kwargs)
    if fast[0] == ref[0] == "ok":
        # outputs compared NaN-tolerantly, everything else exactly
        assert outputs_equal(fast[1], ref[1])
        assert fast[2:] == ref[2:]
    else:
        assert fast == ref


class TestAnalogEquivalence:
    @pytest.mark.parametrize("name", PROGRAM_NAMES)
    def test_virtual_code_matches_reference(self, name):
        machine = alpha()
        assert_equivalent(build_program(name, machine), machine)

    @pytest.mark.parametrize("alloc_name", sorted(ALLOCATOR_FACTORIES))
    @pytest.mark.parametrize("name", PROGRAM_NAMES)
    def test_allocated_code_matches_reference(self, name, alloc_name):
        """Every analog × every allocator: the dense-state simulator and
        the reference interpreter must agree on allocated code, with
        poison reads trapping identically."""
        machine = alpha()
        module = build_program(name, machine)
        session = CompilationSession(module, machine)
        result = session.run(make_allocator(alloc_name))
        assert_equivalent(result.module, machine, trap_poison=True)


class TestFuzzCorpusEquivalence:
    """100 deterministic fuzz seeds: same results, op counts, and faults."""

    @pytest.mark.parametrize("seed", range(100))
    def test_seed_matches_reference(self, seed):
        program = program_for_seed(seed)
        assert_equivalent(program.module, program.machine, trap_poison=True)


class TestFaultEquivalence:
    """Faults must match in both message and accounting."""

    def _module(self, machine, instrs, extra_fn=None):
        module = Module()
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        for instr in instrs:
            b.emit(instr)
        module.add_function(fn)
        if extra_fn is not None:
            module.add_function(extra_fn)
        return module

    def test_fell_off_block_fault(self):
        machine = tiny(4, 4)
        module = self._module(machine, [Instr(Op.NOP)])
        fast, ref = run_both(module, machine)
        assert fast == ref
        assert fast[0] == "fault" and "fell off block" in fast[1]

    def test_unknown_jump_target_fault(self):
        machine = tiny(4, 4)
        module = self._module(machine, [Instr(Op.JMP, targets=["nowhere"])])
        fast, ref = run_both(module, machine)
        assert fast == ref
        assert fast[0] == "crash" and fast[1] == "KeyError"

    def test_division_by_zero_fault(self):
        machine = tiny(4, 4)
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        x = fn.new_temp(machine.gprs[0].regclass)
        y = fn.new_temp(machine.gprs[0].regclass)
        z = fn.new_temp(machine.gprs[0].regclass)
        b.emit(Instr(Op.LI, defs=[x], imm=7))
        b.emit(Instr(Op.LI, defs=[y], imm=0))
        b.emit(Instr(Op.DIV, defs=[z], uses=[x, y]))
        b.emit(Instr(Op.RET))
        module = Module()
        module.add_function(fn)
        fast, ref = run_both(module, machine)
        assert fast == ref
        assert fast == ("fault", "main: division by zero")

    def test_step_budget_fault_at_same_step(self):
        machine = tiny(4, 4)
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("loop")
        b.emit(Instr(Op.JMP, targets=["loop"]))
        module = Module()
        module.add_function(fn)
        fast, ref = run_both(module, machine, max_steps=1234)
        assert fast == ref
        assert fast == ("fault", "step budget exceeded in main")

    def test_trap_poison_fault_matches(self):
        """Reading call poison from a caller-saved register must trap
        with the same kind and message in both interpreters."""
        machine = tiny(4, 4)
        caller_saved = machine.caller_saved(machine.gprs[0].regclass)[0]
        helper = Function("helper")
        hb = FunctionBuilder(helper)
        hb.new_block("entry")
        hb.emit(Instr(Op.RET))
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        b.emit(Instr(Op.LI, defs=[caller_saved], imm=5))
        b.emit(Instr(Op.CALL, callee="helper"))
        b.emit(Instr(Op.PRINT, uses=[caller_saved]))
        b.emit(Instr(Op.RET))
        module = Module()
        module.add_function(fn)
        module.add_function(helper)
        fast, ref = run_both(module, machine, trap_poison=True,
                             check_callee_saved=False)
        assert fast == ref
        assert fast[0] == "fault" and "still poisoned by a call" in fast[1]

    def test_never_written_slot_fault_matches(self):
        """The dense slot file's ``_UNSET`` sentinel must reproduce the
        reference's dict-membership fault byte for byte."""
        from repro.ir.temp import StackSlot
        from repro.ir.types import RegClass

        machine = tiny(4, 4)
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        t = fn.new_temp(RegClass.GPR)
        b.emit(Instr(Op.LDS, defs=[t], slot=StackSlot(3, RegClass.GPR)))
        b.emit(Instr(Op.RET))
        module = Module()
        module.add_function(fn)
        fast, ref = run_both(module, machine)
        assert fast == ref
        assert fast == ("fault", "main: load of never-written [s3]")

    def test_callee_saved_clobber_fault_matches(self):
        """The flat saved-registers vector must produce the reference's
        clobber fault — same register, same old/new values."""
        machine = tiny(4, 4)
        callee_saved = machine.callee_saved(machine.gprs[0].regclass)[0]
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        b.emit(Instr(Op.LI, defs=[callee_saved], imm=99))
        b.emit(Instr(Op.RET))
        module = Module()
        module.add_function(fn)
        fast, ref = run_both(module, machine)
        assert fast == ref
        assert fast[0] == "fault" and "callee-saved" in fast[1]
        assert "clobbered" in fast[1] and "99" in fast[1]


class TestDecodeCache:
    """Block pre-decode must compile each function once and then hit its
    cache on every further call (observable as ``sim.decode.*``)."""

    def test_cache_metrics_published(self):
        machine = alpha()
        module = build_program("doduc", machine)  # main + one callee
        metrics = MetricsRegistry()
        outcome = simulate(module, machine, metrics=metrics)
        compiled = metrics.get("sim.decode.compiled")
        cached = metrics.get("sim.decode.cached")
        assert compiled == outcome.decode_compiled
        assert cached == outcome.decode_cached
        # Every function the run entered was decoded exactly once ...
        assert 1 <= compiled <= len(module.functions)
        # ... and doduc's helper is called in a loop, so nearly every
        # call must be served from the cache.
        assert cached > 10 * compiled

    def test_reference_interpreter_never_decodes(self):
        machine = alpha()
        module = build_program("compress", machine)
        outcome = reference_simulate(module, machine)
        assert outcome.decode_compiled == 0
        assert outcome.decode_cached == 0


class TestHistogramBoundary:
    """The run loop counts opcodes and spill categories by dense int
    index; the enum-keyed ``Counter`` objects exist only at the outcome
    boundary and must be exactly what the reference produces."""

    def test_histograms_fold_to_enum_keys(self):
        from repro.ir.instr import SpillKind, SpillPhase

        machine = alpha()
        module = build_program("doduc", machine)
        session = CompilationSession(module, machine)
        result = session.run(make_allocator("second-chance"))
        fast = simulate(result.module, machine)
        ref = reference_simulate(result.module, machine)
        assert fast.op_counts == ref.op_counts
        assert fast.spill_counts == ref.spill_counts
        # Boundary types: callers index these by enum, never by int.
        assert all(isinstance(op, Op) for op in fast.op_counts)
        assert all(isinstance(phase, SpillPhase)
                   and isinstance(kind, SpillKind)
                   for phase, kind in fast.spill_counts)
        assert sum(fast.op_counts.values()) == fast.dynamic_instructions

    def test_histograms_fold_even_on_fault(self):
        """A faulting run must still fold the partial histograms (the
        fold runs in the loop's ``finally``)."""
        machine = tiny(4, 4)
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("loop")
        b.emit(Instr(Op.NOP))
        b.emit(Instr(Op.JMP, targets=["loop"]))
        module = Module()
        module.add_function(fn)
        from repro.sim.machine import Simulator
        sim = Simulator(module, machine, max_steps=100)
        with pytest.raises(SimulationError):
            sim.run()
        assert sim.op_counts[Op.NOP] == 50
        assert sim.op_counts[Op.JMP] == 50


class TestFramePool:
    """Frame pooling must be observable and actually reuse frames."""

    def test_frames_reused_across_calls(self):
        machine = alpha()
        module = build_program("doduc", machine)  # helper called in a loop
        metrics = MetricsRegistry()
        outcome = simulate(module, machine, metrics=metrics)
        # One live frame per function at this call depth: allocations are
        # bounded by the module's function count, everything else reuses.
        assert outcome.frames_allocated <= len(module.functions)
        assert outcome.frames_reused > 10 * outcome.frames_allocated
        assert metrics.get("sim.frames.allocated") == outcome.frames_allocated
        assert metrics.get("sim.frames.reused") == outcome.frames_reused

    def test_pooled_frames_start_clean(self):
        """A reused frame must not leak the previous activation's slots:
        the second call's never-written load still faults."""
        from repro.ir.temp import StackSlot
        from repro.ir.types import RegClass

        machine = tiny(4, 4)
        slot = StackSlot(0, RegClass.GPR)
        helper = Function("helper")
        hb = FunctionBuilder(helper)
        hb.new_block("entry")
        sel = helper.new_temp(RegClass.GPR)
        loaded = helper.new_temp(RegClass.GPR)
        # arg protocol: tiny's first GPR carries the selector
        arg = machine.gprs[0]
        hb.emit(Instr(Op.MOV, defs=[sel], uses=[arg]))
        hb.emit(Instr(Op.BR, uses=[sel], targets=["write", "read"]))
        hb.new_block("write")
        hb.emit(Instr(Op.STS, uses=[sel], slot=slot))
        hb.emit(Instr(Op.RET))
        hb.new_block("read")
        hb.emit(Instr(Op.LDS, defs=[loaded], slot=slot))
        hb.emit(Instr(Op.RET))
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        b.emit(Instr(Op.LI, defs=[arg], imm=1))
        b.emit(Instr(Op.CALL, callee="helper"))  # writes the slot
        b.emit(Instr(Op.LI, defs=[arg], imm=0))
        b.emit(Instr(Op.CALL, callee="helper"))  # reused frame: must fault
        b.emit(Instr(Op.RET))
        module = Module()
        module.add_function(fn)
        module.add_function(helper)
        fast, ref = run_both(module, machine, check_callee_saved=False,
                             poison_calls=False)
        assert fast == ref
        assert fast == ("fault", "helper: load of never-written [s0]")
