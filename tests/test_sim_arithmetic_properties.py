"""Property tests: simulator arithmetic vs a Python-level oracle.

Each operator is checked against an independent Python model of 64-bit
two's-complement semantics over randomized operands, including the
boundary values hypothesis loves.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.module import Module
from repro.sim import SimulationError, simulate
from repro.target import tiny

I64 = st.integers(-(2 ** 63), 2 ** 63 - 1)


def run_binop(op_name: str, a: int, b: int) -> int:
    module = Module()
    fn = Function("main")
    builder = FunctionBuilder(fn)
    builder.new_block("entry")
    x = builder.li(a)
    y = builder.li(b)
    builder.print_(getattr(builder, op_name)(x, y))
    builder.ret()
    module.add_function(fn)
    return simulate(module, tiny()).output[0]


def wrap(v: int) -> int:
    v &= (1 << 64) - 1
    return v - (1 << 64) if v >= (1 << 63) else v


class TestWrapOracle:
    @given(I64, I64)
    def test_add(self, a, b):
        assert run_binop("add", a, b) == wrap(a + b)

    @given(I64, I64)
    def test_sub(self, a, b):
        assert run_binop("sub", a, b) == wrap(a - b)

    @given(I64, I64)
    def test_mul(self, a, b):
        assert run_binop("mul", a, b) == wrap(a * b)

    @given(I64, I64)
    def test_bitwise(self, a, b):
        assert run_binop("and_", a, b) == wrap(a & b)
        assert run_binop("or_", a, b) == wrap(a | b)
        assert run_binop("xor", a, b) == wrap(a ^ b)

    @given(I64, I64)
    def test_comparisons(self, a, b):
        assert run_binop("slt", a, b) == int(a < b)
        assert run_binop("sle", a, b) == int(a <= b)
        assert run_binop("seq", a, b) == int(a == b)
        assert run_binop("sne", a, b) == int(a != b)

    @given(I64, st.integers(-(2 ** 63), -1) | st.integers(1, 2 ** 63 - 1))
    def test_div_rem_c_semantics(self, a, b):
        import math
        q = run_binop("div", a, b)
        r = run_binop("rem", a, b)
        expected_q = wrap(math.trunc(a / b) if abs(a) < 2 ** 52
                          else abs(a) // abs(b) * (1 if (a < 0) == (b < 0) else -1))
        assert q == expected_q
        # The division identity holds in wrapped arithmetic.
        assert wrap(q * b + r) == a

    @given(I64, st.integers(0, 200))
    def test_shifts(self, a, k):
        assert run_binop("shl", a, k) == wrap(a << (k % 64))
        assert run_binop("shr", a, k) == wrap(a >> (k % 64))


class TestFloatOracle:
    @given(st.floats(allow_nan=False, allow_infinity=False, width=64),
           st.floats(allow_nan=False, allow_infinity=False, width=64))
    def test_fadd_fsub_fmul_match_python(self, a, b):
        module = Module()
        fn = Function("main")
        builder = FunctionBuilder(fn)
        builder.new_block("entry")
        x = builder.fli(a)
        y = builder.fli(b)
        builder.print_(builder.fadd(x, y))
        builder.print_(builder.fsub(x, y))
        builder.print_(builder.fmul(x, y))
        builder.ret()
        module.add_function(fn)
        out = simulate(module, tiny()).output
        expected = [a + b, a - b, a * b]
        for got, want in zip(out, expected):
            assert got == want or (got != got and want != want)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64))
    def test_itof_ftoi_round_trip_for_small_ints(self, f):
        module = Module()
        fn = Function("main")
        builder = FunctionBuilder(fn)
        builder.new_block("entry")
        builder.print_(builder.ftoi(builder.fli(float(int(f % 1000)))))
        builder.ret()
        module.add_function(fn)
        assert simulate(module, tiny()).output == [int(f % 1000)]
