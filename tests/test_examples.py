"""The shipped examples must run end-to-end (they double as tutorials)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "output before allocation: [77, 770]" in out
    assert "output after  allocation: [77, 770]" in out
    assert "register candidates" in out


def test_figure1():
    out = run_example("figure1_lifetime_holes.py")
    assert "Lifetime timelines" in out
    assert "T3's whole lifetime fits inside a hole of T1" in out


def test_figure2():
    out = run_example("figure2_resolution.py")
    assert "!evict" in out
    assert "!resolve" in out
    assert "output (no holes): [11, 6]" in out
    assert "output (full):     [11, 6]" in out


def test_compare_allocators():
    out = run_example("compare_allocators.py", "m88ksim")
    assert "second-chance binpacking" in out
    assert "graph coloring" in out
    assert "poletto linear scan" in out
    assert "two-pass binpacking" in out


def test_compare_allocators_rejects_unknown():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "compare_allocators.py"), "quake3"],
        capture_output=True, text=True, timeout=60)
    assert proc.returncode != 0
    assert "unknown benchmark" in proc.stderr
