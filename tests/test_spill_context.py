"""The shared spill layer: AllocationContext and rematerialization.

``repro.spill`` is threaded through every entry point; these tests pin
the context's serialization contract (reports, fuzz witnesses, and
cache idents all round-trip through ``describe``/``parse``) and the
end-to-end rematerialization property: with ``remat=True`` every
allocator re-issues spilled single-definition constants instead of
reloading them, without changing the program's observable behaviour.
"""

import pytest

from repro.allocators import ALLOCATOR_FACTORIES
from repro.ir.instr import Op, SpillKind, SpillPhase
from repro.lang import compile_minic
from repro.passes.verify_alloc import verify_dataflow_module
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.spill import DEFAULT_CONTEXT, STRESS_MODES, AllocationContext
from repro.stats.spill import spill_breakdown
from repro.target import tiny

#: Eight live single-definition constants on a four-register machine:
#: every allocator must spill some of them, and each reload is a remat
#: candidate.
CONST_SRC = """
func int main() {
  int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
  int f = 6; int g = 7; int h = 8;
  print a + b + c + d + e + f + g + h;
  print a; print h;
  return 0;
}
"""


class TestAllocationContext:
    @pytest.mark.parametrize("context", [
        AllocationContext(),
        AllocationContext(remat=True),
        AllocationContext(stress="shuffle", seed=3),
        AllocationContext(remat=True, stress="forced-evict", seed=41),
        AllocationContext(stress="reduced-regs", seed=0),
    ])
    def test_describe_parse_round_trip(self, context):
        assert AllocationContext.parse(context.describe()) == context

    def test_default_is_empty_everywhere(self):
        assert DEFAULT_CONTEXT.is_default
        assert DEFAULT_CONTEXT.describe() == ""
        assert DEFAULT_CONTEXT.cli_args() == []
        assert AllocationContext.parse("") == DEFAULT_CONTEXT

    def test_rejects_unknown_mode_and_fragment(self):
        with pytest.raises(ValueError):
            AllocationContext(stress="chaos")
        with pytest.raises(ValueError):
            AllocationContext.parse("frobnicate")

    def test_cli_args_reproduce_the_context(self):
        context = AllocationContext(remat=True, stress="shuffle", seed=9)
        assert context.cli_args() == [
            "--remat", "--stress", "shuffle", "--stress-seed", "9"]

    def test_rng_is_deterministic_and_salted(self):
        context = AllocationContext(stress="shuffle", seed=5)
        a = [context.rng("fn", "GPR").random() for _ in range(4)]
        b = [context.rng("fn", "GPR").random() for _ in range(4)]
        assert a == b
        assert a != [context.rng("fn", "FPR").random() for _ in range(4)]
        assert a != [context.with_seed(6).rng("fn", "GPR").random()
                     for _ in range(4)]

    def test_with_seed_only_changes_the_seed(self):
        context = AllocationContext(remat=True, stress="shuffle", seed=1)
        reseeded = context.with_seed(8)
        assert reseeded.seed == 8
        assert (reseeded.remat, reseeded.stress) == (True, "shuffle")

    def test_stress_modes_cover_the_cli_choices(self):
        assert STRESS_MODES[0] == "none"
        assert set(STRESS_MODES) == {"none", "reduced-regs",
                                     "forced-evict", "shuffle"}


class TestRematerialization:
    @pytest.mark.parametrize("name", sorted(ALLOCATOR_FACTORIES))
    def test_remat_replaces_reloads_without_changing_behaviour(self, name):
        import copy
        from repro.allocators.base import allocate_module
        from repro.passes.verify_alloc import snapshot_module

        machine = tiny(4, 4)
        module = compile_minic(CONST_SRC, machine)
        base = run_allocator(module, ALLOCATOR_FACTORIES[name](), machine)
        remat = run_allocator(module, ALLOCATOR_FACTORIES[name](), machine,
                              context=AllocationContext(remat=True))

        # The dataflow verifier needs pre-allocation operand snapshots,
        # so re-run the allocation in place on a working copy.
        working = copy.deepcopy(module)
        snapshots = snapshot_module(working)
        allocate_module(working, ALLOCATOR_FACTORIES[name](), machine,
                        context=AllocationContext(remat=True))
        verify_dataflow_module(working, machine, snapshots)

        base_out = simulate(base.module, machine)
        remat_out = simulate(remat.module, machine)
        assert remat_out.output == base_out.output

        base_bd = spill_breakdown(base_out)
        remat_bd = spill_breakdown(remat_out)
        assert base_bd.remat == 0
        assert remat_bd.remat > 0
        loads = (SpillPhase.EVICT, SpillKind.LOAD)
        assert (remat_bd.category(*loads) + remat_bd.remat
                >= base_bd.category(*loads))
        assert remat_bd.category(*loads) < base_bd.category(*loads)
        assert remat_out.cycles <= base_out.cycles

    def test_remat_instructions_are_tagged_constants(self):
        machine = tiny(4, 4)
        module = compile_minic(CONST_SRC, machine)
        result = run_allocator(module, ALLOCATOR_FACTORIES["second-chance"](),
                               machine, context=AllocationContext(remat=True))
        tagged = [i for fn in result.module.functions.values()
                  for i in fn.instructions() if i.remat_for is not None]
        assert tagged
        assert all(i.op in (Op.LI, Op.FLI) for i in tagged)
        assert all(i.spill_phase is not None for i in tagged)

    def test_default_context_output_is_unchanged(self):
        """remat/stress off must be byte-identical to the pre-layer
        pipeline — the explicit DEFAULT_CONTEXT is inert."""
        from repro.ir.printer import print_module
        machine = tiny(4, 4)
        module = compile_minic(CONST_SRC, machine)
        for name, make in sorted(ALLOCATOR_FACTORIES.items()):
            plain = run_allocator(module, make(), machine)
            explicit = run_allocator(module, make(), machine,
                                     context=DEFAULT_CONTEXT)
            assert print_module(plain.module) == \
                print_module(explicit.module), name
