"""Structural cloning of functions and modules (no ``copy.deepcopy``).

``Module.clone`` / ``Function.clone`` are what the pipeline runs on every
allocator invocation, so they must be (a) faithful — the clone prints
identically and simulates identically, (b) independent — mutating the
clone never reaches the original, (c) shallow where safe — immutable
atoms (temps, registers, labels) are shared, and (d) fast — one linear
sweep, measurably cheaper than ``copy.deepcopy`` on a realistic module.
"""

import copy
import time

from repro.ir.instr import Instr, Op
from repro.ir.printer import print_module
from repro.lang import compile_minic
from repro.sim import simulate
from repro.sim.machine import outputs_equal
from repro.target import tiny
from repro.workloads.synthetic import scaled_module

SOURCE = """
func int helper(int x) {
  return x * 3 - 1;
}

func int main() {
  int total = 0;
  for (int i = 0; i < 5; i = i + 1) {
    total = total + helper(i);
  }
  print total;
  return 0;
}
"""


def sample_module():
    return compile_minic(SOURCE, tiny(8, 8))


class TestCloneFaithful:
    def test_clone_prints_identically(self):
        module = sample_module()
        assert print_module(module.clone()) == print_module(module)

    def test_clone_simulates_identically(self):
        machine = tiny(8, 8)
        module = compile_minic(SOURCE, machine)
        ref = simulate(module, machine)
        out = simulate(module.clone(), machine)
        assert outputs_equal(out.output, ref.output)
        assert out.dynamic_instructions == ref.dynamic_instructions

    def test_globals_and_temp_counter_survive(self):
        module = sample_module()
        clone = module.clone()
        assert clone.globals == module.globals
        assert clone.heap_size == module.heap_size
        for name, fn in module.functions.items():
            assert clone.functions[name].temp_count() == fn.temp_count()
            assert clone.functions[name].params == fn.params


class TestCloneIndependent:
    def test_mutating_clone_instr_lists_leaves_original(self):
        module = sample_module()
        before = print_module(module)
        clone = module.clone()
        for fn in clone.functions.values():
            fn.blocks[0].instrs.insert(0, Instr(Op.NOP))
            # Operand lists are fresh too (allocators rewrite in place).
            for instr in fn.instructions():
                if instr.uses:
                    instr.uses[0] = instr.uses[0]
                    instr.uses.append(instr.uses[0])
        assert print_module(module) == before

    def test_instruction_objects_are_fresh_atoms_shared(self):
        module = sample_module()
        instr_map: dict = {}
        clone = module.clone(instr_map)
        for name, fn in module.functions.items():
            cfn = clone.functions[name]
            for old, new in zip(fn.instructions(), cfn.instructions()):
                assert instr_map[old] is new
                assert new is not old
                assert new.op is old.op
                # Temps/regs/labels are immutable values, shared as-is.
                assert all(a is b for a, b in zip(old.uses, new.uses))
                assert all(a is b for a, b in zip(old.defs, new.defs))

    def test_instr_map_covers_every_instruction(self):
        module = sample_module()
        instr_map: dict = {}
        module.clone(instr_map)
        total = sum(fn.instruction_count()
                    for fn in module.functions.values())
        assert len(instr_map) == total


class TestCloneSpeed:
    def test_clone_beats_deepcopy_on_a_realistic_module(self):
        """The micro-benchmark behind dropping deepcopy from the hot
        path: structural cloning of a Table-3-sized module must beat
        ``copy.deepcopy`` (in practice by an order of magnitude; the
        assertion only demands *faster*, to stay robust on loaded CI)."""
        module = scaled_module(245)

        def best_of(fn, rounds=3):
            times = []
            for _ in range(rounds):
                start = time.perf_counter()
                result = fn()
                times.append(time.perf_counter() - start)
            return min(times), result

        clone_s, cloned = best_of(module.clone)
        deep_s, _ = best_of(lambda: copy.deepcopy(module))
        assert print_module(cloned) == print_module(module)
        assert clone_s < deep_s, (
            f"clone {clone_s * 1e3:.2f}ms not faster than "
            f"deepcopy {deep_s * 1e3:.2f}ms")
