"""Resolution-code placement: the paper's footnote 1, plus our hazard
guards (terminator-operand clobber, entry block)."""

import pytest

from repro.allocators import SecondChanceBinpacking
from repro.allocators.binpack.allocator import BinpackOptions
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instr import Instr, Op, SpillPhase
from repro.ir.module import Module
from repro.ir.types import RegClass
from repro.pipeline import run_allocator
from repro.sim import simulate
from repro.sim.machine import outputs_equal
from repro.target import tiny

G = RegClass.GPR


def loop_to_entryish_module():
    """A CFG whose hot edge targets a block with several predecessors and
    whose tail has several successors — forcing a critical-edge split if
    any resolution traffic lands there."""
    module = Module()
    fn = Function("main")
    b = FunctionBuilder(fn)
    b.new_block("entry")
    pinned = [b.li(i) for i in range(7)]
    counter = b.li(3)
    b.jmp("head")
    b.new_block("head")   # two preds (entry, tail), so no top placement
    cond = b.slt(b.li(0), counter)
    b.br(cond, "body", "out")
    b.new_block("body")
    acc = b.li(0)
    for v in pinned:
        acc = b.add(acc, v)
    b.print_(acc)
    b.mov(b.addi(counter, -1), dst=counter)
    # The tail branches (two successors) back to head or to a side exit:
    side = b.seq(counter, b.li(-1))
    b.br(side, "weird", "head")
    b.new_block("weird")
    b.print_(counter)
    b.jmp("head")
    b.new_block("out")
    b.ret()
    module.add_function(fn)
    return module


class TestPlacement:
    def test_critical_edges_get_split_blocks(self):
        machine = tiny(4, 4)
        module = loop_to_entryish_module()
        reference = simulate(module, machine)
        result = run_allocator(module, SecondChanceBinpacking(), machine)
        outcome = simulate(result.module, machine)
        assert outputs_equal(outcome.output, reference.output)
        labels = [blk.label for blk in result.module.functions["main"].blocks]
        # If any resolution code was needed on body->head (critical), a
        # split block exists; at minimum the function still validates and
        # has at least the original six blocks.
        assert len(labels) >= 6

    def test_split_blocks_only_contain_resolution_and_jump(self):
        machine = tiny(4, 4)
        module = loop_to_entryish_module()
        result = run_allocator(module, SecondChanceBinpacking(), machine)
        for blk in result.module.functions["main"].blocks:
            if not blk.label.startswith("split."):
                continue
            assert blk.terminator.op is Op.JMP
            for instr in blk.body:
                assert instr.spill_phase is SpillPhase.RESOLVE

    def test_back_edge_to_entry_block(self):
        """A loop whose back edge targets the entry block.  (A correct
        program can carry no temporaries into entry — they would be
        uninitialized on function entry — so the placement guard that
        keeps edge code off entry's top is defensive; this test pins the
        end-to-end behaviour of the shape itself.)  The loop counter
        lives in the heap so re-executing entry does not reset it."""
        machine = tiny(4, 4)
        module = Module()
        arr = module.add_global("counter", G, 1, (0,))
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")  # also the loop header
        base = b.li(arr.base)
        count = b.ld(base, 0)
        bumped = b.addi(count, 1)
        b.st(bumped, base, 0)
        # Pressure inside the loop header.
        vals = [b.li(10 + i) for i in range(5)]
        acc = b.li(0)
        for v in vals:
            acc = b.add(acc, v)
        b.print_(acc)
        cond = b.slt(bumped, b.li(3))
        b.br(cond, "entry", "done")
        b.new_block("done")
        b.print_(bumped)
        b.ret()
        module.add_function(fn)
        reference = simulate(module, machine)
        assert reference.output == [60, 60, 60, 3]
        result = run_allocator(module, SecondChanceBinpacking(), machine)
        outcome = simulate(result.module, machine)
        assert outputs_equal(outcome.output, reference.output)

    @pytest.mark.parametrize("conservative", [False, True])
    def test_branch_condition_register_never_clobbered(self, conservative):
        """Bottom-of-predecessor placement sits before the terminator; if
        the branch reads a register the edge code writes, the edge must be
        split instead.  Exercised by a branch whose both arms target the
        same join with heavy traffic."""
        machine = tiny(4, 4)
        module = Module()
        fn = Function("main")
        b = FunctionBuilder(fn)
        b.new_block("entry")
        keep = [b.li(i) for i in range(6)]
        cond = b.slt(keep[0], keep[1])
        b.br(cond, "left", "right")
        b.new_block("left")
        acc = b.li(0)
        for v in keep:
            acc = b.add(acc, v)
        b.print_(acc)
        b.jmp("join")
        b.new_block("right")
        b.print_(keep[2])
        b.jmp("join")
        b.new_block("join")
        for v in keep:
            b.print_(v)
        b.ret()
        module.add_function(fn)
        reference = simulate(module, machine)
        options = BinpackOptions(conservative_consistency=conservative)
        result = run_allocator(module, SecondChanceBinpacking(options),
                               machine)
        outcome = simulate(result.module, machine)
        assert outputs_equal(outcome.output, reference.output)
