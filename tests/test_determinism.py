"""Allocation output must not depend on Python's hash randomization.

The binpack register-selection loops (``_find_register`` /
``_find_empty_register``) iterate over set-like structures; without a
stable tie-break on register index, two runs of the same compilation
could pick different (equally valid) registers depending on
``PYTHONHASHSEED``.  That breaks reproducible builds, trace diffing, and
the fuzzer's shrink predicate.  This test compiles the same programs in
subprocesses under different hash seeds and compares the printed
allocated modules byte for byte.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

_PROGRAM = """
import copy
from repro.allocators.base import allocate_module
from repro.allocators import (GraphColoring, PolettoLinearScan,
                              SecondChanceBinpacking, TwoPassBinpacking)
from repro.ir.printer import print_module
from repro.passes.dce import eliminate_dead_code_module
from repro.target import tiny
from repro.workloads.synthetic import random_module

from repro.spill import AllocationContext

machine = tiny(5, 5)
contexts = (AllocationContext(),
            AllocationContext(remat=True),
            AllocationContext(stress="shuffle", seed=7),
            AllocationContext(stress="reduced-regs", seed=7),
            AllocationContext(stress="forced-evict", seed=7))
for name, make in (("second-chance", SecondChanceBinpacking),
                   ("two-pass", TwoPassBinpacking),
                   ("coloring", GraphColoring),
                   ("poletto", PolettoLinearScan)):
    for seed in (0, 3):
        for context in contexts:
            module = random_module(seed, machine, size=35)
            eliminate_dead_code_module(module)
            allocate_module(module, make(), machine, context=context)
            print(f"=== {name} seed={seed} ctx={context.describe()} ===")
            print(print_module(module))
"""


def _compile_under_hash_seed(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = "src"
    proc = subprocess.run([sys.executable, "-c", _PROGRAM],
                          capture_output=True, text=True, env=env,
                          cwd=os.path.dirname(os.path.dirname(__file__)))
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.parametrize("other_seed", ["1", "424242"])
def test_allocation_is_hash_seed_independent(other_seed):
    baseline = _compile_under_hash_seed("0")
    assert "===" in baseline
    # The subprocess program covers every allocator under the default,
    # remat, and all three seeded stress contexts, so this asserts that
    # the stress RNG derivation is hash-seed independent too.
    assert "ctx=stress=shuffle" in baseline
    assert _compile_under_hash_seed(other_seed) == baseline


def _allocated_text(allocator_name, context):
    from repro.allocators import ALLOCATOR_FACTORIES
    from repro.allocators.base import allocate_module
    from repro.ir.printer import print_module
    from repro.passes.dce import eliminate_dead_code_module
    from repro.target import tiny
    from repro.workloads.synthetic import random_module

    machine = tiny(5, 5)
    module = random_module(11, machine, size=40)
    eliminate_dead_code_module(module)
    allocate_module(module, ALLOCATOR_FACTORIES[allocator_name](),
                    machine, context=context)
    return print_module(module)


@pytest.mark.parametrize("allocator", ["second-chance", "two-pass",
                                       "coloring", "poletto"])
@pytest.mark.parametrize("mode", ["reduced-regs", "forced-evict", "shuffle"])
def test_stress_same_seed_is_byte_identical(allocator, mode):
    """Stress modes are functions of (module, context) — re-running with
    the same seed must reproduce the allocation byte for byte."""
    from repro.spill import AllocationContext

    context = AllocationContext(stress=mode, seed=99)
    assert _allocated_text(allocator, context) == \
        _allocated_text(allocator, context)


def test_stress_seed_changes_allocation():
    """Different seeds must actually change *something*, else the knob is
    dead.  Checked across modes so one insensitive mode can't hide."""
    from repro.spill import AllocationContext

    differs = False
    for mode in ("reduced-regs", "forced-evict", "shuffle"):
        texts = {_allocated_text("second-chance",
                                 AllocationContext(stress=mode, seed=s))
                 for s in range(4)}
        differs = differs or len(texts) > 1
    assert differs
