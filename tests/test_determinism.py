"""Allocation output must not depend on Python's hash randomization.

The binpack register-selection loops (``_find_register`` /
``_find_empty_register``) iterate over set-like structures; without a
stable tie-break on register index, two runs of the same compilation
could pick different (equally valid) registers depending on
``PYTHONHASHSEED``.  That breaks reproducible builds, trace diffing, and
the fuzzer's shrink predicate.  This test compiles the same programs in
subprocesses under different hash seeds and compares the printed
allocated modules byte for byte.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

_PROGRAM = """
import copy
from repro.allocators.base import allocate_module
from repro.allocators import (GraphColoring, PolettoLinearScan,
                              SecondChanceBinpacking, TwoPassBinpacking)
from repro.ir.printer import print_module
from repro.passes.dce import eliminate_dead_code_module
from repro.target import tiny
from repro.workloads.synthetic import random_module

machine = tiny(5, 5)
for name, make in (("second-chance", SecondChanceBinpacking),
                   ("two-pass", TwoPassBinpacking),
                   ("coloring", GraphColoring),
                   ("poletto", PolettoLinearScan)):
    for seed in (0, 3):
        module = random_module(seed, machine, size=35)
        eliminate_dead_code_module(module)
        allocate_module(module, make(), machine)
        print(f"=== {name} seed={seed} ===")
        print(print_module(module))
"""


def _compile_under_hash_seed(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = "src"
    proc = subprocess.run([sys.executable, "-c", _PROGRAM],
                          capture_output=True, text=True, env=env,
                          cwd=os.path.dirname(os.path.dirname(__file__)))
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.parametrize("other_seed", ["1", "424242"])
def test_allocation_is_hash_seed_independent(other_seed):
    baseline = _compile_under_hash_seed("0")
    assert "===" in baseline
    assert _compile_under_hash_seed(other_seed) == baseline
